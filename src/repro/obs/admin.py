"""Admin endpoint: ``metrics`` / ``health`` / ``spans`` on a side port.

The serving stack's observability surface lives on its **own** listener
(``--admin-port``), speaking the same length-prefixed JSON frames as the
data plane (:mod:`repro.serve.protocol`), so operators and the load
generator scrape it with the client machinery they already have — while
a misbehaving scraper can never occupy a data-plane session slot or a
feed-queue entry.

Three request types, all read-only (handlers never mutate shared state
across an ``await`` — the R007 lint fixture pair under ``obs/`` pins the
anti-pattern this avoids):

* ``{"type": "health"}`` → liveness + the server's stats snapshot.
* ``{"type": "metrics"}`` → the merged
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (manager registry
  folded with every shard worker's, when sharded).
* ``{"type": "spans"}`` → the tracer's Chrome trace-event export
  (``trace_event.schema.json``).

:func:`fetch_admin` is the matching blocking client, used by
``benchmarks/loadgen.py`` to join server-side queue-wait percentiles
into the SLO report and by ``repro stats tail`` against a live server.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Awaitable, Callable, Dict, Optional

__all__ = ["AdminServer", "fetch_admin"]

#: Async provider of one response body.
_Provider = Callable[[], Awaitable[Dict[str, Any]]]


class AdminServer:
    """The observability listener; one request/response per frame."""

    def __init__(
        self,
        *,
        health: _Provider,
        metrics: _Provider,
        spans: _Provider,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: Optional[int] = None,
    ) -> None:
        from ..serve import protocol

        self._providers: Dict[str, _Provider] = {
            "health": health,
            "metrics": metrics,
            "spans": spans,
        }
        self.host = host
        self._requested_port = port
        self.max_frame = max_frame or protocol.MAX_FRAME
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def close(self) -> None:
        # Take the listener before the first await so a concurrent close
        # (or restart) never double-closes a stale snapshot.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from ..serve import protocol
        from ..serve.protocol import FrameReader, ProtocolError

        frames = FrameReader(self.max_frame)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for kind, payload in frames.push(data):
                    if kind != protocol.KIND_JSON:
                        raise ProtocolError(
                            f"admin endpoint only speaks JSON frames,"
                            f" got kind {kind}"
                        )
                    message = protocol.decode_json(payload)
                    mtype = message.get("type")
                    provider = self._providers.get(str(mtype))
                    if provider is None:
                        writer.write(protocol.encode_json(
                            protocol.error_message(
                                "admin", f"unknown admin request {mtype!r}"
                            )
                        ))
                    else:
                        body = await provider()
                        writer.write(protocol.encode_json(
                            {"type": str(mtype), **body}
                        ))
                await writer.drain()
        except (ProtocolError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def fetch_admin(
    host: str,
    port: int,
    request: str,
    timeout_s: float = 5.0,
) -> Dict[str, Any]:
    """Blocking one-shot admin request (loadgen / ``stats tail`` client)."""
    from ..serve import protocol
    from ..serve.protocol import FrameReader, ProtocolError

    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(protocol.encode_json({"type": request}))
        frames = FrameReader()
        while True:
            data = sock.recv(65536)
            if not data:
                raise ProtocolError(
                    f"admin endpoint closed before answering {request!r}"
                )
            for kind, payload in frames.push(data):
                if kind != protocol.KIND_JSON:
                    raise ProtocolError(
                        f"unexpected admin frame kind {kind}"
                    )
                return protocol.decode_json(payload)
