"""Process-mergeable metrics registry: counters, gauges, histograms.

Design constraints, in order:

* **Near-zero disabled-path cost.**  Call sites resolve their instrument
  once (``registry.counter("serve.feeds")``) and hold the object; a
  disabled registry hands out shared null instruments whose mutators are
  single ``pass`` statements, so an instrumented hot path costs one
  no-op method call when observability is off.
* **Process-mergeable.**  :meth:`MetricsRegistry.snapshot` is a plain
  JSON dict and :meth:`MetricsRegistry.merge` folds another process's
  snapshot in (counters and histogram buckets add, gauges add — every
  gauge here is an occupancy, so summing across shard workers is the
  fleet-wide value).  Shard workers answer an ``OP_METRICS`` pipe
  request with their snapshot; the manager merges before serving the
  admin endpoint.
* **No clocks, no environment.**  The registry stores what callers hand
  it; timing lives with the caller (``obs/`` is clock-allowlisted, the
  rest of the tree goes through :mod:`repro.telemetry.manifest`).

Histograms are fixed-bucket: ``bounds`` are inclusive upper edges, with
one implicit overflow bucket.  :func:`histogram_percentile` estimates a
percentile from a snapshot by walking the cumulative counts and
answering the matched bucket's upper edge — coarse, but mergeable across
processes, which sorted-sample percentiles are not.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "histogram_percentile",
]

#: Default latency bucket upper edges, in seconds: 100µs .. 30s, roughly
#: logarithmic — wide enough for both a kernel feed (~ms) and a saturated
#: queue wait (~s).
DEFAULT_LATENCY_BOUNDS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, sessions active, utilisation)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: ``bounds`` upper edges + overflow bucket."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_S
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram bounds must be a non-empty ascending"
                f" sequence, got {bounds!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        # Linear scan: bucket lists are short and observations are per
        # feed/job, not per event; bisect would cost an import for no win.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class _NullCounter(Counter):
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named instruments with JSON snapshot/merge across processes."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument resolution (call once, hold the object) ------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_S,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument (tests and per-run isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The registry as a plain JSON dict (stable key order)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another process's :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges add too (every gauge
        is an occupancy level, and the fleet-wide occupancy is the sum of
        the per-process ones).  Histograms only merge when the bucket
        bounds agree — mismatched bounds raise rather than silently
        corrupting the distribution.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).inc(float(value))
        for name, record in (snapshot.get("histograms") or {}).items():
            hist = self.histogram(name, record["bounds"])
            if list(hist.bounds) != [float(b) for b in record["bounds"]]:
                raise ValueError(
                    f"histogram {name!r} bounds mismatch on merge"
                )
            counts = record["counts"]
            if len(counts) != len(hist.counts):
                raise ValueError(
                    f"histogram {name!r} bucket count mismatch on merge"
                )
            for i, c in enumerate(counts):
                hist.counts[i] += int(c)
            hist.total += float(record["sum"])
            hist.count += int(record["count"])


def histogram_percentile(
    record: Mapping[str, Any], q: float
) -> Optional[float]:
    """Approximate percentile from a histogram snapshot record.

    Walks the cumulative bucket counts and returns the upper edge of the
    bucket containing the ``q``-th observation (the last finite edge for
    the overflow bucket).  ``None`` on an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {q}")
    count = int(record.get("count") or 0)
    if count == 0:
        return None
    bounds = [float(b) for b in record["bounds"]]
    counts = [int(c) for c in record["counts"]]
    rank = max(1, round(q * count))
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= rank:
            return bounds[i] if i < len(bounds) else bounds[-1]
    return bounds[-1]  # pragma: no cover - counts always sum to count


#: The process-wide registry: the server, shard workers, the engine pool
#: and the kernel dispatcher all record here; shard workers ship its
#: snapshot back over the pipe for merging.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """This process's shared registry."""
    return _GLOBAL
