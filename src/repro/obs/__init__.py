"""Live observability plane: metrics, tracing, flight recording.

Everything in this package *observes* the serving/engine stack and never
feeds back into simulated state — which is why the R002 determinism rule
allowlists ``obs/`` for wall-clock reads, and why nothing here is
imported by a predictor or evaluation loop (only by the layers around
them: the server, the shard manager, the engine pool, the kernel
dispatcher).

* :mod:`repro.obs.metrics` — a process-mergeable registry of counters,
  gauges and fixed-bucket latency histograms.  Snapshots are plain JSON
  dicts; shard workers ship theirs over the pipe and the manager merges.
* :mod:`repro.obs.tracing` — trace/span IDs minted at the wire protocol
  and propagated through frames, the micro-batching executor, the shard
  hop and engine job specs; exported as Chrome trace-event JSON
  (Perfetto-loadable), validated against a checked-in schema.
* :mod:`repro.obs.flight` — a bounded per-session ring buffer of recent
  events, dumped to a postmortem manifest when a session dies badly.
* :mod:`repro.obs.admin` — the server's admin endpoint (separate port,
  same length-prefixed protocol) serving ``metrics``/``health``/``spans``.
* :mod:`repro.obs.report` — the ``repro stats tail`` / ``repro stats
  spans`` backends.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    histogram_percentile,
)
from .tracing import (
    TRACE_EVENT_SCHEMA_PATH,
    Tracer,
    mint_trace_id,
    validate_trace_export,
)
from .flight import FlightRecorder, POSTMORTEM_SCHEMA_ID

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "POSTMORTEM_SCHEMA_ID",
    "TRACE_EVENT_SCHEMA_PATH",
    "Tracer",
    "global_registry",
    "histogram_percentile",
    "mint_trace_id",
    "validate_trace_export",
]
