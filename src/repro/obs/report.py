"""Reporting backends for ``repro stats tail`` and ``repro stats spans``.

``tail`` follows either side of the observability plane:

* ``host:port`` — poll a live server's admin endpoint and render its
  merged metrics snapshot (counters, occupancy gauges, queue-wait
  percentiles) every interval.
* a directory — watch a telemetry/flight-recorder directory and print a
  one-line digest for every run manifest and postmortem as it appears
  (``--once`` reports the current contents and exits, which is what CI
  uses).

``spans`` loads a Chrome trace-event export (the admin endpoint's
``spans`` answer, or ``loadgen --trace-export``), validates it against
the checked-in ``trace_event.schema.json``, and summarises per span name
and per trace id — the quick "where did the time go" view without
opening Perfetto.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .metrics import histogram_percentile

__all__ = [
    "render_metrics_snapshot",
    "scan_directory",
    "spans_report",
    "summarize_spans",
    "tail",
]

#: Output sink, injectable for tests.
_Print = Callable[[str], None]


def render_metrics_snapshot(snapshot: Mapping[str, Any]) -> str:
    """A compact human view of one registry snapshot."""
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<36} {counters[name]}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<36} {gauges[name]:g}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            record = histograms[name]
            count = int(record.get("count") or 0)
            if count == 0:
                lines.append(f"  {name:<36} (empty)")
                continue
            p50 = histogram_percentile(record, 0.50)
            p95 = histogram_percentile(record, 0.95)
            p99 = histogram_percentile(record, 0.99)
            mean = float(record["sum"]) / count
            lines.append(
                f"  {name:<36} n={count}"
                f" mean={mean * 1e3:.3f}ms"
                f" p50<={_ms(p50)} p95<={_ms(p95)} p99<={_ms(p99)}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def _ms(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:g}ms"


def _digest_file(path: Path) -> str:
    """One line describing a manifest or postmortem JSON file."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return f"{path.name}: unreadable ({error})"
    schema = document.get("schema", "")
    if str(schema).startswith("repro.postmortem"):
        return (
            f"postmortem {path.name}:"
            f" session={document.get('session')}"
            f" reason={document.get('reason')}"
            f" events={len(document.get('events') or [])}"
        )
    job = document.get("job") or {}
    run = document.get("run") or {}
    wall = run.get("wall_s")
    return (
        f"manifest {path.name}:"
        f" kind={job.get('kind')}"
        f" trace={job.get('trace')}"
        f" variant={job.get('variant')}"
        f" wall_s={wall if wall is None else round(float(wall), 3)}"
    )


def scan_directory(
    directory: Path, seen: Optional[set] = None
) -> Tuple[List[str], set]:
    """Digest lines for JSON files not in ``seen``; returns (lines, seen')."""
    seen = set(seen or ())
    lines: List[str] = []
    for path in sorted(Path(directory).glob("*.json")):
        if path.name in seen:
            continue
        seen.add(path.name)
        lines.append(_digest_file(path))
    return lines, seen


def _parse_target(target: str) -> Tuple[str, Any]:
    if ":" in target and not Path(target).exists():
        host, _, port_text = target.rpartition(":")
        try:
            return "admin", (host or "127.0.0.1", int(port_text))
        except ValueError:
            pass
    return "dir", Path(target)


def tail(
    target: str,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    out: _Print = print,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Follow a live admin endpoint or a manifest/postmortem directory."""
    mode, parsed = _parse_target(target)
    if mode == "admin":
        from .admin import fetch_admin

        host, port = parsed
        while True:
            try:
                answer = fetch_admin(host, port, "metrics")
            except OSError as error:
                out(f"admin endpoint {host}:{port} unreachable: {error}")
                return 1
            out(render_metrics_snapshot(answer.get("metrics") or {}))
            if once:
                return 0
            out("")
            sleep(interval_s)
    directory = parsed
    if not directory.is_dir():
        out(f"{target}: not a directory and not a host:port")
        return 2
    lines, seen = scan_directory(directory)
    for line in lines:
        out(line)
    if once:
        if not lines:
            out(f"(no manifests or postmortems in {directory})")
        return 0
    while True:
        sleep(interval_s)
        lines, seen = scan_directory(directory, seen)
        for line in lines:
            out(line)


def summarize_spans(document: Mapping[str, Any]) -> str:
    """Per-name and per-trace summary of a trace-event export."""
    events = document.get("traceEvents") or []
    by_name: Dict[str, List[float]] = {}
    by_trace: Dict[str, int] = {}
    for event in events:
        by_name.setdefault(event["name"], []).append(float(event["dur"]))
        trace = (event.get("args") or {}).get("trace")
        if trace is not None:
            by_trace[str(trace)] = by_trace.get(str(trace), 0) + 1
    lines = [
        f"spans: {len(events)} events,"
        f" {len(by_name)} names, {len(by_trace)} trace ids"
    ]
    if by_name:
        lines.append(
            f"  {'name':<28} {'count':>6} {'total_ms':>10}"
            f" {'mean_ms':>9} {'max_ms':>9}"
        )
        ranked = sorted(
            by_name.items(), key=lambda item: -sum(item[1])
        )
        for name, durs in ranked:
            total = sum(durs)
            lines.append(
                f"  {name:<28} {len(durs):>6}"
                f" {total / 1e3:>10.3f}"
                f" {total / len(durs) / 1e3:>9.3f}"
                f" {max(durs) / 1e3:>9.3f}"
            )
    if by_trace:
        busiest = sorted(by_trace.items(), key=lambda item: -item[1])[:5]
        lines.append(
            "  busiest traces: "
            + ", ".join(f"{t} ({n} spans)" for t, n in busiest)
        )
    return "\n".join(lines)


def spans_report(path: str, out: _Print = print) -> int:
    """Validate + summarise one trace-event export file (CLI backend)."""
    from .tracing import validate_trace_export

    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        out(f"{path}: unreadable ({error})")
        return 2
    errors = validate_trace_export(document)
    if errors:
        for error in errors:
            out(f"{path}: {error}")
        return 2
    out(summarize_spans(document))
    return 0
