"""Flight recorder: per-session ring buffers + postmortem manifests.

The serving layer records a short event trail for every live session —
open, feed enqueued, feed answered, errors — into a bounded ring
(``capacity`` events per session, oldest evicted first).  The rings cost
a ``deque.append`` per event and nothing on disk while sessions end
cleanly; when a session dies badly (``timeout``, connection drop, a
terminal ``overloaded``) the server dumps that session's ring as a
**postmortem manifest**: a JSON file carrying the reason, the trace id,
the recent event trail with relative timestamps, and whatever context
the caller attaches (server stats at time of death, peer address).

Postmortems are the "leave something to debug with" artifact the SLO
report cannot be: a dropped session in a loadgen run points at a file
showing exactly which feeds were in flight and how long each waited.
``repro stats tail <dir>`` follows a postmortem/manifest directory live.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = [
    "POSTMORTEM_SCHEMA_ID",
    "POSTMORTEM_SCHEMA_PATH",
    "FlightRecorder",
    "validate_postmortem",
]

POSTMORTEM_SCHEMA_ID = "repro.postmortem/v1"

#: The checked-in schema for postmortem manifests.
POSTMORTEM_SCHEMA_PATH = Path(__file__).with_name(
    "postmortem.schema.json"
)

#: One recorded event: (sequence number, monotonic seconds, kind, detail).
_Event = Tuple[int, float, str, Dict[str, Any]]


class FlightRecorder:
    """Bounded per-session event rings with postmortem dumping."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rings: Dict[str, Deque[_Event]] = {}
        self._seq = 0

    def record(
        self, session_id: str, kind: str, **detail: Any
    ) -> None:
        """Append one event to a session's ring (creates the ring)."""
        ring = self._rings.get(session_id)
        if ring is None:
            ring = self._rings[session_id] = deque(maxlen=self.capacity)
        self._seq += 1
        # Monotonic stamp, display only (obs/ is clock-allowlisted).
        ring.append((self._seq, time.perf_counter(), kind, detail))

    def events(self, session_id: str) -> List[_Event]:
        """The session's current ring, oldest first (copy)."""
        return list(self._rings.get(session_id, ()))

    def discard(self, session_id: str) -> None:
        """Forget a session's ring (clean finishes free their memory)."""
        self._rings.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._rings)

    def postmortem(
        self,
        session_id: str,
        reason: str,
        context: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The postmortem manifest dict for a session (does not write)."""
        from ..telemetry import manifest as run_manifest

        events = self.events(session_id)
        base = events[0][1] if events else 0.0
        return {
            "schema": POSTMORTEM_SCHEMA_ID,
            "session": session_id,
            "reason": reason,
            "written_at": run_manifest.iso_utc(run_manifest.wall_clock()),
            "pid": os.getpid(),
            "events_recorded": len(events),
            "events": [
                {
                    "seq": seq,
                    "t_s": round(stamp - base, 6),
                    "kind": kind,
                    "detail": detail,
                }
                for seq, stamp, kind, detail in events
            ],
            "context": context or {},
        }

    def dump(
        self,
        session_id: str,
        reason: str,
        directory: Path,
        context: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write the postmortem manifest atomically; returns its path.

        The ring is consumed: a session only dies once, and dropping the
        ring keeps a long-lived server's memory bounded by *live*
        sessions.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        document = self.postmortem(session_id, reason, context)
        self.discard(session_id)
        path = directory / f"postmortem-{session_id}-{reason}.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path


def validate_postmortem(document: Any) -> List[str]:
    """Violations of the checked-in postmortem schema (empty = valid)."""
    from ..telemetry.schema import load_schema, validate

    return validate(document, load_schema(POSTMORTEM_SCHEMA_PATH))
