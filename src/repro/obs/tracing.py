"""Span tracing with Chrome trace-event JSON export (Perfetto-loadable).

Trace IDs are minted where a request enters the system — the wire
protocol's ``open`` message (the client may supply its own ``trace``
field, which wins, so loadgen request IDs join server-side spans) — and
ride along as plain strings: through the ``_FeedItem`` tuples of the
micro-batching executor, the shard hop, and the ``trace_id`` field of
engine :class:`~repro.eval.engine.Job` specs.  IDs are
``t<pid hex>-<counter hex>``: deterministic per process, unique across
the shard fleet, and free of wall-clock or RNG reads.

A :class:`Tracer` collects *completed* spans in a bounded ring (newest
win; a long-lived server never grows without bound) and exports them in
the Chrome trace-event format — ``{"traceEvents": [{"ph": "X", ...}]}``
with microsecond ``ts``/``dur`` — which ``chrome://tracing`` and
Perfetto load directly.  The export shape is a checked-in contract
(``trace_event.schema.json``) validated by tests, the admin endpoint's
consumers, and CI.

Disabled path: ``Tracer(enabled=False).span(...)`` returns a shared
no-op span; the cost of an instrumented call site is one method call and
one ``if``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "TRACE_EVENT_SCHEMA_PATH",
    "Span",
    "Tracer",
    "mint_trace_id",
    "validate_trace_export",
]

#: The checked-in schema for the Chrome trace-event export.
TRACE_EVENT_SCHEMA_PATH = Path(__file__).with_name(
    "trace_event.schema.json"
)

_TRACE_COUNTER = itertools.count(1)


def mint_trace_id() -> str:
    """A process-unique trace id with no clock or RNG dependence."""
    return f"t{os.getpid():x}-{next(_TRACE_COUNTER):x}"


def _now_us() -> float:
    """Monotonic microseconds (observability only; obs/ is allowlisted)."""
    return time.perf_counter() * 1e6


class Span:
    """One in-progress span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "trace", "args", "_start_us")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace: Optional[str],
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace = trace
        self.args = args
        self._start_us = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one argument to the span (visible in the export)."""
        self.args[key] = value

    def __enter__(self) -> "Span":
        self._start_us = _now_us()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer.record(
            self.name,
            start_us=self._start_us,
            dur_us=_now_us() - self._start_us,
            trace=self.trace,
            args=self.args,
        )


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """A bounded ring of completed spans, exportable as Chrome JSON."""

    def __init__(self, enabled: bool = True, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._dropped = 0

    def span(
        self, name: str, trace: Optional[str] = None, **args: Any
    ) -> Any:
        """A context manager timing one span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, trace, args)

    def record(
        self,
        name: str,
        *,
        start_us: float,
        dur_us: float,
        trace: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one completed span (also the non-context-manager path)."""
        if not self.enabled:
            return
        event_args: Dict[str, Any] = dict(args or {})
        if trace is not None:
            event_args["trace"] = trace
        if len(self._events) == self.capacity:
            self._dropped += 1
        self._events.append({
            "ph": "X",
            "name": name,
            "cat": "repro",
            "ts": start_us,
            "dur": max(0.0, dur_us),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "args": event_args,
        })

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring since the tracer was created."""
        return self._dropped

    def events(self, clear: bool = False) -> List[Dict[str, Any]]:
        """The buffered trace events, oldest first."""
        out = list(self._events)
        if clear:
            self._events.clear()
        return out

    def export(self) -> Dict[str, Any]:
        """The Chrome trace-event document for the current buffer."""
        return {
            "displayTimeUnit": "ms",
            "traceEvents": self.events(),
        }


def validate_trace_export(document: Any) -> List[str]:
    """Violations of the checked-in trace-event schema (empty = valid)."""
    from ..telemetry.schema import load_schema, validate

    return validate(document, load_schema(TRACE_EVENT_SCHEMA_PATH))
