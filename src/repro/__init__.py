"""repro — reproduction of *Correlated Load-Address Predictors* (ISCA 1999).

Public API layers:

* :mod:`repro.isa` — mini-ISA, memory model and functional CPU (the trace
  substrate standing in for the paper's IA-32 traces).
* :mod:`repro.trace` — dynamic instruction trace format.
* :mod:`repro.workloads` — the 45 synthetic workload traces in 8 suites.
* :mod:`repro.predictors` — last-address, stride, CAP, hybrid, control-based
  address predictors (the paper's contribution).
* :mod:`repro.pipeline` — prediction-gap / pipelined predictor model.
* :mod:`repro.timing` — out-of-order timing model for speedup experiments.
* :mod:`repro.eval` — runner, metrics, and per-figure experiment drivers.

The most common entry points are re-exported here::

    from repro import HybridPredictor, get_trace, run_predictor

    metrics = run_predictor(HybridPredictor(), get_trace("INT_xli"))
    print(metrics.prediction_rate, metrics.accuracy)
"""

from .eval.metrics import PredictorMetrics
from .serve.session import run_predictor
from .pipeline import PipelinedPredictor
from .predictors import (
    AddressPredictor,
    CAPConfig,
    CAPPredictor,
    HybridConfig,
    HybridPredictor,
    LastAddressPredictor,
    Prediction,
    StrideConfig,
    StridePredictor,
)
from .timing import MachineConfig, simulate, speedup
from .trace import Trace
from .workloads import get_trace, suite_traces, trace_names, trace_workload

__version__ = "1.0.0"

__all__ = [
    "PredictorMetrics",
    "run_predictor",
    "PipelinedPredictor",
    "AddressPredictor",
    "CAPConfig",
    "CAPPredictor",
    "HybridConfig",
    "HybridPredictor",
    "LastAddressPredictor",
    "Prediction",
    "StrideConfig",
    "StridePredictor",
    "MachineConfig",
    "simulate",
    "speedup",
    "Trace",
    "get_trace",
    "suite_traces",
    "trace_names",
    "trace_workload",
    "__version__",
]
