"""Differential verification subsystem.

Three layers keep the predictor implementations honest:

* :mod:`repro.verify.oracle` — slow, dict-based reference models written
  straight from the paper's prose, sharing no code with ``predictors/``;
* :mod:`repro.verify.differential` — replays a trace through {oracle,
  ``run_on_stream``, ``run_on_columns``} and diffs per-access predictions,
  final metrics, Link Table contents and confidence state;
* :mod:`repro.verify.fuzz` / :mod:`repro.verify.metamorphic` — adversarial
  trace generation with shrinking, plus invariant checks on transformed
  traces.

Minimal diverging traces are persisted via :mod:`repro.verify.regressions`
and replayed by the test suite.  ``python -m repro verify`` drives it all.
"""

from .differential import VARIANTS, Divergence, verify_events
from .fuzz import PROFILES, FuzzFailure, generate_events, run_fuzz, shrink_events
from .metamorphic import METAMORPHIC_CHECKS, run_metamorphic_checks
from .oracle import OraclePrediction, SpecCAP, SpecHybrid, SpecStride
from .regressions import RegressionCase, load_cases, save_case

__all__ = [
    "VARIANTS",
    "Divergence",
    "verify_events",
    "PROFILES",
    "FuzzFailure",
    "generate_events",
    "run_fuzz",
    "shrink_events",
    "METAMORPHIC_CHECKS",
    "run_metamorphic_checks",
    "OraclePrediction",
    "SpecCAP",
    "SpecHybrid",
    "SpecStride",
    "RegressionCase",
    "load_cases",
    "save_case",
]
