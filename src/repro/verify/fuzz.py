"""Adversarial trace fuzzing for the differential harness.

Each *profile* generates a synthetic predictor-visible event stream aimed
at a specific failure hypothesis:

``aliasing``
    Load IPs spaced to collide in the small Load Buffer sets and data
    addresses drawn from a tiny pool, so LB evictions, LT tag mismatches
    and PF-filter churn all fire constantly.
``rds_walk``
    Recurring-data-structure walks (Section 2.2): cyclic address sequences
    per static load with occasional perturbations — CAP's home turf, and
    where history/LT update ordering bugs surface.
``history_edge``
    Addresses that differ only in high bits, so only the xor-fold keeps
    their histories apart, plus long same-address runs that saturate the
    shift-out of the history register.
``offset_wrap``
    Offsets and address low bytes near the 8-bit boundary, stressing the
    truncated-adder base/address reconstruction.
``branch_churn``
    Dense branch/call/return traffic churning the GHR, so CFI patterns
    record, block and redeem continuously.
``generation_churn``
    Loads hammering a single Load Buffer set so entries are evicted and
    re-inserted repeatedly — each re-insertion starts a new *generation*
    in the batch kernels' grouped solver, which must match the scalar
    LRU replacement exactly (way choice, LRU stamps, eviction counts).
``mixed``
    A bit of everything, including repeated subsequences.

Each case also draws a random *backend* (``python``/``numpy``), so the
four-way replay alternates between running and skipping the kernel lane —
any divergence between a kernelised case and its scalar twin shows up as
a columns-vs-vectorized mismatch.

When a case diverges it is shrunk with a ddmin-style pass to a minimal
event list that still reproduces the divergence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .differential import Divergence, fuzz_variant_names, verify_events

__all__ = [
    "PROFILES",
    "FuzzFailure",
    "generate_events",
    "run_fuzz",
    "shrink_events",
]

Events = List[List[int]]

_IP_BASE = 0x4000
#: Stride between IPs that land in the same set of a 64-entry 2-way LB
#: (32 sets, 4-byte aligned IPs).
_SET_ALIAS_STRIDE = 4 * 32


def _load(ip: int, addr: int, offset: int) -> List[int]:
    return [1, ip, addr & 0xFFFFFFFF, offset]


def _branch(ip: int, taken: bool) -> List[int]:
    return [0, ip, 1 if taken else 0, 0]


def _gen_aliasing(rng: random.Random, count: int) -> Events:
    ips = [
        _IP_BASE + way * _SET_ALIAS_STRIDE + slot * 4
        for way in range(rng.randint(3, 6))
        for slot in range(2)
    ]
    addresses = [rng.randrange(0, 1 << 20) * 4 for _ in range(6)]
    events: Events = []
    while len(events) < count:
        ip = rng.choice(ips)
        addr = rng.choice(addresses) + rng.choice((0, 4, 8))
        events.append(_load(ip, addr, rng.choice((0, 8, 16))))
        if rng.random() < 0.2:
            events.append(_branch(_IP_BASE - 4, rng.random() < 0.5))
    return events


def _gen_rds_walk(rng: random.Random, count: int) -> Events:
    walks = {}
    for slot in range(rng.randint(2, 4)):
        ip = _IP_BASE + slot * 4
        nodes = [
            0x10000 + slot * 0x1000 + rng.randrange(0, 64) * 16
            for _ in range(rng.randint(3, 8))
        ]
        walks[ip] = (nodes, rng.randrange(0, 32))
    events: Events = []
    positions = {ip: 0 for ip in walks}
    while len(events) < count:
        ip = rng.choice(list(walks))
        nodes, offset = walks[ip]
        addr = nodes[positions[ip] % len(nodes)]
        positions[ip] += 1
        if rng.random() < 0.08:
            addr ^= 0x40  # a node was reallocated: perturb one walk step
        events.append(_load(ip, addr + offset, offset))
        if rng.random() < 0.25:
            events.append(_branch(_IP_BASE + 0x100, rng.random() < 0.7))
    return events


def _gen_history_edge(rng: random.Random, count: int) -> Events:
    ip = _IP_BASE
    low = rng.randrange(0, 256) * 4
    events: Events = []
    while len(events) < count:
        mode = rng.random()
        if mode < 0.4:
            # Same low bits, different address-space segments: only the
            # xor-fold of the MSBs separates these histories.
            addr = low | (rng.choice((1, 2, 3)) << 28)
        elif mode < 0.7:
            addr = low  # long identical runs age the history to a fixpoint
        else:
            addr = rng.randrange(0, 1 << 30)
        events.append(_load(ip, addr, 0))
    return events


def _gen_offset_wrap(rng: random.Random, count: int) -> Events:
    ips = [_IP_BASE + slot * 4 for slot in range(4)]
    events: Events = []
    while len(events) < count:
        ip = rng.choice(ips)
        # Offsets straddling the recorded 8 (or fewer) offset bits, and
        # address low bytes near the truncated-adder carry boundary.
        offset = rng.choice((0, 1, 127, 128, 240, 255, 256, 260, 4095))
        base = rng.randrange(0, 1 << 16) << 8
        addr = base + rng.choice((0, 1, 254, 255)) + (offset & 0xFF)
        events.append(_load(ip, addr, offset))
    return events


def _gen_branch_churn(rng: random.Random, count: int) -> Events:
    load_ips = [_IP_BASE + slot * 4 for slot in range(3)]
    addresses = [0x20000 + slot * 64 for slot in range(4)]
    events: Events = []
    while len(events) < count:
        burst = rng.randint(1, 6)
        for _ in range(burst):
            events.append(
                _branch(_IP_BASE + 0x200 + rng.randrange(4) * 4,
                        rng.random() < 0.5)
            )
        if rng.random() < 0.15:
            events.append([2, _IP_BASE + 0x300, 0, 0])   # call
        if rng.random() < 0.15:
            # A return loads its return address, then pops the call path.
            events.append(_load(_IP_BASE + 0x304, rng.choice(addresses), 0))
            events.append([3, _IP_BASE + 0x304, 0, 0])
        ip = rng.choice(load_ips)
        events.append(_load(ip, rng.choice(addresses), 8))
    return events


def _gen_generation_churn(rng: random.Random, count: int) -> Events:
    # More same-set IPs than any variant has ways (the widest LB in the
    # registry is 4-way), so residency is a revolving door: every IP is
    # evicted and re-inserted many times over a 300-event case.
    ips = [
        _IP_BASE + way * _SET_ALIAS_STRIDE
        for way in range(rng.randint(5, 9))
    ]
    # Per-IP address behaviour: some stride, some repeat, some wander —
    # re-insertion must restart confidence/history from scratch either way.
    behaviours = {
        ip: rng.choice(("stride", "repeat", "wander")) for ip in ips
    }
    cursors = {ip: 0x30000 + index * 0x800 for index, ip in enumerate(ips)}
    events: Events = []
    while len(events) < count:
        if rng.random() < 0.7:
            ip = rng.choice(ips)
        else:
            # A hot favourite raises hit runs between its own evictions.
            ip = ips[0]
        behaviour = behaviours[ip]
        if behaviour == "stride":
            cursors[ip] += 16
            addr = cursors[ip]
        elif behaviour == "repeat":
            addr = cursors[ip]
        else:
            addr = cursors[ip] + rng.randrange(0, 64) * 8
        events.append(_load(ip, addr, rng.choice((0, 8))))
        if rng.random() < 0.1:
            events.append(_branch(_IP_BASE - 8, rng.random() < 0.5))
    return events


def _gen_mixed(rng: random.Random, count: int) -> Events:
    parts: Events = []
    generators = [
        _gen_aliasing, _gen_rds_walk, _gen_history_edge,
        _gen_offset_wrap, _gen_branch_churn, _gen_generation_churn,
    ]
    while len(parts) < count:
        chunk = rng.choice(generators)(rng, rng.randint(10, 40))
        parts.extend(chunk)
        if parts and rng.random() < 0.3:
            start = rng.randrange(len(parts))
            parts.extend(parts[start:start + rng.randint(2, 12)])
    return parts[:count]


PROFILES: Dict[str, Callable[[random.Random, int], Events]] = {
    "aliasing": _gen_aliasing,
    "rds_walk": _gen_rds_walk,
    "history_edge": _gen_history_edge,
    "offset_wrap": _gen_offset_wrap,
    "branch_churn": _gen_branch_churn,
    "generation_churn": _gen_generation_churn,
    "mixed": _gen_mixed,
}


def generate_events(
    profile: str, seed: int, count: int = 300
) -> Events:
    """Deterministically generate one fuzz trace."""
    return PROFILES[profile](random.Random(seed), count)


# ---------------------------------------------------------------------------
# Shrinking.
# ---------------------------------------------------------------------------


def shrink_events(
    events: Events,
    still_fails: Callable[[Events], bool],
    max_checks: int = 2000,
) -> Events:
    """ddmin-style minimisation: remove event chunks while the failure holds.

    Starts by deleting large complements and refines the granularity down
    to single events; terminates when no single event can be removed (or
    the check budget runs out).
    """
    current = list(events)
    chunks = 2
    checks = 0
    while len(current) >= 2 and checks < max_checks:
        size = max(1, len(current) // chunks)
        reduced = False
        start = 0
        while start < len(current) and checks < max_checks:
            candidate = current[:start] + current[start + size:]
            checks += 1
            if candidate and still_fails(candidate):
                current = candidate
                reduced = True
                # Same start again: the next chunk slid into this position.
            else:
                start += size
        if reduced:
            chunks = max(chunks - 1, 2)
        elif size == 1:
            break
        else:
            chunks = min(chunks * 2, len(current))
    return current


# ---------------------------------------------------------------------------
# The fuzz loop.
# ---------------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """A diverging fuzz case, minimised."""

    variant: str
    profile: str
    case_seed: int
    events: Events
    divergence: Divergence
    backend: str = "numpy"

    def describe(self) -> str:
        return (
            f"variant={self.variant} profile={self.profile}"
            f" seed={self.case_seed} backend={self.backend}"
            f" events={len(self.events)}\n"
            + self.divergence.format()
        )


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    events_per_case: int = 300,
    variants: Optional[Sequence[str]] = None,
    max_failures: int = 5,
    progress: Optional[Callable[[int, int], None]] = None,
    backends: Optional[Sequence[str]] = None,
) -> List[FuzzFailure]:
    """Run ``cases`` differential fuzz cases; return minimised failures.

    Fully deterministic in ``seed``: case ``i`` derives its own sub-seed,
    variant, profile and backend from the master stream, so one failing
    case can be reproduced independently of the rest of the run.  The
    backend draw alternates the replay between three-way (scalar only)
    and four-way (kernel lane live) so the two dispatch paths are both
    fuzzed; pass ``backends=("numpy",)`` to pin the kernel lane on.
    """
    master = random.Random(seed)
    names = list(variants) if variants else fuzz_variant_names()
    profile_names = list(PROFILES)
    lanes = list(backends) if backends else ["numpy", "numpy", "python"]
    failures: List[FuzzFailure] = []
    for case_index in range(cases):
        case_seed = master.randrange(1 << 30)
        backend = master.choice(lanes)
        variant = names[case_index % len(names)]
        profile = profile_names[(case_index // len(names)) % len(profile_names)]
        events = generate_events(profile, case_seed, events_per_case)
        divergence = verify_events(variant, events, backend=backend)
        if progress is not None:
            progress(case_index + 1, cases)
        if divergence is None:
            continue
        minimal = shrink_events(
            events,
            lambda candidate: verify_events(
                variant, candidate, backend=backend
            ) is not None,
        )
        final = verify_events(variant, minimal, backend=backend) or divergence
        failures.append(
            FuzzFailure(
                variant=variant,
                profile=profile,
                case_seed=case_seed,
                events=minimal,
                divergence=final,
                backend=backend,
            )
        )
        if len(failures) >= max_failures:
            break
    return failures
