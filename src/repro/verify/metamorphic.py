"""Metamorphic invariants: transformed traces with provable relations.

Differential replay catches implementations disagreeing with each other;
metamorphic checks catch all of them agreeing on something *wrong*.  Each
check transforms a trace in a way whose effect on predictor behaviour
follows exactly from the paper's rules, then asserts the relation on the
production implementation:

``ip_translation``
    Adding a multiple of ``4 * num_sets`` to every IP maps each static
    load to a fresh LB tag in the *same* set, injectively.  Set indexing,
    collisions, LRU order and all history/LT behaviour (which never see
    the IP) are unchanged, so the per-access predictions must be
    bit-identical for every predictor.

``stride_address_translation``
    Adding a constant to every load address commutes with the stride
    rules: deltas, two-delta agreement, confidence, CFI and interval
    bookkeeping are all functions of address differences (mod 2^32), so
    predictions translate by exactly the same constant and the
    speculative/correct pattern is unchanged.  (Deliberately *not* claimed
    for CAP: its folded history hashes absolute addresses, so translation
    legitimately changes LT aliasing.)

``cfi_relaxation``
    The CFI filter only ever *blocks* speculation — it feeds neither the
    confidence counter, the history, nor the tables.  Disabling it must
    leave every predicted address unchanged and can only turn speculative
    accesses on, never off.  (Stand-alone CAP/stride only: in the hybrid,
    unblocking one component can change which component is selected.)

``pf_relaxation``
    The PF bits only ever *veto* link writes.  Disabling them must yield
    zero PF rejections and at least as many link writes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from ..eval.metrics import PredictorMetrics
from ..serve.session import run_on_stream
from ..predictors.cap import CAPConfig, CAPPredictor
from ..predictors.link_table import LinkTableConfig
from ..predictors.stride import StrideConfig, StridePredictor

__all__ = ["METAMORPHIC_CHECKS", "run_metamorphic_checks"]

Events = Sequence[Sequence[int]]

_MASK32 = (1 << 32) - 1

_SMALL_LT = LinkTableConfig(entries=256, ways=1, tag_bits=8, pf_bits=2)
_SMALL_CAP = CAPConfig(lb_entries=64, lb_ways=2, lt=_SMALL_LT)
_SMALL_STRIDE = StrideConfig(entries=64, ways=2)


def _records(predictor, events: Events) -> List[tuple]:
    out: List[tuple] = []

    def observe(ip, offset, actual, prediction) -> None:
        out.append(
            (prediction.address, bool(prediction.speculative),
             prediction.source)
        )

    run_on_stream(predictor, events, PredictorMetrics(), observer=observe)
    return out


def _translate_ips(events: Events, delta: int) -> List[List[int]]:
    return [[tag, (ip + delta) & _MASK32, a, b] for tag, ip, a, b in events]


def _translate_load_addrs(events: Events, delta: int) -> List[List[int]]:
    return [
        [tag, ip, (a + delta) & _MASK32 if tag == 1 else a, b]
        for tag, ip, a, b in events
    ]


def check_ip_translation(events: Events) -> Optional[str]:
    for label, make, num_sets in (
        ("cap", lambda: CAPPredictor(_SMALL_CAP),
         _SMALL_CAP.lb_entries // _SMALL_CAP.lb_ways),
        ("stride", lambda: StridePredictor(_SMALL_STRIDE),
         _SMALL_STRIDE.entries // _SMALL_STRIDE.ways),
    ):
        base = _records(make(), events)
        for k in (1, 7):
            shifted = _records(
                make(), _translate_ips(events, 4 * num_sets * k)
            )
            if shifted != base:
                first = next(
                    i for i, (x, y) in enumerate(zip(base, shifted)) if x != y
                )
                return (
                    f"{label}: IP translation by {4 * num_sets * k} changed"
                    f" behaviour at load #{first}:"
                    f" base={base[first]} shifted={shifted[first]}"
                )
    return None


def check_stride_address_translation(events: Events) -> Optional[str]:
    predictor = StridePredictor(_SMALL_STRIDE)
    base = _records(predictor, events)
    for delta in (0x40, 0xFFFF0000, 0x7FFFFFFF):
        shifted = _records(
            StridePredictor(_SMALL_STRIDE),
            _translate_load_addrs(events, delta),
        )
        if len(shifted) != len(base):
            return "stride: address translation changed the load count"
        for i, ((a0, s0, src0), (a1, s1, src1)) in enumerate(
            zip(base, shifted)
        ):
            expect = (a0 + delta) & _MASK32 if a0 is not None else None
            if a1 != expect or s1 != s0 or src1 != src0:
                return (
                    f"stride: address translation by {delta:#x} broke"
                    f" equivariance at load #{i}:"
                    f" base={(a0, s0)} shifted={(a1, s1)}"
                )
    return None


def check_cfi_relaxation(events: Events) -> Optional[str]:
    for label, with_cfi, without_cfi in (
        (
            "cap",
            lambda: CAPPredictor(_SMALL_CAP),
            lambda: CAPPredictor(replace(_SMALL_CAP, cfi_mode="off")),
        ),
        (
            "stride",
            lambda: StridePredictor(_SMALL_STRIDE),
            lambda: StridePredictor(
                replace(_SMALL_STRIDE, cfi_mode="off")
            ),
        ),
    ):
        filtered = _records(with_cfi(), events)
        relaxed = _records(without_cfi(), events)
        if len(filtered) != len(relaxed):
            return f"{label}: disabling CFI changed the load count"
        for i, ((a0, s0, _), (a1, s1, _)) in enumerate(
            zip(filtered, relaxed)
        ):
            if a0 != a1:
                return (
                    f"{label}: disabling CFI changed a predicted address at"
                    f" load #{i}: {a0} -> {a1}"
                )
            if s0 and not s1:
                return (
                    f"{label}: disabling CFI *blocked* a speculative access"
                    f" at load #{i}"
                )
    return None


def check_pf_relaxation(events: Events) -> Optional[str]:
    gated = CAPPredictor(_SMALL_CAP)
    ungated = CAPPredictor(
        replace(_SMALL_CAP, lt=replace(_SMALL_LT, pf_bits=0))
    )
    run_on_stream(gated, events, PredictorMetrics())
    run_on_stream(ungated, events, PredictorMetrics())
    lt_gated = gated.component.link_table
    lt_ungated = ungated.component.link_table
    if lt_ungated.pf_rejections != 0:
        return (
            "cap: pf_bits=0 still rejected"
            f" {lt_ungated.pf_rejections} link writes"
        )
    if lt_ungated.link_writes < lt_gated.link_writes:
        return (
            "cap: disabling PF bits lost link writes"
            f" ({lt_gated.link_writes} -> {lt_ungated.link_writes})"
        )
    return None


METAMORPHIC_CHECKS: Dict[str, Callable[[Events], Optional[str]]] = {
    "ip_translation": check_ip_translation,
    "stride_address_translation": check_stride_address_translation,
    "cfi_relaxation": check_cfi_relaxation,
    "pf_relaxation": check_pf_relaxation,
}


def run_metamorphic_checks(events: Events) -> List[str]:
    """Run every invariant on one trace; return failure messages."""
    failures: List[str] = []
    for name, check in METAMORPHIC_CHECKS.items():
        message = check(events)
        if message is not None:
            failures.append(f"[{name}] {message}")
    return failures
