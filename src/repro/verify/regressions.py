"""Saved regression traces: minimal diverging cases, replayed forever.

Every divergence the fuzzer (or a developer) finds is shrunk and saved as
a small JSON file under ``tests/regressions/``.  The pytest suite replays
every file through the full three-way differential check, so a fixed bug
stays fixed and the exact trace that exposed it documents the fix.

File format (one JSON object)::

    {
      "name": "cap-aliasing-lru",
      "variant": "cap",            # a repro.verify.differential.VARIANTS key
      "note": "what this trace caught",
      "events": [[1, 16384, 65536, 8], [0, 16380, 1, 0], ...]
    }

``events`` rows are predictor-stream quadruples ``(tag, ip, a, b)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .differential import Divergence, verify_events

__all__ = [
    "RegressionCase",
    "default_regression_dir",
    "load_cases",
    "save_case",
]


def default_regression_dir() -> Path:
    """``tests/regressions/`` of the repository this package lives in."""
    return Path(__file__).resolve().parents[3] / "tests" / "regressions"


@dataclass
class RegressionCase:
    """One checked-in minimal trace."""

    name: str
    variant: str
    events: List[List[int]]
    note: str = ""
    path: Optional[Path] = field(default=None, repr=False)

    def replay(self) -> Optional[Divergence]:
        """Run the differential check; ``None`` means the bug stays fixed."""
        return verify_events(self.variant, self.events)


def save_case(
    case: RegressionCase, directory: Optional[Path] = None
) -> Path:
    directory = directory or default_regression_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    payload = {
        "name": case.name,
        "variant": case.variant,
        "note": case.note,
        "events": [list(event) for event in case.events],
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def load_cases(directory: Optional[Path] = None) -> List[RegressionCase]:
    """All saved cases, sorted by file name for a stable replay order."""
    directory = directory or default_regression_dir()
    cases: List[RegressionCase] = []
    if not directory.is_dir():
        return cases
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text())
        cases.append(
            RegressionCase(
                name=data["name"],
                variant=data["variant"],
                events=[list(event) for event in data["events"]],
                note=data.get("note", ""),
                path=path,
            )
        )
    return cases
