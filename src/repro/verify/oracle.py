"""Spec oracles: slow, dict-based reference models of the paper's predictors.

These models are written straight from the prose of Bekerman et al.
(Sections 3–4) and deliberately do **not** import anything from
:mod:`repro.predictors` — no shared tables, counters, history functions or
config objects.  Every structure is a plain dict or list, every rule is
spelled out inline, and clarity always wins over speed.  The differential
engine (:mod:`repro.verify.differential`) replays traces through an oracle
and through both production evaluation paths and requires them to be
bit-identical; a divergence means one side misreads the paper.

Scope: the *immediate-update* machine model of Section 4 (prediction
verified before the next load of the same static load resolves).  The
Section 5 pipelined model layers speculative state on top and is out of
oracle scope for now.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = [
    "OraclePrediction",
    "SpecCAP",
    "SpecStride",
    "SpecHybrid",
]

_MASK32 = (1 << 32) - 1


class OraclePrediction:
    """Duck-type of :class:`repro.predictors.base.Prediction`.

    Carries exactly the fields the runner loops and the differential
    records read, so an oracle can be driven by the *production*
    ``run_on_stream`` loop unchanged.
    """

    __slots__ = ("address", "speculative", "source", "ghr", "info")

    def __init__(
        self,
        address: Optional[int] = None,
        speculative: bool = False,
        source: str = "",
        ghr: int = 0,
        info: Optional[dict] = None,
    ) -> None:
        self.address = address
        self.speculative = speculative
        self.source = source
        self.ghr = ghr
        self.info = info

    @property
    def made(self) -> bool:
        return self.address is not None


# ---------------------------------------------------------------------------
# Shared scalar rules (Sections 3.2 and 3.4), restated from the prose.
# ---------------------------------------------------------------------------


def _mask(width: int) -> int:
    return (1 << width) - 1


def _fold(value: int, width: int) -> int:
    """xor-fold an address subset down to ``width`` bits."""
    folded = 0
    while value:
        folded ^= value & _mask(width)
        value >>= width
    return folded


class _HistoryRule:
    """shift(m)-xor history compaction: Section 3.2.

    ``new = truncate((old << m) ^ subset(address))`` where the subset drops
    the two LSBs and xor-folds the rest to the history width, and
    ``m = ceil(width / effective_length)``.
    """

    def __init__(self, width: int, length: int, drop_low_bits: int) -> None:
        self.width = width
        self.shift = max(1, math.ceil(width / length))
        self.drop_low_bits = drop_low_bits

    def update(self, history: int, address: int) -> int:
        subset = _fold(address >> self.drop_low_bits, self.width)
        return ((history << self.shift) ^ subset) & _mask(self.width)


class _Confidence:
    """Section 3.4 saturating confidence: +1 on correct, reset (or -1) on
    wrong, fires at the threshold."""

    __slots__ = ("value", "threshold", "maximum", "hysteresis")

    def __init__(
        self, threshold: int, maximum: Optional[int], hysteresis: bool,
    ) -> None:
        self.value = 0
        self.threshold = threshold
        self.maximum = threshold if maximum is None else maximum
        self.hysteresis = hysteresis

    @property
    def confident(self) -> bool:
        return self.value >= self.threshold

    def update(self, correct: bool) -> None:
        if correct:
            if self.value < self.maximum:
                self.value += 1
        elif self.hysteresis:
            if self.value > 0:
                self.value -= 1
        else:
            self.value = 0


class _CFI:
    """Control-flow indication filter (Section 3.4).

    ``last``: remember the GHR LSB pattern of the last wrong speculative
    access and refuse to speculate on it again; a correct prediction on
    that pattern redeems it.  ``paths``: one blocked bit per pattern.
    """

    __slots__ = ("mode", "bits", "bad_pattern", "bad_paths")

    def __init__(self, mode: str, bits: int) -> None:
        self.mode = mode
        self.bits = bits
        self.bad_pattern: Optional[int] = None
        self.bad_paths = 0

    def allows(self, ghr: int) -> bool:
        if self.mode == "off":
            return True
        pattern = ghr & _mask(self.bits)
        if self.mode == "last":
            return pattern != self.bad_pattern
        return not (self.bad_paths >> pattern) & 1

    def record(self, ghr: int, correct: bool, speculated: bool) -> None:
        if self.mode == "off":
            return
        pattern = ghr & _mask(self.bits)
        if self.mode == "last":
            if not correct and speculated:
                self.bad_pattern = pattern
            elif correct and self.bad_pattern == pattern:
                self.bad_pattern = None
        else:
            if correct:
                self.bad_paths &= ~(1 << pattern)
            elif speculated:
                self.bad_paths |= 1 << pattern


class _LRUSets:
    """A set-associative table as a list of insertion-ordered dicts.

    Keys are split exactly like the hardware structure: the low
    ``log2(sets)`` bits pick the set, the rest is the (dict) tag.  Dict
    order *is* recency order — a touch pops and re-inserts, eviction drops
    the first (= least recently touched) item.
    """

    def __init__(self, entries: int, ways: int) -> None:
        self.ways = ways
        self.num_sets = entries // ways
        self.index_mask = self.num_sets - 1
        self.sets: List[Dict[int, dict]] = [{} for _ in range(self.num_sets)]

    def lookup(self, key: int) -> Optional[dict]:
        """Return the entry for ``key`` (refreshing its recency) or None."""
        bucket = self.sets[key & self.index_mask]
        entry = bucket.pop(key, None)
        if entry is not None:
            bucket[key] = entry  # most recently used again
        return entry

    def insert(self, key: int, entry: dict) -> None:
        """Insert ``key``, evicting the set's LRU entry when full."""
        bucket = self.sets[key & self.index_mask]
        if key not in bucket and len(bucket) >= self.ways:
            del bucket[next(iter(bucket))]
        bucket.pop(key, None)
        bucket[key] = entry

    def items(self) -> List[Tuple[int, dict]]:
        return [(key, e) for bucket in self.sets for key, e in bucket.items()]


# ---------------------------------------------------------------------------
# The CAP rules (Section 3): Load Buffer fields + Link Table.
# ---------------------------------------------------------------------------


class _CapCore:
    """CAP prediction/training rules plus the Link Table they own.

    Operates on per-static-load *field dicts* so :class:`SpecHybrid` can
    embed the same rules over its shared Load Buffer, mirroring the
    paper's shared-LB organisation (Section 3.7).
    """

    def __init__(
        self,
        lt_entries: int = 4096,
        lt_ways: int = 1,
        tag_bits: int = 8,
        pf_bits: int = 4,
        pf_low_bit: int = 2,
        pf_decoupled: bool = False,
        pf_table_entries: int = 16384,
        history_length: int = 4,
        offset_bits: int = 8,
        correlation: str = "base",
        confidence_threshold: int = 2,
        confidence_max: Optional[int] = None,
        hysteresis: bool = False,
        cfi_mode: str = "last",
        cfi_bits: int = 4,
        drop_low_bits: int = 2,
    ) -> None:
        self.lt_ways = lt_ways
        self.lt_sets = lt_entries // lt_ways
        self.index_bits = self.lt_sets.bit_length() - 1
        self.tag_bits = tag_bits
        self.history_bits = self.index_bits + tag_bits
        self.pf_bits = pf_bits
        self.pf_low_bit = pf_low_bit
        self.offset_bits = offset_bits
        self.offset_mask = _mask(offset_bits)
        self.correlation = correlation
        self.confidence_threshold = confidence_threshold
        self.confidence_max = confidence_max
        self.hysteresis = hysteresis
        self.cfi_mode = cfi_mode
        self.cfi_bits = cfi_bits
        self.history_rule = _HistoryRule(
            self.history_bits, history_length, drop_low_bits
        )
        # The Link Table: per set, an ordered list of way dicts
        # {"link", "tag", "pf", "stamp"}.  Invalid ways have link None.
        self.lt: List[List[dict]] = [
            [
                {"link": None, "tag": None, "pf": None, "stamp": 0}
                for _ in range(lt_ways)
            ]
            for _ in range(self.lt_sets)
        ]
        self.lt_clock = 0
        # Optional decoupled PF side table (Section 3.5, after [Mora98]).
        self.pf_table: Optional[List[Optional[int]]] = (
            [None] * pf_table_entries if pf_decoupled else None
        )
        self.pf_table_mask = pf_table_entries - 1

    # -- per-load fields ----------------------------------------------------

    def new_fields(self, offset: int) -> dict:
        """Fresh LB fields for a static load first seen with ``offset``.

        Only the offset LSBs are recorded (Section 3.3) — and they are
        captured once, at allocation, like the hardware entry's immediate
        field.
        """
        return {
            "offset": offset & self.offset_mask,
            "history": 0,
            "confidence": _Confidence(
                self.confidence_threshold, self.confidence_max, self.hysteresis
            ),
            "cfi": _CFI(self.cfi_mode, self.cfi_bits),
            "last_addr": None,
        }

    # -- base-address arithmetic (truncated 8-bit adders, Section 3.3) ------

    def base_of(self, addr: int, offset: int) -> int:
        om = self.offset_mask
        return (addr & ~om) | ((addr - (offset & om)) & om)

    def addr_of(self, base: int, offset: int) -> int:
        om = self.offset_mask
        return (base & ~om) | ((base + (offset & om)) & om)

    def _link_value(self, fields: dict, actual: int) -> Optional[int]:
        if self.correlation == "base":
            return self.base_of(actual, fields["offset"])
        if self.correlation == "real":
            return actual
        if fields["last_addr"] is None:
            return None
        return (actual - fields["last_addr"]) & _MASK32

    def _predicted_addr(self, fields: dict, link: int) -> Optional[int]:
        if self.correlation == "base":
            return self.addr_of(link, fields["offset"])
        if self.correlation == "real":
            return link
        if fields["last_addr"] is None:
            return None
        return (fields["last_addr"] + link) & _MASK32

    # -- Link Table ---------------------------------------------------------

    def _lt_split(self, history: int) -> Tuple[int, int]:
        index = history & (self.lt_sets - 1)
        tag = (history >> self.index_bits) & _mask(self.tag_bits)
        return index, tag

    def lt_lookup(self, history: int) -> Tuple[Optional[int], bool]:
        """``(link, tag_ok)``: tag match wins; otherwise the most recently
        written way still provides a low-confidence link ("a prediction is
        always performed on a LB hit")."""
        index, tag = self._lt_split(history)
        ways = self.lt[index]
        if self.tag_bits == 0:
            entry = ways[0]
            if entry["link"] is None:
                return None, False
            return entry["link"], True
        best = None
        for entry in ways:
            if entry["link"] is None:
                continue
            if entry["tag"] == tag:
                return entry["link"], True
            if best is None or entry["stamp"] > best["stamp"]:
                best = entry
        if best is None:
            return None, False
        return best["link"], False

    def lt_update(self, history: int, value: int) -> None:
        """Record context -> value, subject to the PF filter (Section 3.5).

        The PF bits themselves always track the newest value; the link and
        tag are overwritten only when the value's PF bits match the stored
        ones — a link must be seen twice in a row to displace another.
        """
        index, tag = self._lt_split(history)
        ways = self.lt[index]
        self.lt_clock += 1
        target = None
        for entry in ways:  # tag match first
            if entry["link"] is not None and entry["tag"] == tag:
                target = entry
                break
        if target is None:  # then any invalid way
            for entry in ways:
                if entry["link"] is None:
                    target = entry
                    break
        if target is None:  # then the LRU victim
            target = min(ways, key=lambda e: e["stamp"])
        # PF gate.
        if self.pf_bits:
            pf_new = (value >> self.pf_low_bit) & _mask(self.pf_bits)
            if self.pf_table is not None:
                slot = history & self.pf_table_mask
                previous = self.pf_table[slot]
                self.pf_table[slot] = pf_new
            else:
                previous = target["pf"]
                target["pf"] = pf_new
            if previous != pf_new:
                return  # rejected: value not yet seen twice in this context
        target["link"] = value
        target["tag"] = tag
        target["stamp"] = self.lt_clock

    def lt_dump(self) -> List[Tuple[int, int, int, Optional[int], Optional[int]]]:
        """Architectural LT contents, same format as ``LinkTable.dump``."""
        return [
            (set_index, way_index, e["link"], e["tag"], e["pf"])
            for set_index, ways in enumerate(self.lt)
            for way_index, e in enumerate(ways)
            if e["link"] is not None
        ]

    # -- prediction / training ---------------------------------------------

    def predict(self, fields: dict, ghr: int) -> OraclePrediction:
        link, tag_ok = self.lt_lookup(fields["history"])
        if link is None:
            return OraclePrediction(source="cap", ghr=ghr)
        address = self._predicted_addr(fields, link)
        if address is None:
            return OraclePrediction(source="cap", ghr=ghr)
        speculative = (
            tag_ok
            and fields["confidence"].confident
            and fields["cfi"].allows(ghr)
        )
        return OraclePrediction(
            address=address, speculative=speculative, source="cap", ghr=ghr,
        )

    def train(
        self,
        fields: dict,
        actual: int,
        predicted_addr: Optional[int],
        ghr_at_predict: int,
        speculated: bool,
        update_lt: bool = True,
    ) -> None:
        if predicted_addr is not None:
            correct = predicted_addr == actual
            fields["confidence"].update(correct)
            fields["cfi"].record(ghr_at_predict, correct, speculated)
        value = self._link_value(fields, actual)
        if value is not None:
            if update_lt:
                # The pre-update history is the context that led here.
                self.lt_update(fields["history"], value)
            fields["history"] = self.history_rule.update(
                fields["history"], value
            )
        fields["last_addr"] = actual


# ---------------------------------------------------------------------------
# The stride rules (Sections 2, 4.4): two-delta + CFI + interval.
# ---------------------------------------------------------------------------


class _StrideCore:
    """Enhanced-stride prediction/training rules over per-load field dicts."""

    def __init__(
        self,
        confidence_threshold: int = 2,
        confidence_max: Optional[int] = None,
        hysteresis: bool = False,
        two_delta: bool = True,
        cfi_mode: str = "last",
        cfi_bits: int = 4,
        use_interval: bool = True,
    ) -> None:
        self.confidence_threshold = confidence_threshold
        self.confidence_max = confidence_max
        self.hysteresis = hysteresis
        self.two_delta = two_delta
        self.cfi_mode = cfi_mode
        self.cfi_bits = cfi_bits
        self.use_interval = use_interval

    def new_fields(self) -> dict:
        return {
            "last_addr": None,
            "stride": 0,
            "last_delta": None,
            "confidence": _Confidence(
                self.confidence_threshold, self.confidence_max, self.hysteresis
            ),
            "cfi": _CFI(self.cfi_mode, self.cfi_bits),
            "run_length": 0,
            "interval": 0,
        }

    def predict(self, fields: dict, ghr: int) -> OraclePrediction:
        if fields["last_addr"] is None:
            return OraclePrediction(source="stride", ghr=ghr)
        address = (fields["last_addr"] + fields["stride"]) & _MASK32
        speculative = (
            fields["confidence"].confident and fields["cfi"].allows(ghr)
        )
        if (
            speculative
            and self.use_interval
            and fields["interval"]
            and fields["run_length"] >= fields["interval"]
        ):
            # Learned traversal length exhausted: withhold rather than
            # mispredict off the end of the array (Section 4.4).
            speculative = False
        return OraclePrediction(
            address=address, speculative=speculative, source="stride", ghr=ghr,
        )

    def train(
        self,
        fields: dict,
        actual: int,
        predicted_addr: Optional[int],
        ghr_at_predict: int,
        speculated: bool,
        had_prediction: bool = True,
    ) -> None:
        if not had_prediction and predicted_addr is None:
            # No captured sub-prediction (hybrid LB-miss path): in the
            # immediate model the in-flight value is last_addr + stride.
            if fields["last_addr"] is not None:
                predicted_addr = (
                    fields["last_addr"] + fields["stride"]
                ) & _MASK32
        if predicted_addr is not None:
            correct = predicted_addr == actual
            fields["confidence"].update(correct)
            fields["cfi"].record(ghr_at_predict, correct, speculated)
            if self.use_interval:
                if correct:
                    fields["run_length"] += 1
                else:
                    if fields["run_length"]:
                        fields["interval"] = fields["run_length"]
                    fields["run_length"] = 0
        if fields["last_addr"] is not None:
            delta = (actual - fields["last_addr"]) & _MASK32
            if self.two_delta:
                if (
                    fields["last_delta"] is not None
                    and delta == fields["last_delta"]
                ):
                    fields["stride"] = delta
                fields["last_delta"] = delta
            else:
                fields["stride"] = delta
        fields["last_addr"] = actual


# ---------------------------------------------------------------------------
# Stand-alone oracles (own Load Buffer) and the shared-LB hybrid.
# ---------------------------------------------------------------------------


class SpecCAP:
    """Reference CAP: Section 3's two-level LB/LT organisation."""

    def __init__(
        self, lb_entries: int = 4096, lb_ways: int = 2, **core_kwargs,
    ) -> None:
        self.core = _CapCore(**core_kwargs)
        self.lb = _LRUSets(lb_entries, lb_ways)
        self.ghr = 0

    name = "spec-cap"

    def predict(self, ip: int, offset: int) -> OraclePrediction:
        fields = self.lb.lookup(ip >> 2)
        if fields is None:
            self.lb.insert(ip >> 2, self.core.new_fields(offset))
            return OraclePrediction(source="cap", ghr=self.ghr)
        return self.core.predict(fields, self.ghr)

    def update(
        self, ip: int, offset: int, actual: int, prediction: OraclePrediction,
    ) -> None:
        fields = self.lb.lookup(ip >> 2)
        if fields is None:
            fields = self.core.new_fields(offset)
            self.lb.insert(ip >> 2, fields)
        self.core.train(
            fields,
            actual,
            predicted_addr=prediction.address,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative,
        )

    def on_branch(self, ip: int, taken: bool) -> None:
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & _mask(16)

    def on_call(self, ip: int) -> None:
        pass

    def on_return(self, ip: int) -> None:
        pass

    # -- verification hooks -------------------------------------------------

    def lt_dump(self):
        return self.core.lt_dump()

    def confidence_dump(self) -> Dict[int, tuple]:
        return {
            key: (fields["confidence"].value,)
            for key, fields in self.lb.items()
        }


class SpecStride:
    """Reference (enhanced) stride predictor over its own Load Buffer."""

    def __init__(
        self, entries: int = 4096, ways: int = 2, **core_kwargs,
    ) -> None:
        self.core = _StrideCore(**core_kwargs)
        self.lb = _LRUSets(entries, ways)
        self.ghr = 0

    name = "spec-stride"

    def predict(self, ip: int, offset: int) -> OraclePrediction:
        fields = self.lb.lookup(ip >> 2)
        if fields is None:
            self.lb.insert(ip >> 2, self.core.new_fields())
            return OraclePrediction(source="stride", ghr=self.ghr)
        return self.core.predict(fields, self.ghr)

    def update(
        self, ip: int, offset: int, actual: int, prediction: OraclePrediction,
    ) -> None:
        fields = self.lb.lookup(ip >> 2)
        if fields is None:
            fields = self.core.new_fields()
            self.lb.insert(ip >> 2, fields)
        self.core.train(
            fields,
            actual,
            predicted_addr=prediction.address,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative,
            had_prediction=True,
        )

    def on_branch(self, ip: int, taken: bool) -> None:
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & _mask(16)

    def on_call(self, ip: int) -> None:
        pass

    def on_return(self, ip: int) -> None:
        pass

    def lt_dump(self):
        return []

    def confidence_dump(self) -> Dict[int, tuple]:
        return {
            key: (fields["confidence"].value,)
            for key, fields in self.lb.items()
        }


class SpecHybrid:
    """Reference hybrid: one shared LB, both components, 2-bit selector.

    Selection rule (Sections 3.7, 4.3): a lone confident component wins; a
    confident pair is arbitrated by the selector; with no confident
    component, a lone produced address wins, else the selector's favourite
    provides the non-speculative prediction.  The LB is always trained;
    the LT update may be withheld by the Section 4.3 policies.
    """

    def __init__(
        self,
        lb_entries: int = 4096,
        lb_ways: int = 2,
        selector_bits: int = 2,
        selector_init: int = 2,
        static_selector: Optional[str] = None,
        lt_update_policy: str = "always",
        cap_kwargs: Optional[dict] = None,
        stride_kwargs: Optional[dict] = None,
    ) -> None:
        self.cap = _CapCore(**(cap_kwargs or {}))
        self.stride = _StrideCore(**(stride_kwargs or {}))
        self.lb = _LRUSets(lb_entries, lb_ways)
        self.selector_max = (1 << selector_bits) - 1
        self.selector_init = selector_init
        self.static_selector = static_selector
        self.lt_update_policy = lt_update_policy
        self.ghr = 0

    name = "spec-hybrid"

    def _new_entry(self, offset: int) -> dict:
        return {
            "cap": self.cap.new_fields(offset),
            "stride": self.stride.new_fields(),
            "selector": self.selector_init,
        }

    def _select(self, entry: dict) -> str:
        if self.static_selector is not None:
            return self.static_selector
        # Counter high half selects CAP (state init "weak CAP").
        if entry["selector"] > self.selector_max / 2:
            return "cap"
        return "stride"

    def predict(self, ip: int, offset: int) -> OraclePrediction:
        entry = self.lb.lookup(ip >> 2)
        if entry is None:
            self.lb.insert(ip >> 2, self._new_entry(offset))
            return OraclePrediction(source="hybrid", ghr=self.ghr)
        ghr = self.ghr
        cap_pred = self.cap.predict(entry["cap"], ghr)
        stride_pred = self.stride.predict(entry["stride"], ghr)

        if cap_pred.speculative and stride_pred.speculative:
            selected = self._select(entry)
        elif cap_pred.speculative:
            selected = "cap"
        elif stride_pred.speculative:
            selected = "stride"
        elif cap_pred.made and not stride_pred.made:
            selected = "cap"
        elif stride_pred.made and not cap_pred.made:
            selected = "stride"
        else:
            selected = self._select(entry)

        chosen = cap_pred if selected == "cap" else stride_pred
        return OraclePrediction(
            address=chosen.address,
            speculative=chosen.speculative,
            source=selected,
            ghr=ghr,
            info={"cap": cap_pred, "stride": stride_pred},
        )

    def update(
        self, ip: int, offset: int, actual: int, prediction: OraclePrediction,
    ) -> None:
        entry = self.lb.lookup(ip >> 2)
        if entry is None:
            entry = self._new_entry(offset)
            self.lb.insert(ip >> 2, entry)

        info = prediction.info or {}
        cap_pred = info.get("cap")
        stride_pred = info.get("stride")
        cap_addr = cap_pred.address if cap_pred else None
        stride_addr = stride_pred.address if stride_pred else None
        selected = prediction.source

        cap_correct = cap_addr == actual if cap_addr is not None else None
        stride_correct = (
            stride_addr == actual if stride_addr is not None else None
        )

        # Section 4.3 LT update policies.
        update_lt = True
        if self.lt_update_policy == "unless_stride_correct":
            update_lt = not bool(stride_correct)
        elif self.lt_update_policy == "unless_stride_selected":
            update_lt = not (
                bool(stride_correct)
                and selected == "stride"
                and prediction.speculative
            )

        self.cap.train(
            entry["cap"],
            actual,
            predicted_addr=cap_addr,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative and selected == "cap",
            update_lt=update_lt,
        )
        self.stride.train(
            entry["stride"],
            actual,
            predicted_addr=stride_addr,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative and selected == "stride",
            had_prediction=stride_pred is not None,
        )

        # Selector: trained on relative component performance only.
        if cap_correct is not None and stride_correct is not None:
            if cap_correct and not stride_correct:
                if entry["selector"] < self.selector_max:
                    entry["selector"] += 1
            elif stride_correct and not cap_correct:
                if entry["selector"] > 0:
                    entry["selector"] -= 1

    def on_branch(self, ip: int, taken: bool) -> None:
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & _mask(16)

    def on_call(self, ip: int) -> None:
        pass

    def on_return(self, ip: int) -> None:
        pass

    def lt_dump(self):
        return self.cap.lt_dump()

    def confidence_dump(self) -> Dict[int, tuple]:
        return {
            key: (
                entry["cap"]["confidence"].value,
                entry["stride"]["confidence"].value,
                entry["selector"],
            )
            for key, entry in self.lb.items()
        }
