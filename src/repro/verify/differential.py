"""Differential engine: replay one trace through four implementations.

For a given *variant* (a named predictor configuration) the engine runs the
same predictor-visible event stream through

1. the spec oracle (:mod:`repro.verify.oracle`),
2. the production predictor via :func:`repro.eval.runner.run_on_stream`,
3. a second production instance via
   :func:`repro.eval.runner.run_on_columns` (scalar columnar loop), and
4. the batch-kernel path (:func:`repro.kernels.run_batch`) when the
   variant's predictor supports it and the numpy backend is selected,

and requires all of them to be bit-identical: every per-access prediction
(address, speculative flag, source component), the final metrics counters,
the final Link Table contents, and the final per-load confidence state.
The first divergence is reported with the state each path had at the
moment the diverging prediction was made.

The vectorized lane is allowed to *decline* — a kernel raising
:class:`~repro.kernels.BatchFallback` (set-associative Link Table, the
``unless_stride_selected`` policy) or a forced ``python`` backend simply
drops the fourth lane, because that is exactly what the production
dispatch does.  Lane absence is reported to callers via
:func:`vectorized_lane_ran` so smoke jobs can assert the lane actually
executed where it should.

Variants use deliberately *small* geometries — a 64-entry Load Buffer and
a few-hundred-entry Link Table alias orders of magnitude sooner than the
paper's 4K-entry structures, which is exactly where update-ordering bugs
hide, and four-way replay of fuzzed traces stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..eval.metrics import PredictorMetrics
from ..serve.session import run_on_columns, run_on_stream
from ..predictors.base import AddressPredictor
from ..predictors.cap import CAPConfig, CAPPredictor
from ..predictors.hybrid import HybridConfig, HybridPredictor
from ..predictors.link_table import LinkTableConfig
from ..predictors.stride import StrideConfig, StridePredictor
from ..trace.trace import PredictorStream
from .oracle import SpecCAP, SpecHybrid, SpecStride

__all__ = [
    "VARIANTS",
    "VariantSpec",
    "Divergence",
    "verify_events",
    "vectorized_lane_ran",
    "fuzz_variant_names",
]

Events = Sequence[Sequence[int]]

#: What the observer captures per dynamic load.  The prediction-time GHR is
#: deliberately absent: it is bookkeeping for delayed training, not an
#: architectural output (the production stride predictor leaves it 0 on a
#: Load Buffer miss while CAP snapshots it — both are correct because it is
#: never read on that path).
AccessRecord = Tuple[int, int, int, Optional[int], bool, str]

_RECORD_FIELDS = ("ip", "offset", "actual", "address", "speculative", "source")


# ---------------------------------------------------------------------------
# Variant registry: production builder + oracle builder from one config.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VariantSpec:
    """One named predictor configuration under differential test."""

    name: str
    description: str
    production: Callable[[], AddressPredictor]
    oracle: Callable[[], object]
    #: Whether the fuzzer should include this variant by default.
    fuzzed: bool = True


def _cap_oracle_kwargs(cfg: CAPConfig) -> dict:
    return dict(
        lt_entries=cfg.lt.entries,
        lt_ways=cfg.lt.ways,
        tag_bits=cfg.lt.tag_bits,
        pf_bits=cfg.lt.pf_bits,
        pf_low_bit=cfg.lt.pf_low_bit,
        pf_decoupled=cfg.lt.pf_decoupled,
        pf_table_entries=cfg.lt.pf_table_entries,
        history_length=cfg.history_length,
        offset_bits=cfg.offset_bits,
        correlation=cfg.correlation,
        confidence_threshold=cfg.confidence_threshold,
        confidence_max=cfg.confidence_max,
        hysteresis=cfg.hysteresis,
        cfi_mode=cfg.cfi_mode,
        cfi_bits=cfg.cfi_bits,
        drop_low_bits=cfg.drop_low_bits,
    )


def _stride_oracle_kwargs(cfg: StrideConfig) -> dict:
    return dict(
        confidence_threshold=cfg.confidence_threshold,
        confidence_max=cfg.confidence_max,
        hysteresis=cfg.hysteresis,
        two_delta=cfg.two_delta,
        cfi_mode=cfg.cfi_mode,
        cfi_bits=cfg.cfi_bits,
        use_interval=cfg.use_interval,
    )


def _cap_variant(name: str, description: str, cfg: CAPConfig) -> VariantSpec:
    return VariantSpec(
        name,
        description,
        production=lambda: CAPPredictor(cfg),
        oracle=lambda: SpecCAP(
            lb_entries=cfg.lb_entries,
            lb_ways=cfg.lb_ways,
            **_cap_oracle_kwargs(cfg),
        ),
    )


def _stride_variant(
    name: str, description: str, cfg: StrideConfig
) -> VariantSpec:
    return VariantSpec(
        name,
        description,
        production=lambda: StridePredictor(cfg),
        oracle=lambda: SpecStride(
            entries=cfg.entries, ways=cfg.ways, **_stride_oracle_kwargs(cfg)
        ),
    )


def _hybrid_variant(
    name: str, description: str, cfg: HybridConfig
) -> VariantSpec:
    return VariantSpec(
        name,
        description,
        production=lambda: HybridPredictor(cfg),
        oracle=lambda: SpecHybrid(
            lb_entries=cfg.lb_entries,
            lb_ways=cfg.lb_ways,
            selector_bits=cfg.selector_bits,
            selector_init=cfg.selector_init,
            static_selector=cfg.static_selector,
            lt_update_policy=cfg.lt_update_policy,
            cap_kwargs=_cap_oracle_kwargs(cfg.cap),
            stride_kwargs=_stride_oracle_kwargs(cfg.stride),
        ),
    )


def _small_cap(**overrides) -> CAPConfig:
    lt = overrides.pop(
        "lt", LinkTableConfig(entries=256, ways=1, tag_bits=8, pf_bits=2)
    )
    params = dict(lb_entries=64, lb_ways=2, lt=lt)
    params.update(overrides)
    return CAPConfig(**params)


_SPECS = [
    _cap_variant(
        "cap",
        "baseline CAP scaled down (64x2 LB, 256-entry LT, 8-bit tags)",
        _small_cap(),
    ),
    _cap_variant(
        "cap-assoc",
        "2-way LT, paths CFI, hysteresis, raised confidence ceiling",
        _small_cap(
            lt=LinkTableConfig(entries=128, ways=2, tag_bits=4, pf_bits=4),
            cfi_mode="paths",
            cfi_bits=3,
            hysteresis=True,
            confidence_max=3,
        ),
    ),
    _cap_variant(
        "cap-delta",
        "delta correlation, untagged direct-mapped LT, no PF bits",
        _small_cap(
            lt=LinkTableConfig(entries=256, ways=1, tag_bits=0, pf_bits=0),
            correlation="delta",
            cfi_mode="off",
        ),
    ),
    _cap_variant(
        "cap-real",
        "real-address correlation (no base-address arithmetic)",
        _small_cap(
            lt=LinkTableConfig(entries=128, ways=1, tag_bits=6, pf_bits=2),
            correlation="real",
        ),
    ),
    _cap_variant(
        "cap-pf-decoupled",
        "decoupled PF side table",
        _small_cap(
            lt=LinkTableConfig(
                entries=128, ways=1, tag_bits=6, pf_bits=3,
                pf_decoupled=True, pf_table_entries=512,
            ),
        ),
    ),
    _cap_variant(
        "cap-short-history",
        "8-bit history (64-entry LT, 2-bit tags), length 8 => shift 1",
        _small_cap(
            lt=LinkTableConfig(entries=64, ways=1, tag_bits=2, pf_bits=2),
            history_length=8,
            offset_bits=4,
        ),
    ),
    _stride_variant(
        "stride",
        "enhanced stride (CFI + interval) scaled down",
        StrideConfig(entries=64, ways=2),
    ),
    _stride_variant(
        "basic-stride",
        "plain two-delta stride",
        StrideConfig.basic(entries=64, ways=2),
    ),
    _hybrid_variant(
        "hybrid",
        "shared-LB hybrid, always-update LT policy",
        HybridConfig(lb_entries=64, lb_ways=2, cap=_small_cap()),
    ),
    _hybrid_variant(
        "hybrid-stride-correct",
        "hybrid with the unless-stride-correct LT policy",
        HybridConfig(
            lb_entries=64, lb_ways=2, cap=_small_cap(),
            lt_update_policy="unless_stride_correct",
        ),
    ),
    _hybrid_variant(
        "hybrid-stride-selected",
        "hybrid with the unless-stride-selected LT policy, 3-bit selector",
        HybridConfig(
            lb_entries=64, lb_ways=2, cap=_small_cap(),
            lt_update_policy="unless_stride_selected",
            selector_bits=3, selector_init=4,
        ),
    ),
]

#: name -> :class:`VariantSpec`
VARIANTS: Dict[str, VariantSpec] = {spec.name: spec for spec in _SPECS}


def fuzz_variant_names() -> List[str]:
    """Variants the fuzzer rotates through by default."""
    return [spec.name for spec in VARIANTS.values() if spec.fuzzed]


# ---------------------------------------------------------------------------
# State extraction (works on production predictors and oracles alike).
# ---------------------------------------------------------------------------


def _lt_dump(predictor) -> list:
    if isinstance(predictor, CAPPredictor):
        return predictor.component.link_table.dump()
    if isinstance(predictor, HybridPredictor):
        return predictor.cap.link_table.dump()
    if isinstance(predictor, StridePredictor):
        return []
    return predictor.lt_dump()  # oracle


def _confidence_dump(predictor) -> Dict[int, tuple]:
    if isinstance(predictor, CAPPredictor):
        return {
            key: (state.confidence.value,)
            for key, state in predictor.load_buffer
        }
    if isinstance(predictor, StridePredictor):
        return {
            key: (state.confidence.value,) for key, state in predictor.table
        }
    if isinstance(predictor, HybridPredictor):
        return {
            key: (
                entry.cap.confidence.value,
                entry.stride.confidence.value,
                entry.selector.value,
            )
            for key, entry in predictor.load_buffer
        }
    return predictor.confidence_dump()  # oracle


def _metrics_tuple(metrics: PredictorMetrics) -> tuple:
    return (
        metrics.loads,
        metrics.predictions,
        metrics.correct_predictions,
        metrics.speculative,
        metrics.correct_speculative,
    )


# ---------------------------------------------------------------------------
# Replay plumbing.
# ---------------------------------------------------------------------------


def _recording_observer(records: List[AccessRecord]) -> Callable:
    def observe(ip: int, offset: int, actual: int, prediction) -> None:
        records.append(
            (
                ip,
                offset,
                actual,
                prediction.address,
                bool(prediction.speculative),
                prediction.source,
            )
        )

    return observe


def _columns_of(events: Events) -> PredictorStream:
    tags: List[int] = []
    ips: List[int] = []
    a: List[int] = []
    b: List[int] = []
    for tag, ip, ea, eb in events:
        tags.append(tag)
        ips.append(ip)
        a.append(ea)
        b.append(eb)
    return PredictorStream(tags, ips, a, b)


def _vectorized_lane(
    spec: VariantSpec,
    events: Events,
    warmup_loads: int,
    backend: Optional[str],
) -> Optional[tuple]:
    """Run the batch-kernel lane; ``None`` when the lane does not apply.

    Mirrors the production dispatch in :func:`repro.kernels.try_run_batch`:
    the lane is skipped when the backend resolves to ``python``, when the
    variant's predictor has no kernels, or when the kernel declines with
    :class:`~repro.kernels.BatchFallback`.  Returns ``(records, metrics,
    predictor)`` on success, with the predictor holding end-of-stream
    state for the architectural comparisons.
    """
    from ..kernels import (
        BACKEND_NUMPY,
        batch_records,
        fold_metrics,
        resolve_backend,
        run_batch,
        supports_batch,
    )

    if (backend or resolve_backend()) != BACKEND_NUMPY:
        return None
    subject = spec.production()
    if not supports_batch(subject):
        return None
    stream = _columns_of(events)
    result = run_batch(subject, stream, warmup_loads)
    if result is None:
        return None
    metrics = PredictorMetrics()
    fold_metrics(result, metrics, warmup_loads)
    metrics.backend = BACKEND_NUMPY
    return batch_records(result, stream), metrics, subject


def vectorized_lane_ran(
    variant_name: str,
    events: Events,
    backend: Optional[str] = None,
) -> bool:
    """Whether the four-way replay's kernel lane executes for this input.

    Used by parity smoke jobs to assert the fourth lane is live (a replay
    where every kernel silently declined would vacuously "pass").
    """
    spec = VARIANTS[variant_name]
    return _vectorized_lane(spec, events, 0, backend) is not None


class _StopReplay(Exception):
    pass


def _state_at(
    build: Callable[[], object], events: Events, access_index: int
) -> dict:
    """Replay until the given dynamic load's prediction and dump state.

    The dump reflects the tables exactly as the diverging prediction saw
    them (its own lookup included, none of its training applied).
    """
    subject = build()
    seen = [0]

    def observe(ip, offset, actual, prediction) -> None:
        if seen[0] == access_index:
            raise _StopReplay
        seen[0] += 1

    try:
        run_on_stream(subject, events, PredictorMetrics(), observer=observe)
    except _StopReplay:
        pass
    return {
        "link_table": sorted(_lt_dump(subject)),
        "confidence": sorted(_confidence_dump(subject).items()),
    }


# ---------------------------------------------------------------------------
# Divergence reporting.
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """First observed disagreement between two replay paths."""

    variant: str
    kind: str            # "access" | "metrics" | "link_table" | "confidence"
    paths: str           # e.g. "oracle vs stream"
    access_index: Optional[int]
    detail: str
    state_dumps: Dict[str, dict]

    def format(self, state_lines: int = 12) -> str:
        lines = [
            f"DIVERGENCE in variant {self.variant!r}: {self.paths}",
            f"  kind: {self.kind}"
            + (
                f", dynamic load #{self.access_index}"
                if self.access_index is not None
                else ""
            ),
            f"  {self.detail}",
        ]
        for path, dump in self.state_dumps.items():
            lines.append(f"  state[{path}]:")
            for section, content in dump.items():
                shown = content[:state_lines]
                suffix = (
                    f" ... (+{len(content) - state_lines} more)"
                    if len(content) > state_lines
                    else ""
                )
                lines.append(f"    {section}: {shown}{suffix}")
        return "\n".join(lines)


def _describe_record(record: AccessRecord) -> str:
    return ", ".join(
        f"{field}={value:#x}" if isinstance(value, int) and field != "actual"
        else f"{field}={value}"
        for field, value in zip(_RECORD_FIELDS, record)
    )


def _first_record_divergence(
    variant: str,
    events: Events,
    label_a: str,
    records_a: List[AccessRecord],
    build_a: Callable[[], object],
    label_b: str,
    records_b: List[AccessRecord],
    build_b: Callable[[], object],
) -> Optional[Divergence]:
    for index, (rec_a, rec_b) in enumerate(zip(records_a, records_b)):
        if rec_a != rec_b:
            fields = [
                f"{field}: {label_a}={a!r} {label_b}={b!r}"
                for field, a, b in zip(_RECORD_FIELDS, rec_a, rec_b)
                if a != b
            ]
            return Divergence(
                variant=variant,
                kind="access",
                paths=f"{label_a} vs {label_b}",
                access_index=index,
                detail="; ".join(fields)
                + f" | {label_a}: {_describe_record(rec_a)}",
                state_dumps={
                    label_a: _state_at(build_a, events, index),
                    label_b: _state_at(build_b, events, index),
                },
            )
    if len(records_a) != len(records_b):
        return Divergence(
            variant=variant,
            kind="access",
            paths=f"{label_a} vs {label_b}",
            access_index=min(len(records_a), len(records_b)),
            detail=(
                f"load counts differ: {label_a} saw {len(records_a)},"
                f" {label_b} saw {len(records_b)}"
            ),
            state_dumps={},
        )
    return None


def verify_events(
    variant_name: str,
    events: Events,
    warmup_loads: int = 0,
    backend: Optional[str] = None,
) -> Optional[Divergence]:
    """Replay ``events`` through all four paths; None means bit-identical.

    ``events`` follows the predictor-stream convention: ``(tag, ip, a, b)``
    rows with tag 1 = load (a=address, b=offset), 0 = branch (a=taken),
    2 = call, 3 = return.  ``backend`` forces the kernel lane on
    (``"numpy"``) or off (``"python"``); by default it follows the same
    ``REPRO_BACKEND`` selection the evaluation runs honour.
    """
    spec = VARIANTS[variant_name]

    oracle = spec.oracle()
    oracle_records: List[AccessRecord] = []
    oracle_metrics = run_on_stream(
        oracle, events, PredictorMetrics(), warmup_loads,
        observer=_recording_observer(oracle_records),
    )

    streamed = spec.production()
    stream_records: List[AccessRecord] = []
    stream_metrics = run_on_stream(
        streamed, events, PredictorMetrics(), warmup_loads,
        observer=_recording_observer(stream_records),
    )

    columnar = spec.production()
    column_records: List[AccessRecord] = []
    column_metrics = run_on_columns(
        columnar, _columns_of(events), PredictorMetrics(), warmup_loads,
        observer=_recording_observer(column_records),
    )

    vector = _vectorized_lane(spec, events, warmup_loads, backend)

    # Per-access behaviour, pairwise against the oracle and across the
    # production paths (the oracle diff localises spec bugs; the production
    # pair diffs localise fast-path bugs even if both disagree with the
    # oracle in the same way; the columns/vectorized pair isolates kernel
    # bugs from event-decoding bugs).
    pairs = [
        ("oracle", oracle_records, spec.oracle,
         "stream", stream_records, spec.production),
        ("stream", stream_records, spec.production,
         "columns", column_records, spec.production),
    ]
    if vector is not None:
        vector_records, vector_metrics, vectorized = vector
        pairs.append(
            ("columns", column_records, spec.production,
             "vectorized", vector_records, spec.production)
        )
    for args in pairs:
        divergence = _first_record_divergence(variant_name, events, *args)
        if divergence is not None:
            return divergence

    # Final aggregate metrics.
    by_path = {
        "oracle": (oracle_metrics, oracle),
        "stream": (stream_metrics, streamed),
        "columns": (column_metrics, columnar),
    }
    if vector is not None:
        by_path["vectorized"] = (vector_metrics, vectorized)
    reference = _metrics_tuple(stream_metrics)
    for path, (metrics, _) in by_path.items():
        if _metrics_tuple(metrics) != reference:
            return Divergence(
                variant=variant_name,
                kind="metrics",
                paths=f"stream vs {path}",
                access_index=None,
                detail=(
                    f"counters (loads, predictions, correct, speculative,"
                    f" correct_speculative): stream={reference}"
                    f" {path}={_metrics_tuple(metrics)}"
                ),
                state_dumps={},
            )

    # Final architectural state: Link Table contents and confidence values.
    reference_lt = sorted(_lt_dump(streamed))
    reference_conf = _confidence_dump(streamed)
    for path, (_, subject) in by_path.items():
        if path == "stream":
            continue
        lt = sorted(_lt_dump(subject))
        if lt != reference_lt:
            extra = [entry for entry in lt if entry not in reference_lt]
            missing = [entry for entry in reference_lt if entry not in lt]
            return Divergence(
                variant=variant_name,
                kind="link_table",
                paths=f"stream vs {path}",
                access_index=None,
                detail=(
                    f"final LT differs: only-in-{path}={extra[:6]}"
                    f" only-in-stream={missing[:6]}"
                ),
                state_dumps={},
            )
        conf = _confidence_dump(subject)
        if conf != reference_conf:
            keys = sorted(
                key
                for key in set(conf) | set(reference_conf)
                if conf.get(key) != reference_conf.get(key)
            )
            shown = {
                key: (reference_conf.get(key), conf.get(key))
                for key in keys[:6]
            }
            return Divergence(
                variant=variant_name,
                kind="confidence",
                paths=f"stream vs {path}",
                access_index=None,
                detail=f"final confidence differs (stream, {path}): {shown}",
                state_dumps={},
            )
    return None
