"""Deliberately broken oracles: known bug classes the regressions must catch.

A regression trace is only worth checking in if it can actually *detect*
the bug it guards against.  Each :class:`MutantSpec` here re-introduces a
realistic predictor bug (an update-ordering or filter-wiring mistake that
a reasonable implementation could make) into a copy of the spec oracle.
The fuzzer mines a minimal trace on which the mutant visibly diverges from
the production implementation; that trace is saved under
``tests/regressions/`` and the test suite asserts both directions forever:

* the trace replays **clean** through the real three-way differential
  check (the bug is absent), and
* the trace still **catches** its mutant (the trace has teeth).

The mutations live on oracle subclasses (swapped in via ``__class__``
surgery on a freshly built oracle) so production code is never touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..eval.metrics import PredictorMetrics
from ..serve.session import run_on_stream
from .differential import VARIANTS
from .fuzz import PROFILES, generate_events, shrink_events
from .oracle import SpecHybrid, _CapCore, _CFI, _LRUSets, _StrideCore

__all__ = ["MUTANTS", "MutantSpec", "mutant_caught", "find_regression_trace"]

Events = Sequence[Sequence[int]]


# ---------------------------------------------------------------------------
# The mutations.
# ---------------------------------------------------------------------------


class _HistoryFirstCore(_CapCore):
    """BUG: the LT write uses the history *after* it absorbed the new value.

    The paper's rule is link(context) -> value where the context is the
    history that led to this access; advancing first links the value to
    itself.
    """

    def train(
        self, fields, actual, predicted_addr, ghr_at_predict, speculated,
        update_lt=True,
    ):
        if predicted_addr is not None:
            correct = predicted_addr == actual
            fields["confidence"].update(correct)
            fields["cfi"].record(ghr_at_predict, correct, speculated)
        value = self._link_value(fields, actual)
        if value is not None:
            fields["history"] = self.history_rule.update(
                fields["history"], value
            )
            if update_lt:
                self.lt_update(fields["history"], value)
        fields["last_addr"] = actual


class _StickyPFCore(_CapCore):
    """BUG: PF bits are stored only when the write is accepted.

    Section 3.5 stores the newest value's PF bits unconditionally; making
    them sticky means a twice-seen new link can never displace an old one.
    """

    def lt_update(self, history, value):
        index, tag = self._lt_split(history)
        ways = self.lt[index]
        self.lt_clock += 1
        target = None
        for entry in ways:
            if entry["link"] is not None and entry["tag"] == tag:
                target = entry
                break
        if target is None:
            for entry in ways:
                if entry["link"] is None:
                    target = entry
                    break
        if target is None:
            target = min(ways, key=lambda e: e["stamp"])
        if self.pf_bits:
            pf_new = (value >> self.pf_low_bit) & ((1 << self.pf_bits) - 1)
            if self.pf_table is not None:
                slot = history & self.pf_table_mask
                previous = self.pf_table[slot]
                if previous != pf_new:
                    return
                self.pf_table[slot] = pf_new
            else:
                previous = target["pf"]
                if previous is not None and previous != pf_new:
                    return
                target["pf"] = pf_new
        target["link"] = value
        target["tag"] = tag
        target["stamp"] = self.lt_clock


class _NoTouchSets(_LRUSets):
    """BUG: a Load Buffer hit does not refresh the entry's recency.

    Turns true LRU into FIFO; under set aliasing the wrong static load gets
    evicted and its trained confidence/history is lost.
    """

    def lookup(self, key):
        return self.sets[key & self.index_mask].get(key)


class _SingleDeltaCore(_StrideCore):
    """BUG: the stride is taken from every delta, not two agreeing ones.

    Defeats the two-delta rule, so a single irregular access retrains the
    stride immediately.
    """

    def train(
        self, fields, actual, predicted_addr, ghr_at_predict, speculated,
        had_prediction=True,
    ):
        two_delta, self.two_delta = self.two_delta, False
        try:
            super().train(
                fields, actual, predicted_addr, ghr_at_predict, speculated,
                had_prediction=had_prediction,
            )
        finally:
            self.two_delta = two_delta


class _StrideBiasedHybrid(SpecHybrid):
    """BUG: the dynamic selector is ignored; dual-confident loads always go
    to the stride component."""

    def _select(self, entry):
        return "stride"


class _EagerCFI(_CFI):
    """BUG: wrong predictions poison the CFI pattern even when the access
    was never speculated (the paper records only on wrong *speculative*
    accesses)."""

    __slots__ = ()

    def record(self, ghr, correct, speculated):
        return super().record(ghr, correct, True)


class _EagerCFIStrideCore(_StrideCore):
    def new_fields(self):
        fields = super().new_fields()
        fields["cfi"].__class__ = _EagerCFI
        return fields


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutantSpec:
    """One re-introducible bug, tied to the variant whose trace guards it."""

    name: str
    variant: str
    description: str
    build: Callable[[], object]


def _cap_mutant(core_class) -> Callable[[], object]:
    def build():
        oracle = VARIANTS["cap"].oracle()
        oracle.core.__class__ = core_class
        return oracle

    return build


def _cap_lru_mutant() -> object:
    oracle = VARIANTS["cap"].oracle()
    oracle.lb.__class__ = _NoTouchSets
    return oracle


def _stride_mutant(core_class) -> Callable[[], object]:
    def build():
        oracle = VARIANTS["stride"].oracle()
        oracle.core.__class__ = core_class
        return oracle

    return build


def _hybrid_mutant() -> object:
    oracle = VARIANTS["hybrid"].oracle()
    oracle.__class__ = _StrideBiasedHybrid
    return oracle


MUTANTS: Dict[str, MutantSpec] = {
    spec.name: spec
    for spec in (
        MutantSpec(
            "lt-context-after-advance",
            "cap",
            "LT written with the post-update history instead of the"
            " context that led to the access",
            _cap_mutant(_HistoryFirstCore),
        ),
        MutantSpec(
            "pf-sticky",
            "cap",
            "PF bits updated only on accepted writes, freezing stale links"
            " behind the filter",
            _cap_mutant(_StickyPFCore),
        ),
        MutantSpec(
            "lb-lru-fifo",
            "cap",
            "Load Buffer hit does not refresh LRU (FIFO eviction)",
            _cap_lru_mutant,
        ),
        MutantSpec(
            "stride-single-delta",
            "stride",
            "stride retrained from every delta instead of two agreeing"
            " deltas",
            _stride_mutant(_SingleDeltaCore),
        ),
        MutantSpec(
            "cfi-records-unspeculated",
            "stride",
            "CFI pattern poisoned by wrong but never-speculated"
            " predictions",
            _stride_mutant(_EagerCFIStrideCore),
        ),
        MutantSpec(
            "hybrid-selector-ignored",
            "hybrid",
            "dual-confident selection hardwired to stride, ignoring the"
            " selector counter",
            _hybrid_mutant,
        ),
    )
}


# ---------------------------------------------------------------------------
# Detection and trace mining.
# ---------------------------------------------------------------------------


def _records(subject, events: Events) -> List[tuple]:
    out: List[tuple] = []

    def observe(ip, offset, actual, prediction) -> None:
        out.append(
            (ip, prediction.address, bool(prediction.speculative),
             prediction.source)
        )

    run_on_stream(subject, events, PredictorMetrics(), observer=observe)
    return out


def mutant_caught(mutant_name: str, events: Events) -> bool:
    """Does this trace distinguish the mutant from production behaviour?"""
    mutant = MUTANTS[mutant_name]
    production = VARIANTS[mutant.variant].production()
    broken = mutant.build()
    if _records(production, events) != _records(broken, events):
        return True
    from .differential import _lt_dump

    return sorted(_lt_dump(production)) != sorted(broken.lt_dump())


#: Hand-written exposing traces for mutants whose trigger needs a precise
#: choreography random generation rarely hits.  The CFI one: two wrong
#: never-speculated predictions under GHR pattern 0, confidence built up
#: under pattern 1, then four not-taken branches steer the GHR back to
#: pattern 0 for the first speculative attempt — which only the mutant's
#: poisoned pattern blocks.
_SEED_TRACES: Dict[str, List[List[int]]] = {
    "cfi-records-unspeculated": (
        [[1, 0x4000, 0, 0], [1, 0x4000, 100, 0], [1, 0x4000, 200, 0],
         [0, 0x5000, 1, 0],
         [1, 0x4000, 300, 0], [1, 0x4000, 400, 0], [1, 0x4000, 500, 0]]
        + [[0, 0x5000, 0, 0]] * 4
        + [[1, 0x4000, 600, 0]]
    ),
}


def find_regression_trace(
    mutant_name: str,
    seed: int = 0,
    attempts: int = 200,
    events_per_case: int = 300,
) -> Optional[List[List[int]]]:
    """Mine and shrink a minimal trace on which the mutant diverges.

    Returns ``None`` when no generated trace exposes the mutant within the
    attempt budget.  The shrunk trace is additionally required to replay
    clean through the real differential check (it must document the
    *absence* of the bug, not some unrelated failure).
    """
    from .differential import verify_events

    rng = random.Random(seed)
    profiles = list(PROFILES)
    seeded = _SEED_TRACES.get(mutant_name)
    candidates = [seeded] if seeded is not None else []
    for attempt in range(attempts):
        if candidates:
            events = candidates.pop()
        else:
            profile = profiles[attempt % len(profiles)]
            events = generate_events(
                profile, rng.randrange(1 << 30), events_per_case
            )
        if not mutant_caught(mutant_name, events):
            continue
        minimal = shrink_events(
            events, lambda candidate: mutant_caught(mutant_name, candidate)
        )
        variant = MUTANTS[mutant_name].variant
        if verify_events(variant, minimal) is not None:
            continue  # shrunk into a genuine production bug: leave it alone
        return [list(event) for event in minimal]
    return None
