"""Out-of-order timing model for the speedup experiments (Figures 7, 12)."""

from .cache import CacheConfig, CacheHierarchy, CacheLevel
from .machine import MachineConfig
from .prefetch import PrefetchConfig, StridePrefetcher
from .ooo import TimingResult, simulate, speedup

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "MachineConfig",
    "PrefetchConfig",
    "StridePrefetcher",
    "TimingResult",
    "simulate",
    "speedup",
]
