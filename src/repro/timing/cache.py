"""A two-level data-cache latency model.

The paper's simulator has a 32KB L1 and a 1MB L2 (Section 4.1).  The
timing model only needs a *latency* per access, so this is a classic
set-associative tag simulator: every access returns the load-to-use
latency implied by where the line was found, updating LRU state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.bitops import is_power_of_two, log2_exact

__all__ = ["CacheConfig", "CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    ways: int = 4

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size_bytes):
            raise ValueError("size_bytes must be a power of two")
        if not is_power_of_two(self.line_bytes):
            raise ValueError("line_bytes must be a power of two")
        lines = self.size_bytes // self.line_bytes
        if self.ways < 1 or lines % self.ways:
            raise ValueError("ways must divide the line count")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.ways


class CacheLevel:
    """One set-associative level with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.offset_bits = log2_exact(config.line_bytes)
        self.index_bits = log2_exact(config.num_sets)
        # Per-set list of (tag, stamp); tiny ways so linear scan is fine.
        self._sets: list[list] = [[] for _ in range(config.num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch the line holding ``addr``; returns hit/miss."""
        line = addr >> self.offset_bits
        index = line & ((1 << self.index_bits) - 1)
        tag = line >> self.index_bits
        ways = self._sets[index]
        self._clock += 1
        for i, (t, _) in enumerate(ways):
            if t == tag:
                ways[i] = (tag, self._clock)
                self.hits += 1
                return True
        self.misses += 1
        if len(ways) >= self.config.ways:
            victim = min(range(len(ways)), key=lambda i: ways[i][1])
            ways[victim] = (tag, self._clock)
        else:
            ways.append((tag, self._clock))
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Invalidate every line and zero the hit/miss statistics."""
        self._sets = [[] for _ in range(self.config.num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0


class CacheHierarchy:
    """L1 + L2 + memory, reporting a latency per access."""

    def __init__(
        self,
        l1: CacheConfig | None = None,
        l2: CacheConfig | None = None,
        l1_latency: int = 3,
        l2_latency: int = 12,
        memory_latency: int = 60,
    ) -> None:
        self.l1 = CacheLevel(l1 or CacheConfig())
        self.l2 = CacheLevel(
            l2 or CacheConfig(size_bytes=1024 * 1024, line_bytes=32, ways=8)
        )
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency

    def access(self, addr: int) -> int:
        """Return the load-to-use latency for this access."""
        if self.l1.access(addr):
            return self.l1_latency
        if self.l2.access(addr):
            return self.l2_latency
        return self.memory_latency

    def reset(self) -> None:
        """Cold caches: invalidate both levels and their statistics."""
        self.l1.reset()
        self.l2.reset()
