"""Stride-based data prefetching — the [Baer91]/[Gonz97] prior art.

The paper's related-work section separates three latency-reduction camps:
prefetching, value prediction and address prediction.  [Gonz97] in
particular "proposed to share the same stride-based prediction structures
to perform address prediction and data prefetching simultaneously."

:class:`StridePrefetcher` reuses this package's stride tables to issue
next-line prefetches into the cache hierarchy; the timing model accepts
one so prediction-vs-prefetching(-vs-both) can be compared
(``benchmarks/test_prefetch_comparison.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.bitops import mask
from ..predictors.base import lb_key
from ..predictors.stride import StrideConfig, StrideLogic, StrideState
from ..common.tables import SetAssociativeTable
from .cache import CacheHierarchy

__all__ = ["PrefetchConfig", "StridePrefetcher"]

_MASK32 = mask(32)


@dataclass(frozen=True)
class PrefetchConfig:
    """Prefetcher parameters."""

    entries: int = 4096
    ways: int = 2
    degree: int = 1          # how many strides ahead to prefetch
    confidence_threshold: int = 2

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("prefetch degree must be >= 1")


class StridePrefetcher:
    """Reference-prediction-table prefetcher over the stride component.

    On every observed load it trains the per-IP stride state and, when the
    stride is confident, touches ``addr + i*stride`` in the cache for
    ``i = 1..degree``.  Unlike address prediction, no recovery is ever
    needed — a wrong prefetch only wastes bandwidth (modelled as cache
    pollution, which the tag simulator captures naturally).
    """

    def __init__(self, config: PrefetchConfig | None = None) -> None:
        self.config = config or PrefetchConfig()
        self.logic = StrideLogic(StrideConfig.basic(
            confidence_threshold=self.config.confidence_threshold,
        ))
        self.table: SetAssociativeTable[StrideState] = SetAssociativeTable(
            self.config.entries, self.config.ways
        )
        self.issued = 0

    def observe(self, ip: int, addr: int, caches: CacheHierarchy) -> None:
        """Train on a load and issue prefetches into ``caches``."""
        state = self.table.lookup(lb_key(ip))
        if state is None:
            state = StrideState(self.logic.config)
            self.table.insert(lb_key(ip), state)
        # Issue before training so the prefetch uses the *learned* stride
        # (training with this access would immediately chase a blip).
        if (
            state.last_addr is not None
            and state.stride
            and state.confidence.confident
        ):
            for i in range(1, self.config.degree + 1):
                caches.access((addr + i * state.stride) & _MASK32)
                self.issued += 1
        self.logic.train(state, addr, ghr_at_predict=0, speculated=False)

    def reset(self) -> None:
        """Forget every trained stride and the issue statistics."""
        self.table.clear()
        self.issued = 0
