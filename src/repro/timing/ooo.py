"""Dataflow out-of-order timing model.

A single-pass scheduler over the dynamic trace: every instruction
dispatches no earlier than its fetch cycle (bounded by width, window
occupancy and branch redirects) and completes when its register and memory
inputs are ready plus its latency.  This is the classic trace-driven
"dataflow limit with structural constraints" model — deliberately simpler
than the authors' proprietary simulator, but it captures the two effects
address prediction trades in: hidden load latency on correct speculative
accesses and recovery cost on wrong ones (see DESIGN.md).

Address prediction plugs in as any :class:`~repro.predictors.base.
AddressPredictor` (optionally wrapped in
:class:`~repro.pipeline.PipelinedPredictor` for the Section 5 experiments).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..isa.instructions import NUM_REGISTERS
from ..pipeline.branch import BranchPredictor
from ..predictors.base import AddressPredictor
from ..trace.event import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_JUMP,
    KIND_LOAD,
    KIND_RET,
    KIND_STORE,
)
from ..trace.trace import Trace
from .cache import CacheHierarchy
from .machine import MachineConfig

__all__ = ["TimingResult", "simulate", "speedup"]


@dataclass
class TimingResult:
    """Outcome of one timing-model run."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    speculative_correct: int = 0
    speculative_wrong: int = 0
    branch_mispredicts: int = 0
    l1_hit_rate: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def __str__(self) -> str:
        return (
            f"{self.instructions} instr in {self.cycles} cycles"
            f" (IPC {self.ipc:.2f})"
        )


def simulate(
    trace: Trace,
    predictor: Optional[AddressPredictor] = None,
    config: Optional[MachineConfig] = None,
    prefetcher=None,
    probe=None,
) -> TimingResult:
    """Run the timing model over ``trace``.

    With ``predictor`` given, every dynamic load is predicted; correct
    speculative accesses hide ``config.prediction_lead`` cycles of their
    latency, wrong ones pay ``config.recovery_penalty`` extra.  With
    ``prefetcher`` given (see :mod:`repro.timing.prefetch`), every load
    also trains it and prefetches land in the cache hierarchy.  With
    ``probe`` given (a :class:`repro.telemetry.Instrumentation`), the
    predictor tree emits attribution events into it while timing runs.
    """
    cfg = config or MachineConfig()
    if probe is not None and predictor is not None:
        # Imported lazily: the timing layer stays telemetry-free unless a
        # probe is actually requested.
        from ..telemetry.instrumentation import instrument_predictor

        instrument_predictor(predictor, probe)
    caches = CacheHierarchy(
        l1_latency=cfg.l1_latency,
        l2_latency=cfg.l2_latency,
        memory_latency=cfg.memory_latency,
    )
    branch_predictor = BranchPredictor()
    result = TimingResult(instructions=len(trace))

    ready = [0] * NUM_REGISTERS          # register availability (cycle)
    store_avail: dict = {}               # word address -> data-ready cycle
    window = deque()                     # completion cycles, program order
    cycle = 0                            # current fetch/dispatch cycle
    issued = 0                           # instructions issued this cycle
    mem_issued = 0                       # memory ops issued this cycle
    alu_latency = cfg.alu_latency
    memory_ports = cfg.memory_ports
    _MEMORY_KINDS = (KIND_LOAD, KIND_RET, KIND_STORE, KIND_CALL)

    kinds = trace.kind
    ips = trace.ip
    addrs = trace.addr
    offsets = trace.offset
    dsts = trace.dst
    src1s = trace.src1
    src2s = trace.src2
    takens = trace.taken

    predict = predictor.predict if predictor is not None else None
    update = predictor.update if predictor is not None else None
    on_branch = predictor.on_branch if predictor is not None else None
    on_call = predictor.on_call if predictor is not None else None
    on_return = predictor.on_return if predictor is not None else None

    for i in range(len(kinds)):
        kind = kinds[i]
        is_memory_op = kind in _MEMORY_KINDS

        # -- structural constraints: width, ports, window ----------------
        if issued >= cfg.width or (is_memory_op and mem_issued >= memory_ports):
            cycle += 1
            issued = 0
            mem_issued = 0
        if len(window) >= cfg.window:
            oldest = window.popleft()
            if oldest > cycle:
                cycle = oldest
                issued = 0
                mem_issued = 0
        issued += 1
        if is_memory_op:
            mem_issued += 1
        operands = cycle
        s1 = src1s[i]
        if s1 >= 0 and ready[s1] > operands:
            operands = ready[s1]
        s2 = src2s[i]
        if s2 >= 0 and ready[s2] > operands:
            operands = ready[s2]

        if kind == KIND_LOAD or kind == KIND_RET:
            addr = addrs[i]
            forwarded = store_avail.get(addr)
            if forwarded is not None and forwarded > operands:
                operands = forwarded
            latency = caches.access(addr)
            if prefetcher is not None:
                prefetcher.observe(ips[i], addr, caches)
            if predict is not None:
                result.loads += 1
                prediction = predict(ips[i], offsets[i])
                if prediction.speculative:
                    if prediction.address == addr:
                        result.speculative_correct += 1
                        latency = max(1, latency - cfg.prediction_lead)
                    else:
                        result.speculative_wrong += 1
                        latency += cfg.recovery_penalty
                update(ips[i], offsets[i], addr, prediction)
            else:
                result.loads += 1
            completion = operands + latency
            dst = dsts[i]
            if dst >= 0:
                ready[dst] = completion
            if kind == KIND_RET and on_return is not None:
                on_return(ips[i])
        elif kind == KIND_STORE or kind == KIND_CALL:
            completion = operands + alu_latency
            store_avail[addrs[i]] = completion
            dst = dsts[i]
            if dst >= 0:
                ready[dst] = completion
            if kind == KIND_CALL and on_call is not None:
                on_call(ips[i])
        elif kind == KIND_BRANCH:
            completion = operands + alu_latency
            taken = bool(takens[i])
            if not branch_predictor.update(ips[i], taken):
                result.branch_mispredicts += 1
                # Redirect: fetch resumes after resolution plus penalty.
                redirect = completion + cfg.branch_penalty
                if redirect > cycle:
                    cycle = redirect
                    issued = 0
                    mem_issued = 0
            if on_branch is not None:
                on_branch(ips[i], taken)
        elif kind == KIND_JUMP:
            completion = operands + alu_latency
        else:  # ALU
            completion = operands + alu_latency
            dst = dsts[i]
            if dst >= 0:
                ready[dst] = completion

        window.append(completion)

    # Drain: the last instruction's retirement bounds total cycles.
    final = max(window) if window else cycle
    result.cycles = max(cycle, final)
    result.l1_hit_rate = caches.l1.hit_rate
    result.meta = {
        "branch_accuracy": branch_predictor.accuracy,
        "l2_hit_rate": caches.l2.hit_rate,
    }
    return result


def speedup(baseline: TimingResult, improved: TimingResult) -> float:
    """Cycle-count ratio: how much faster ``improved`` is."""
    if improved.cycles == 0:
        raise ValueError("improved run has zero cycles")
    return baseline.cycles / improved.cycles
