"""Machine configuration for the out-of-order timing model.

Defaults follow the paper's Section 4.1 simulator: an 8-wide, 128-deep
out-of-order core with a 32KB L1 / 1MB L2 hierarchy.  The two
address-prediction knobs model its benefit and its cost:

* ``prediction_lead`` — how many cycles of load latency a *correct*
  speculative access hides (the prediction is made early in the front-end,
  so the cache access overlaps fetch/decode/rename);
* ``recovery_penalty`` — extra cycles a *wrong* speculative access adds to
  the load (address verification plus the selective re-execution of the
  dependent instructions that already consumed wrong data).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the dataflow timing model."""

    width: int = 8                  # fetch/issue width (instructions/cycle)
    window: int = 128               # in-flight instruction window
    memory_ports: int = 4           # data-cache ports (loads+stores/cycle)
    alu_latency: int = 1
    l1_latency: int = 3
    l2_latency: int = 12
    memory_latency: int = 60
    branch_penalty: int = 8         # redirect cycles on a mispredict
    prediction_lead: int = 8        # latency hidden by a correct prediction
    recovery_penalty: int = 6       # extra latency on a wrong prediction

    def __post_init__(self) -> None:
        if self.width < 1 or self.window < 1:
            raise ValueError("width and window must be positive")
        if self.memory_ports < 1:
            raise ValueError("memory_ports must be positive")
        if min(
            self.alu_latency, self.l1_latency, self.l2_latency,
            self.memory_latency,
        ) < 1:
            raise ValueError("latencies must be >= 1")
        if self.branch_penalty < 0 or self.recovery_penalty < 0:
            raise ValueError("penalties must be non-negative")
        if self.prediction_lead < 0:
            raise ValueError("prediction_lead must be non-negative")
