"""Recursive-data-structure workloads: linked lists (paper Section 2.1).

Three variants reproduce the RDS patterns the paper analyses:

* :class:`LinkedListWorkload` — a singly linked list with ``type``/``val``/
  ``next`` fields (the xlisp NODE example): each static load's address
  stream is a short recurring sequence, completely stride-unpredictable,
  and the three loads are globally correlated through shared node bases.
* :class:`DoubleLinkedListWorkload` — forward then backward traversal; the
  ``val`` load needs a history of *two* addresses to know the direction
  (the paper's Figure 2 argument for history length).
* :class:`IndexListWorkload` — the *go*-style coding: one array per field,
  ``next`` holding indices; the arrays' base addresses live in the load
  *immediate offsets*, exercising the offset-LSB/base-MSB split of
  Section 3.3.
"""

from __future__ import annotations

import random

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = [
    "LinkedListWorkload",
    "DoubleLinkedListWorkload",
    "IndexListWorkload",
]

# Node field offsets (single / double lists).
OFF_TYPE = 0
OFF_VAL = 4
OFF_NEXT = 8
OFF_PREV = 12
NODE_SIZE = 16


def _build_list(
    workload: Workload,
    memory: Memory,
    length: int,
    doubly: bool = False,
    policy: str = "shuffled",
) -> list[int]:
    """Allocate and link ``length`` nodes; returns their base addresses."""
    allocator = workload.allocator(memory, policy=policy)
    rng = random.Random(workload.seed + 17)
    nodes = [allocator.alloc(NODE_SIZE) for _ in range(length)]
    for i, addr in enumerate(nodes):
        memory.poke(addr + OFF_TYPE, 3)  # LIST type tag
        memory.poke(addr + OFF_VAL, rng.randrange(1000))
        memory.poke(addr + OFF_NEXT, nodes[i + 1] if i + 1 < length else 0)
        if doubly:
            memory.poke(addr + OFF_PREV, nodes[i - 1] if i > 0 else 0)
    return nodes


class LinkedListWorkload(Workload):
    """Repeatedly traverse a singly linked list, reading every field."""

    suite = "INT"

    def __init__(
        self,
        name: str = "list",
        seed: int = 1,
        length: int = 24,
        via_global_ptr: bool = True,
        policy: str = "shuffled",
    ) -> None:
        super().__init__(name, seed)
        if length < 1:
            raise ValueError("list length must be >= 1")
        self.length = length
        self.via_global_ptr = via_global_ptr
        self.policy = policy

    def build(self) -> BuiltWorkload:
        memory = Memory()
        nodes = _build_list(self, memory, self.length, policy=self.policy)
        head = nodes[0]

        # Like xlevarg: the current-element pointer lives in a global slot
        # (the paper's %ebx), so each iteration also performs a constant-
        # address load and store.
        ptr_slot = 0x1000_0100

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)                       # r2 = checksum
        b.label("outer")
        if self.via_global_ptr:
            b.li(9, ptr_slot)
            b.li(1, head)
            b.st(1, 9, 0)                # *ptr_slot = head
            b.label("inner")
            b.ld(1, 9, 0)                # r1 = *ptr_slot   (constant address)
            b.ld(6, 1, OFF_TYPE)         # n_type
            b.ld(7, 1, OFF_VAL)          # val
            b.add(2, 2, 7)
            b.ld(8, 1, OFF_NEXT)         # next
            b.st(8, 9, 0)                # *ptr_slot = next (move to next)
            b.bne(8, 0, "inner")
        else:
            b.li(1, head)
            b.label("inner")
            b.ld(6, 1, OFF_TYPE)
            b.ld(7, 1, OFF_VAL)
            b.add(2, 2, 7)
            b.ld(1, 1, OFF_NEXT)
            b.bne(1, 0, "inner")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"length": self.length})


class DoubleLinkedListWorkload(Workload):
    """Traverse a doubly linked list forward, then back (Figure 2)."""

    suite = "INT"

    def __init__(
        self,
        name: str = "dlist",
        seed: int = 1,
        length: int = 16,
        policy: str = "shuffled",
    ) -> None:
        super().__init__(name, seed)
        if length < 2:
            raise ValueError("doubly linked list needs at least 2 nodes")
        self.length = length
        self.policy = policy

    def build(self) -> BuiltWorkload:
        memory = Memory()
        nodes = _build_list(
            self, memory, self.length, doubly=True, policy=self.policy
        )
        head = nodes[0]

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, head)
        b.label("fwd")
        b.ld(7, 1, OFF_VAL)              # val: direction-ambiguous load
        b.add(2, 2, 7)
        b.mov(3, 1)                      # remember the node we came from
        b.ld(1, 1, OFF_NEXT)
        b.bne(1, 0, "fwd")
        b.mov(1, 3)                      # restart from the tail
        b.label("bwd")
        b.ld(7, 1, OFF_VAL)
        b.add(2, 2, 7)
        b.ld(1, 1, OFF_PREV)
        b.bne(1, 0, "bwd")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"length": self.length})


class IndexListWorkload(Workload):
    """The *go* coding of an RDS: parallel arrays with index links.

    Field loads are ``ld rX, <array_base>(r_idx4)``: the array base address
    sits in the immediate offset, so different fields (and different lists
    over the same arrays) are distinguished only by offsets — the aliasing
    scenario Section 3.3's offset-LSB scheme targets.
    """

    suite = "INT"

    def __init__(
        self,
        name: str = "golist",
        seed: int = 1,
        length: int = 20,
        capacity: int = 64,
    ) -> None:
        super().__init__(name, seed)
        if not 1 <= length < capacity:
            raise ValueError("need 1 <= length < capacity")
        self.length = length
        self.capacity = capacity

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 29)

        vals_base = allocator.alloc_array(self.capacity, 4)
        nexts_base = allocator.alloc_array(self.capacity, 4)

        # Link `length` elements through shuffled indices; index 0 is the
        # list terminator, so element slots come from 1..capacity-1.
        slots = list(range(1, self.capacity))
        rng.shuffle(slots)
        chain = slots[: self.length]
        for i, slot in enumerate(chain):
            memory.poke(vals_base + 4 * slot, rng.randrange(1000))
            nxt = chain[i + 1] if i + 1 < len(chain) else 0
            memory.poke(nexts_base + 4 * slot, nxt)
        start = chain[0]

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, start)                   # r1 = current index
        b.label("inner")
        b.muli(4, 1, 4)                  # r4 = idx * 4
        b.ld(7, 4, vals_base)            # val  = vals[idx]
        b.add(2, 2, 7)
        b.ld(1, 4, nexts_base)           # next = nexts[idx]
        b.bne(1, 0, "inner")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory,
            {"length": self.length, "capacity": self.capacity},
        )
