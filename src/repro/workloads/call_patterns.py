"""Control-correlated load workloads (paper Section 2.2).

Reproduces the xlisp examples verbatim in structure:

* ``xlmatch`` is called in the recurring site pattern **a-c-u-a** (with
  ``xaref`` invoking it twice), so its argument-dependent loads follow the
  fingerprint ``A1 A1 C U A2 A2``.
* ``xllastarg`` is called in the pattern **a-a-u-c-b**, giving
  ``A1 A2 U C B``.

Each call site passes a site-specific structure pointer on the stack; the
callee's loads of that structure's fields are stride-hopeless but perfectly
context-predictable once the call pattern repeats.
"""

from __future__ import annotations

import random

from ..isa.instructions import SP
from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["CallPatternWorkload"]

STRUCT_FIELDS = 3
STRUCT_SIZE = 16


class CallPatternWorkload(Workload):
    """Functions whose loads correlate with their call sites."""

    suite = "INT"

    def __init__(self, name: str = "calls", seed: int = 1) -> None:
        super().__init__(name, seed)

    def _alloc_struct(self, memory: Memory, allocator, rng) -> int:
        addr = allocator.alloc(STRUCT_SIZE)
        for f in range(STRUCT_FIELDS):
            memory.poke(addr + 4 * f, rng.randrange(1000))
        return addr

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 53)

        # Site-specific structures for the two callees.
        s_a1 = self._alloc_struct(memory, allocator, rng)
        s_a2 = self._alloc_struct(memory, allocator, rng)
        s_c = self._alloc_struct(memory, allocator, rng)
        s_u = self._alloc_struct(memory, allocator, rng)
        t_a1 = self._alloc_struct(memory, allocator, rng)
        t_a2 = self._alloc_struct(memory, allocator, rng)
        t_u = self._alloc_struct(memory, allocator, rng)
        t_c = self._alloc_struct(memory, allocator, rng)
        t_b = self._alloc_struct(memory, allocator, rng)

        b = ProgramBuilder(self.name)

        def call_with_arg(callee: str, struct_addr: int) -> None:
            """Push a struct pointer, call, pop the argument."""
            b.li(1, struct_addr)
            b.push(1)
            b.call(callee)
            b.addi(SP, SP, 4)

        b.label("main")
        b.li(2, 0)
        b.label("outer")
        # xlmatch pattern a-c-u-a; xaref calls it twice per visit.
        call_with_arg("xlmatch", s_a1)   # xaref(1), first call
        call_with_arg("xlmatch", s_a1)   # xaref(1), second call
        call_with_arg("xlmatch", s_c)    # xcond
        call_with_arg("xlmatch", s_u)    # doupdates
        call_with_arg("xlmatch", s_a2)   # xaref(2), first call
        call_with_arg("xlmatch", s_a2)   # xaref(2), second call
        # xllastarg pattern a-a-u-c-b.
        call_with_arg("xllastarg", t_a1)
        call_with_arg("xllastarg", t_a2)
        call_with_arg("xllastarg", t_u)
        call_with_arg("xllastarg", t_c)
        call_with_arg("xllastarg", t_b)
        b.jmp("outer")

        for callee in ("xlmatch", "xllastarg"):
            b.label(callee)
            # sp+0 is the return address; the stack-passed argument is at
            # sp+4 (a constant-address, last-address-friendly load).
            b.ld(1, SP, 4)
            # The control-correlated loads: field addresses depend on which
            # structure the call site passed.
            b.ld(3, 1, 0)
            b.ld(4, 1, 4)
            b.ld(5, 1, 8)
            b.add(2, 2, 3)
            b.add(2, 2, 4)
            b.add(2, 2, 5)
            b.ret()

        return BuiltWorkload(b.build(), memory, {})
