"""Declarative benchmark-set registry for ingested external traces.

A registry is a checked-in manifest (TOML on Python 3.11+, or JSON
anywhere) describing external trace files plus named benchmark *sets*::

    [[traces]]
    name = "ext_dram_stream"
    file = "ext_dram_stream.trc"     # relative to the manifest
    format = "dramsim"               # optional; sniffed when omitted
    sha256 = "9f0c..."               # required: pins the exact bytes
    records = 600                    # required: expected parse count
    suite = "EXT"                    # optional; default EXT

    [sets]
    ext_quick = ["ext_dram_stream", "ext_pin_mix"]

Registered names become first-class trace names: :func:`suites.get_trace`
and :func:`suites.get_predictor_stream` fall back here for names no
synthetic workload claims, so the engine, every figure driver, ``verify``
and the serving layer accept them without signature changes.  Set names
expand to their members on the CLI (``repro run fig5 --traces ext_quick``).

Integrity is load-bearing, not advisory: the manifest's sha256 and record
count are verified against the actual file before a trace is built, and
the trace-cache filename embeds the digest — so a silently edited source
file can never satisfy a stale cache entry.

The manifest location resolves through :func:`repro.eval.config
.registry_manifest` (the ``REPRO_REGISTRY`` knob / ``--registry`` flag),
defaulting to the checked-in ``benchmarks/traces/registry.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..ingest.errors import FormatError, RegistryError
from ..ingest.formats import FORMAT_NAMES, get_format, sniff_format
from ..ingest.normalize import records_to_trace, sha256_bytes
from ..ingest.records import IngestRecord
from ..trace.trace import PredictorStream, Trace
from .suites import _CACHE_VERSION, _cache_dir, _generation_lock

__all__ = [
    "DEFAULT_MANIFEST",
    "Registry",
    "RegistryEntry",
    "cache_path",
    "clear_cache",
    "default_manifest_path",
    "expand_trace_names",
    "get_predictor_stream",
    "get_registry",
    "get_trace",
    "has_trace",
    "ingest_meta",
    "load_registry",
    "suite_of",
    "trace_names",
    "validate",
]

#: Checked-in default manifest, relative to the working directory.  JSON
#: rather than TOML so the default path works on every supported Python.
DEFAULT_MANIFEST = Path("benchmarks") / "traces" / "registry.json"

_ENTRY_REQUIRED = ("name", "file", "sha256", "records")
_ENTRY_OPTIONAL = ("format", "suite", "description")

#: Default suite label for registry traces; rendered after the paper's
#: eight suites in figure tables.
DEFAULT_SUITE = "EXT"


@dataclass(frozen=True)
class RegistryEntry:
    """One registered external trace (fully resolved)."""

    name: str
    path: Path          # absolute-ish: manifest dir + file
    sha256: str
    records: int
    format: Optional[str] = None   # None = sniff
    suite: str = DEFAULT_SUITE
    description: str = ""


@dataclass(frozen=True)
class Registry:
    """A parsed registry manifest."""

    path: Path
    entries: Dict[str, RegistryEntry]
    sets: Dict[str, Tuple[str, ...]]


# ---------------------------------------------------------------------------
# Manifest parsing
# ---------------------------------------------------------------------------

def _parse_toml(path: Path) -> dict:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        raise RegistryError(
            f"{path}: TOML manifests need Python 3.11+ (tomllib);"
            f" use a .json manifest instead"
        ) from None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except tomllib.TOMLDecodeError as error:
        raise RegistryError(f"{path}: invalid TOML: {error}") from None


def _parse_json(path: Path) -> dict:
    try:
        with open(path, "rb") as handle:
            return json.load(handle)
    except json.JSONDecodeError as error:
        raise RegistryError(f"{path}: invalid JSON: {error}") from None


def _require_type(path: Path, what: str, value: object, kind: type) -> None:
    if not isinstance(value, kind) or isinstance(value, bool):
        raise RegistryError(
            f"{path}: {what} must be {kind.__name__},"
            f" got {type(value).__name__}"
        )


def _parse_entry(path: Path, index: int, raw: object) -> RegistryEntry:
    where = f"traces[{index}]"
    if not isinstance(raw, dict):
        raise RegistryError(f"{path}: {where} must be a table/object")
    unknown = sorted(set(raw) - set(_ENTRY_REQUIRED) - set(_ENTRY_OPTIONAL))
    if unknown:
        raise RegistryError(
            f"{path}: {where} has unknown key(s): {', '.join(unknown)}"
        )
    missing = [key for key in _ENTRY_REQUIRED if key not in raw]
    if missing:
        raise RegistryError(
            f"{path}: {where} missing required key(s): {', '.join(missing)}"
        )
    for key in ("name", "file", "sha256"):
        _require_type(path, f"{where}.{key}", raw[key], str)
    _require_type(path, f"{where}.records", raw["records"], int)
    if raw["records"] < 1:
        raise RegistryError(f"{path}: {where}.records must be >= 1")
    if len(raw["sha256"]) != 64 or any(
        c not in "0123456789abcdef" for c in raw["sha256"]
    ):
        raise RegistryError(
            f"{path}: {where}.sha256 must be 64 lowercase hex digits"
        )
    format_name = raw.get("format")
    if format_name is not None:
        _require_type(path, f"{where}.format", format_name, str)
        if format_name not in FORMAT_NAMES:
            raise RegistryError(
                f"{path}: {where}.format {format_name!r} unknown"
                f" (expected one of: {', '.join(FORMAT_NAMES)})"
            )
    suite = raw.get("suite", DEFAULT_SUITE)
    _require_type(path, f"{where}.suite", suite, str)
    description = raw.get("description", "")
    _require_type(path, f"{where}.description", description, str)
    return RegistryEntry(
        name=raw["name"],
        path=path.parent / raw["file"],
        sha256=raw["sha256"],
        records=raw["records"],
        format=format_name,
        suite=suite,
        description=description,
    )


def load_registry(path: "Path | str") -> Registry:
    """Parse + schema-check one manifest (no trace-file IO).

    Every malformation raises :class:`RegistryError` with the manifest
    path in the message; deep checks against the trace files themselves
    (digest, record counts) live in :func:`validate`.
    """
    path = Path(path)
    if not path.exists():
        raise RegistryError(f"{path}: registry manifest not found")
    if path.suffix == ".toml":
        document = _parse_toml(path)
    elif path.suffix == ".json":
        document = _parse_json(path)
    else:
        raise RegistryError(
            f"{path}: unsupported manifest suffix {path.suffix!r}"
            f" (expected .toml or .json)"
        )
    if not isinstance(document, dict):
        raise RegistryError(f"{path}: manifest root must be a table/object")
    unknown = sorted(set(document) - {"traces", "sets"})
    if unknown:
        raise RegistryError(
            f"{path}: unknown top-level key(s): {', '.join(unknown)}"
        )
    raw_traces = document.get("traces", [])
    if not isinstance(raw_traces, list) or not raw_traces:
        raise RegistryError(
            f"{path}: 'traces' must be a non-empty array of tables"
        )
    entries: Dict[str, RegistryEntry] = {}
    for index, raw in enumerate(raw_traces):
        entry = _parse_entry(path, index, raw)
        if entry.name in entries:
            raise RegistryError(
                f"{path}: duplicate trace name {entry.name!r}"
            )
        if _is_builtin_name(entry.name):
            raise RegistryError(
                f"{path}: trace name {entry.name!r} shadows a built-in"
                f" synthetic trace"
            )
        entries[entry.name] = entry
    raw_sets = document.get("sets", {})
    if not isinstance(raw_sets, dict):
        raise RegistryError(f"{path}: 'sets' must be a table/object")
    sets: Dict[str, Tuple[str, ...]] = {}
    for set_name, members in raw_sets.items():
        if set_name in entries:
            raise RegistryError(
                f"{path}: set name {set_name!r} collides with a trace name"
            )
        if not isinstance(members, list) or not members:
            raise RegistryError(
                f"{path}: set {set_name!r} must be a non-empty array of"
                f" trace names"
            )
        for member in members:
            if not isinstance(member, str) or member not in entries:
                raise RegistryError(
                    f"{path}: set {set_name!r} references unknown trace"
                    f" {member!r}"
                )
        sets[set_name] = tuple(members)
    return Registry(path=path, entries=entries, sets=sets)


def _is_builtin_name(name: str) -> bool:
    from . import suites

    return name in suites._BUILDERS or name in suites.EXTRA_WORKLOADS


# ---------------------------------------------------------------------------
# Resolution + memoization
# ---------------------------------------------------------------------------

#: Per-process memo: resolved manifest path -> Registry.
_LOADED: Dict[str, Registry] = {}


def default_manifest_path() -> Optional[Path]:
    """The manifest the current configuration points at, or ``None``.

    ``REPRO_REGISTRY`` (exported by ``--registry``) wins; otherwise the
    checked-in default is used when it exists.
    """
    from ..eval.config import registry_manifest

    configured = registry_manifest()
    if configured:
        return Path(configured)
    if DEFAULT_MANIFEST.exists():
        return DEFAULT_MANIFEST
    return None


def get_registry(path: "Path | str | None" = None) -> Optional[Registry]:
    """The active registry (memoized per manifest path), or ``None``."""
    manifest = Path(path) if path is not None else default_manifest_path()
    if manifest is None:
        return None
    key = str(manifest.resolve())
    if key not in _LOADED:
        _LOADED[key] = load_registry(manifest)
    return _LOADED[key]


def clear_cache() -> None:
    """Drop the per-process registry memo (test isolation hook)."""
    _LOADED.clear()


def has_trace(name: str) -> bool:
    registry = get_registry()
    return registry is not None and name in registry.entries


def trace_names() -> List[str]:
    """All registered trace names, manifest order (empty if no registry)."""
    registry = get_registry()
    return list(registry.entries) if registry is not None else []


def suite_of(name: str) -> Optional[str]:
    registry = get_registry()
    if registry is not None and name in registry.entries:
        return registry.entries[name].suite
    return None


def expand_trace_names(names: List[str]) -> List[str]:
    """Replace registry set names with their members, in place-order.

    Non-set names (built-in traces, registry traces, typos left for the
    drivers to report) pass through untouched.
    """
    registry = get_registry()
    if registry is None:
        return list(names)
    expanded: List[str] = []
    for name in names:
        if name in registry.sets:
            expanded.extend(registry.sets[name])
        else:
            expanded.append(name)
    return expanded


# ---------------------------------------------------------------------------
# Trace materialisation (verified source -> normalized -> cached)
# ---------------------------------------------------------------------------

def _entry(name: str) -> RegistryEntry:
    registry = get_registry()
    if registry is None or name not in registry.entries:
        # KeyError, not RegistryError: callers reached through
        # suites.get_trace expect the same exception contract as for any
        # unknown trace name.
        raise KeyError(f"unknown trace {name!r}")
    return registry.entries[name]


def _load_entry_records(
    entry: RegistryEntry,
) -> Tuple[str, List[IngestRecord], bytes]:
    """Read, integrity-check and parse one entry's source file."""
    try:
        data = entry.path.read_bytes()
    except OSError as error:
        raise RegistryError(
            f"{entry.name}: trace file {entry.path} unreadable ({error})"
        ) from None
    digest = sha256_bytes(data)
    if digest != entry.sha256:
        raise RegistryError(
            f"{entry.name}: sha256 mismatch for {entry.path}"
            f" (manifest {entry.sha256[:12]}..., file {digest[:12]}...)"
        )
    format_name = entry.format or sniff_format(data, source=entry.path.name)
    records = get_format(format_name).read(data, entry.path.name)
    if len(records) != entry.records:
        raise RegistryError(
            f"{entry.name}: record count mismatch for {entry.path}"
            f" (manifest {entry.records}, file {len(records)})"
        )
    return format_name, records, data


def cache_path(name: str, instructions: Optional[int] = None) -> Path:
    """Trace-cache file a registry (trace, budget) pair resolves to.

    The filename embeds the manifest's digest prefix, so editing the
    source file (and updating the manifest) can never be satisfied by a
    stale cache entry.
    """
    entry = _entry(name)
    return _cache_dir() / (
        f"{entry.name}_{instructions or 0}_{entry.sha256[:12]}"
        f"_v{_CACHE_VERSION}.npz"
    )


def _build_trace(
    entry: RegistryEntry, instructions: Optional[int]
) -> Trace:
    format_name, records, data = _load_entry_records(entry)
    return records_to_trace(
        records,
        entry.name,
        format_name=format_name,
        source=str(entry.path),
        source_bytes=data,
        suite=entry.suite,
        max_records=instructions,
    )


def get_trace(
    name: str,
    instructions: Optional[int] = None,
    use_cache: bool = True,
) -> Trace:
    """Materialise a registry trace (same contract as ``suites.get_trace``).

    ``instructions`` caps the number of source records kept — the
    external analogue of the synthetic suites' instruction budget; the
    cap is a deterministic prefix.  Uses the same lock + atomic-rename
    cache discipline as the synthetic generator.
    """
    entry = _entry(name)
    if not use_cache:
        return _build_trace(entry, instructions)
    path = cache_path(name, instructions)
    if path.exists():
        return Trace.load(path)
    with _generation_lock(path):
        if path.exists():  # another worker built it while we waited
            return Trace.load(path)
        trace = _build_trace(entry, instructions)
        trace.save(path)
    return trace


def get_predictor_stream(
    name: str, instructions: Optional[int] = None
) -> PredictorStream:
    """Columnar predictor stream for a registry trace (cache-cheap)."""
    path = cache_path(name, instructions)
    if path.exists():
        stream = Trace.load_stream(path)
        if stream is not None:
            return stream
    return get_trace(name, instructions).predictor_columns()


def ingest_meta(
    name: str, instructions: Optional[int] = None
) -> Optional[dict]:
    """Ingest provenance for a registry trace, for run manifests.

    Reads only the cached archive's header when warm; builds the trace
    (populating the cache) when cold.  Returns ``None`` for names the
    registry does not know — callers probe with built-in names too.
    """
    if not has_trace(name):
        return None
    path = cache_path(name, instructions)
    if path.exists():
        header = Trace.load_header(path)
        meta = header.get("meta", {})
        ingest = meta.get("ingest")
        if ingest is not None:
            return dict(ingest)
    return dict(get_trace(name, instructions).meta["ingest"])


# ---------------------------------------------------------------------------
# Deep validation (the `repro ingest validate` engine)
# ---------------------------------------------------------------------------

def validate(registry: Registry) -> List[str]:
    """Check every entry against its actual file; returns problems.

    Covers existence, digest, parseability under the pinned (or sniffed)
    format, and the expected record count — everything that must hold
    for :func:`get_trace` to succeed on a cold cache.
    """
    problems: List[str] = []
    for entry in registry.entries.values():
        if not entry.path.exists():
            problems.append(
                f"{entry.name}: trace file {entry.path} does not exist"
            )
            continue
        try:
            _load_entry_records(entry)
        except (RegistryError, FormatError) as error:
            problems.append(str(error))
    return problems
