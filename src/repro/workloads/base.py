"""Workload abstraction: a program plus its initial memory image.

Each workload builds a mini-ISA program and lays out its data structures in
memory (heap nodes, global arrays, ...).  Running the program through the
functional CPU yields the dynamic trace the predictors are evaluated on.

Workloads loop forever over their phases; trace length is controlled by
the instruction budget passed to :func:`trace_workload`, mirroring how the
paper cuts 30M-instruction windows out of longer executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.cpu import CPU
from ..isa.memory import HeapAllocator, Memory
from ..isa.program import Program
from ..trace.trace import Trace

__all__ = ["BuiltWorkload", "Workload", "trace_workload"]


@dataclass
class BuiltWorkload:
    """The artefacts of one workload build."""

    program: Program
    memory: Memory
    meta: dict = field(default_factory=dict)


class Workload:
    """Base class: subclasses implement :meth:`build`.

    Attributes
    ----------
    name:
        Unique trace name (e.g. ``"INT_list"``).
    suite:
        Suite label the trace is grouped under (``"INT"``, ``"MM"``, ...).
    seed:
        RNG seed controlling data layout and synthetic data; a given
        (workload, seed) pair always produces the identical trace.
    """

    suite = "MISC"

    def __init__(self, name: str, seed: int = 1) -> None:
        self.name = name
        self.seed = seed

    def build(self) -> BuiltWorkload:
        """Construct the program and its initial memory image."""
        raise NotImplementedError

    def allocator(self, memory: Memory, policy: str = "shuffled") -> HeapAllocator:
        """A heap allocator seeded consistently with this workload."""
        del memory  # layout is recorded straight into the allocator's space
        return HeapAllocator(policy=policy, seed=self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, seed={self.seed})"


def trace_workload(
    workload: Workload,
    max_instructions: int = 200_000,
    built: Optional[BuiltWorkload] = None,
) -> Trace:
    """Execute ``workload`` for ``max_instructions`` and return its trace."""
    if built is None:
        built = workload.build()
    trace = Trace(
        name=workload.name,
        meta={
            "suite": workload.suite,
            "seed": workload.seed,
            "workload": type(workload).__name__,
            **built.meta,
        },
    )
    cpu = CPU(built.memory)
    cpu.run(built.program, max_instructions=max_instructions, trace=trace)
    return trace
