"""Irregular and over-long access patterns — the predictor's adversaries.

* :class:`RandomAccessWorkload` — an in-ISA linear-congruential generator
  indexes a large table: genuinely unpredictable loads.  This is the
  pollution source the PF bits (Section 3.5) exist to keep out of the LT.
* :class:`LongChainWorkload` — a shuffled circular linked list far larger
  than the Link Table: a *recurring* sequence that cannot fit, the second
  pollution case the paper names ("very long sequences that would have not
  fit into the LT anyway").
"""

from __future__ import annotations

import random

from ..common.bitops import is_power_of_two
from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["RandomAccessWorkload", "LongChainWorkload"]


class RandomAccessWorkload(Workload):
    """LCG-driven loads from a table of ``elements`` words."""

    suite = "MISC"

    def __init__(
        self,
        name: str = "random",
        seed: int = 1,
        elements: int = 16384,
    ) -> None:
        super().__init__(name, seed)
        if not is_power_of_two(elements):
            raise ValueError("elements must be a power of two")
        self.elements = elements

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 71)
        table = allocator.alloc_array(self.elements, 4)
        # Sparse init is fine: untouched words read as zero.
        for _ in range(min(self.elements, 512)):
            memory.poke(table + 4 * rng.randrange(self.elements),
                        rng.randrange(256))

        index_mask = (self.elements - 1) << 2  # aligned pseudo-random index

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(1, self.seed * 2654435761 % (1 << 32))  # LCG state
        b.li(2, 0)
        b.label("loop")
        b.muli(1, 1, 1103515245)
        b.addi(1, 1, 12345)
        b.andi(4, 1, index_mask)
        b.ld(5, 4, table)
        b.add(2, 2, 5)
        b.jmp("loop")
        return BuiltWorkload(b.build(), memory, {"elements": self.elements})


class LongChainWorkload(Workload):
    """Endless walk around a huge shuffled ring of list nodes."""

    suite = "MISC"

    def __init__(
        self,
        name: str = "longchain",
        seed: int = 1,
        nodes: int = 20000,
    ) -> None:
        super().__init__(name, seed)
        if nodes < 2:
            raise ValueError("ring needs at least two nodes")
        self.nodes = nodes

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 73)
        addrs = [allocator.alloc(16) for _ in range(self.nodes)]
        for i, addr in enumerate(addrs):
            memory.poke(addr + 4, rng.randrange(256))          # val
            memory.poke(addr + 8, addrs[(i + 1) % self.nodes])  # next (ring)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(1, addrs[0])
        b.li(2, 0)
        b.label("loop")
        b.ld(7, 1, 4)
        b.add(2, 2, 7)
        b.ld(1, 1, 8)
        b.jmp("loop")
        return BuiltWorkload(b.build(), memory, {"nodes": self.nodes})
