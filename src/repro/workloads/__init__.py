"""Synthetic workloads standing in for the paper's 45 IA-32 traces."""

from .arrays import (
    ArraySumWorkload,
    CopyWorkload,
    HistogramWorkload,
    MatMulWorkload,
    SaxpyWorkload,
    StencilWorkload,
)
from .base import BuiltWorkload, Workload, trace_workload
from .binary_tree import BinaryTreeWorkload
from .cad import CircuitWorkload
from .call_patterns import CallPatternWorkload
from .database import BTreeLookupWorkload, HashJoinWorkload, TableScanWorkload
from .desktop import DesktopWorkload
from .extra import (
    MutatingListWorkload,
    QuickSortWorkload,
    RingBufferWorkload,
    SparseMatVecWorkload,
)
from .game import GameWorkload
from .hash_table import HashTableWorkload
from .interpreter import ListEvalWorkload
from .linked_list import (
    DoubleLinkedListWorkload,
    IndexListWorkload,
    LinkedListWorkload,
)
from .random_access import LongChainWorkload, RandomAccessWorkload
from .stack_machine import JavaJITWorkload
from .suites import (
    DEFAULT_INSTRUCTIONS,
    SUITE_NAMES,
    SUITES,
    all_traces,
    build_workload,
    default_instructions,
    get_trace,
    suite_of,
    suite_traces,
    trace_names,
)

__all__ = [
    "ArraySumWorkload",
    "CopyWorkload",
    "HistogramWorkload",
    "MatMulWorkload",
    "SaxpyWorkload",
    "StencilWorkload",
    "BuiltWorkload",
    "Workload",
    "trace_workload",
    "BinaryTreeWorkload",
    "CircuitWorkload",
    "CallPatternWorkload",
    "BTreeLookupWorkload",
    "HashJoinWorkload",
    "TableScanWorkload",
    "DesktopWorkload",
    "MutatingListWorkload",
    "QuickSortWorkload",
    "RingBufferWorkload",
    "SparseMatVecWorkload",
    "GameWorkload",
    "HashTableWorkload",
    "ListEvalWorkload",
    "DoubleLinkedListWorkload",
    "IndexListWorkload",
    "LinkedListWorkload",
    "LongChainWorkload",
    "RandomAccessWorkload",
    "JavaJITWorkload",
    "DEFAULT_INSTRUCTIONS",
    "SUITE_NAMES",
    "SUITES",
    "all_traces",
    "build_workload",
    "default_instructions",
    "get_trace",
    "suite_of",
    "suite_traces",
    "trace_names",
]
