"""Additional workload programs beyond the 45-trace roster.

These exercise behaviours the suite traces touch only lightly and back
the ablation/extension studies:

* :class:`QuickSortWorkload` — in-place quicksort: data-dependent
  branches, partially-sorted re-runs, swap-heavy stores.
* :class:`MutatingListWorkload` — a linked list whose structure changes
  periodically (node rotation), stressing the PF bits' hysteresis and the
  predictors' retraining behaviour.
* :class:`RingBufferWorkload` — a producer/consumer byte ring: two
  striding pointers that wrap, the interval technique's best case.
* :class:`SparseMatVecWorkload` — CSR sparse matrix-vector product: a
  stride over the row pointers/values feeding an indirect gather from the
  dense vector, the classic half-regular memory shape.
"""

from __future__ import annotations

import random

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = [
    "QuickSortWorkload",
    "MutatingListWorkload",
    "RingBufferWorkload",
    "SparseMatVecWorkload",
]


class QuickSortWorkload(Workload):
    """Repeatedly shuffle (via LCG swaps) and quicksort an array."""

    suite = "MISC"

    def __init__(self, name: str = "qsort", seed: int = 1, elements: int = 128):
        super().__init__(name, seed)
        if elements < 4:
            raise ValueError("need at least 4 elements")
        self.elements = elements

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 301)
        data = allocator.alloc_array(self.elements, 4)
        for i in range(self.elements):
            memory.poke(data + 4 * i, rng.randrange(1 << 16))

        n = self.elements
        b = ProgramBuilder(self.name)
        # Register plan: r1 scratch, r2 checksum, r3 LCG state,
        # r4/r5 loop indices (byte offsets), r6/r7 values, r8 limit.
        b.label("main")
        b.li(2, 0)
        b.li(3, self.seed * 2654435761 % (1 << 32) or 1)
        b.label("outer")
        # --- perturb: n/4 pseudo-random swaps --------------------------
        b.li(9, n // 4)
        b.label("shuffle")
        b.muli(3, 3, 1103515245)
        b.addi(3, 3, 12345)
        b.andi(4, 3, (n - 1) << 2)       # aligned index a
        b.muli(5, 3, 2654435761)
        b.andi(5, 5, (n - 1) << 2)       # aligned index b
        b.ld(6, 4, data)
        b.ld(7, 5, data)
        b.st(7, 4, data)
        b.st(6, 5, data)
        b.addi(9, 9, -1)
        b.bne(9, 0, "shuffle")
        # --- bubble-ish selection sort pass (bounded, branch-heavy) ----
        # (A full recursive quicksort would need more registers than it
        # teaches; an O(n^2)-bounded exchange sort exhibits the same
        # data-dependent compare/swap memory behaviour per pass.)
        b.li(4, 0)
        b.li(8, (n - 1) * 4)
        b.label("sort_i")
        b.mov(5, 4)
        b.addi(5, 5, 4)
        b.label("sort_j")
        b.ld(6, 4, data)
        b.ld(7, 5, data)
        b.bge(7, 6, "no_swap")
        b.st(7, 4, data)
        b.st(6, 5, data)
        b.label("no_swap")
        b.addi(5, 5, 4)
        b.li(9, n * 4)
        b.blt(5, 9, "sort_j")
        b.addi(4, 4, 4)
        b.blt(4, 8, "sort_i")
        # --- checksum scan ---------------------------------------------
        b.li(4, 0)
        b.li(9, n * 4)
        b.label("scan")
        b.ld(6, 4, data)
        b.add(2, 2, 6)
        b.addi(4, 4, 4)
        b.blt(4, 9, "scan")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"elements": n})


class MutatingListWorkload(Workload):
    """Traverse a list whose head rotates every few traversals.

    The rotation changes which node follows which, so the context links
    must be *re-learned* — the behaviour-change case the PF bits' two-
    sightings rule deliberately slows down (Section 3.5's hysteresis).
    """

    suite = "MISC"

    def __init__(
        self,
        name: str = "mutlist",
        seed: int = 1,
        length: int = 16,
        traversals_per_mutation: int = 8,
    ) -> None:
        super().__init__(name, seed)
        if length < 3:
            raise ValueError("need at least 3 nodes")
        self.length = length
        self.traversals_per_mutation = traversals_per_mutation

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 307)
        nodes = [allocator.alloc(16) for _ in range(self.length)]
        for i, addr in enumerate(nodes):
            memory.poke(addr + 4, rng.randrange(100))
            memory.poke(addr + 8, nodes[(i + 1) % self.length])  # ring

        head_slot = 0x1000_0A00
        memory.poke(head_slot, nodes[0])
        count = self.length

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(9, self.traversals_per_mutation)
        b.label("epoch")
        # One traversal around the ring (count steps).
        b.ld(1, 0, head_slot)
        b.li(10, count)
        b.label("walk")
        b.ld(7, 1, 4)
        b.add(2, 2, 7)
        b.ld(1, 1, 8)
        b.addi(10, 10, -1)
        b.bne(10, 0, "walk")
        b.addi(9, 9, -1)
        b.bne(9, 0, "epoch")
        # Mutate: advance the head by one node — every context shifts.
        b.ld(1, 0, head_slot)
        b.ld(1, 1, 8)
        b.st(1, 0, head_slot)
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory,
            {"length": self.length,
             "traversals_per_mutation": self.traversals_per_mutation},
        )


class RingBufferWorkload(Workload):
    """Producer/consumer over a power-of-two ring buffer."""

    suite = "MISC"

    def __init__(
        self, name: str = "ring", seed: int = 1, slots: int = 256,
    ) -> None:
        super().__init__(name, seed)
        if slots & (slots - 1) or slots < 4:
            raise ValueError("slots must be a power of two >= 4")
        self.slots = slots

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        ring = allocator.alloc_array(self.slots, 4)
        mask_bytes = (self.slots - 1) << 2

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.li(4, 0)                      # producer cursor (bytes)
        b.li(5, 0)                      # consumer cursor (bytes)
        b.li(6, 1)                      # produced value
        b.label("outer")
        # Produce a burst of 8...
        b.li(9, 8)
        b.label("produce")
        b.st(6, 4, ring)
        b.addi(6, 6, 1)
        b.addi(4, 4, 4)
        b.andi(4, 4, mask_bytes)        # wrap
        b.addi(9, 9, -1)
        b.bne(9, 0, "produce")
        # ...then consume it.
        b.li(9, 8)
        b.label("consume")
        b.ld(7, 5, ring)
        b.add(2, 2, 7)
        b.addi(5, 5, 4)
        b.andi(5, 5, mask_bytes)
        b.addi(9, 9, -1)
        b.bne(9, 0, "consume")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"slots": self.slots})


class SparseMatVecWorkload(Workload):
    """y = A*x for a CSR sparse matrix: stride + indirect gather."""

    suite = "MISC"

    def __init__(
        self,
        name: str = "spmv",
        seed: int = 1,
        rows: int = 64,
        cols: int = 256,
        nnz_per_row: int = 6,
    ) -> None:
        super().__init__(name, seed)
        if rows < 1 or cols < 1 or nnz_per_row < 1:
            raise ValueError("bad matrix dimensions")
        self.rows = rows
        self.cols = cols
        self.nnz_per_row = nnz_per_row

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 311)
        nnz = self.rows * self.nnz_per_row

        row_ptr = allocator.alloc_array(self.rows + 1, 4)
        col_idx = allocator.alloc_array(nnz, 4)   # pre-scaled byte offsets
        values = allocator.alloc_array(nnz, 4)
        x_vec = allocator.alloc_array(self.cols, 4)
        y_vec = allocator.alloc_array(self.rows, 4)

        for c in range(self.cols):
            memory.poke(x_vec + 4 * c, rng.randrange(16))
        k = 0
        for r in range(self.rows):
            memory.poke(row_ptr + 4 * r, k * 4)
            for _ in range(self.nnz_per_row):
                memory.poke(col_idx + 4 * k, 4 * rng.randrange(self.cols))
                memory.poke(values + 4 * k, rng.randrange(8))
                k += 1
        memory.poke(row_ptr + 4 * self.rows, k * 4)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.label("outer")
        b.li(4, 0)                         # row cursor (bytes)
        b.li(8, self.rows * 4)
        b.label("row")
        b.ld(5, 4, row_ptr)                # k begin (stride)
        b.ld(6, 4, row_ptr + 4)            # k end   (stride)
        b.li(2, 0)                         # accumulator
        b.label("col")
        b.bge(5, 6, "row_done")
        b.ld(9, 5, col_idx)                # column offset (stride)
        b.ld(10, 9, x_vec)                 # x[col]  (indirect gather)
        b.ld(11, 5, values)                # A value (stride)
        b.mul(10, 10, 11)
        b.add(2, 2, 10)
        b.addi(5, 5, 4)
        b.jmp("col")
        b.label("row_done")
        b.st(2, 4, y_vec)
        b.addi(4, 4, 4)
        b.blt(4, 8, "row")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory,
            {"rows": self.rows, "cols": self.cols, "nnz": nnz},
        )
