"""An xlisp-like list evaluator (the paper's Section 2.1 motivating case).

The heap holds cons cells (``n_type``/``car``/``cdr``).  A top-level list
is traversed through a global current-element pointer (the paper's
``%ebx`` slot); numeric elements are accumulated directly and list
elements trigger an inner sublist walk — giving nested, type-dispatched
RDS traversal with data-dependent branches.
"""

from __future__ import annotations

import random

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["ListEvalWorkload"]

TYPE_NUMBER = 1
TYPE_LIST = 3

# Cons/element layout.
OFF_TYPE = 0
OFF_CAR = 4
OFF_CDR = 8
CELL_SIZE = 16


class ListEvalWorkload(Workload):
    """Evaluate a heap-allocated list of numbers and sublists, repeatedly."""

    suite = "INT"

    def __init__(
        self,
        name: str = "xleval",
        seed: int = 1,
        elements: int = 16,
        sublist_len: int = 5,
        list_fraction: float = 0.4,
    ) -> None:
        super().__init__(name, seed)
        if elements < 1 or sublist_len < 1:
            raise ValueError("elements and sublist_len must be positive")
        if not 0.0 <= list_fraction <= 1.0:
            raise ValueError("list_fraction must be in [0, 1]")
        self.elements = elements
        self.sublist_len = sublist_len
        self.list_fraction = list_fraction

    def _cons(self, memory: Memory, allocator, n_type: int, car: int, cdr: int) -> int:
        cell = allocator.alloc(CELL_SIZE)
        memory.poke(cell + OFF_TYPE, n_type)
        memory.poke(cell + OFF_CAR, car)
        memory.poke(cell + OFF_CDR, cdr)
        return cell

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 83)

        # Build the top-level list back to front.
        head = 0
        for _ in range(self.elements):
            if rng.random() < self.list_fraction:
                # A sublist of plain numeric cells (car holds the value).
                sub = 0
                for _ in range(self.sublist_len):
                    sub = self._cons(
                        memory, allocator, TYPE_NUMBER,
                        rng.randrange(1000), sub,
                    )
                element = self._cons(memory, allocator, TYPE_LIST, sub, 0)
            else:
                element = self._cons(
                    memory, allocator, TYPE_NUMBER, rng.randrange(1000), 0,
                )
            head = self._cons(memory, allocator, TYPE_LIST, element, head)

        ptr_slot = 0x1000_0200  # the global current-element pointer

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.li(9, ptr_slot)
        b.label("outer")
        b.li(1, head)
        b.st(1, 9, 0)
        b.label("next_el")
        b.ld(1, 9, 0)                    # current cons (constant address)
        b.beq(1, 0, "outer")
        b.ld(4, 1, OFF_CAR)              # element
        b.ld(5, 1, OFF_CDR)              # advance pointer
        b.st(5, 9, 0)
        b.ld(6, 4, OFF_TYPE)             # element type (data-dependent branch)
        b.li(7, TYPE_NUMBER)
        b.beq(6, 7, "is_num")
        b.ld(8, 4, OFF_CAR)              # sublist head
        b.label("sub")
        b.beq(8, 0, "next_el")
        b.ld(10, 8, OFF_CAR)             # numeric car
        b.add(2, 2, 10)
        b.ld(8, 8, OFF_CDR)
        b.jmp("sub")
        b.label("is_num")
        b.ld(7, 4, OFF_CAR)
        b.add(2, 2, 7)
        b.jmp("next_el")
        return BuiltWorkload(
            b.build(), memory,
            {"elements": self.elements, "sublist_len": self.sublist_len},
        )
