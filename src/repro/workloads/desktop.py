"""NT / W95-suite workloads: event-loop programs with many static loads.

The paper's NT, W95 (and TPC) traces are distinguished by a large static
load population that contends for the Load Buffer — their prediction rate
"steadily increases" with LB size (Figure 6) and their speedups are the
lowest (Figure 7).  This workload reproduces that shape: a message loop
reads a recurring event queue and dispatches, through a binary compare
tree, to one of hundreds of distinct handlers, each with its own block of
static loads (global reads, small struct walks, tiny list traversals).
"""

from __future__ import annotations

import random

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["DesktopWorkload"]


class DesktopWorkload(Workload):
    """A message pump over ``handlers`` distinct handler routines."""

    suite = "NT"

    def __init__(
        self,
        name: str = "desktop",
        seed: int = 1,
        handlers: int = 192,
        loads_per_handler: int = 16,
        queue_len: int = 96,
    ) -> None:
        super().__init__(name, seed)
        if handlers < 2 or loads_per_handler < 1 or queue_len < 1:
            raise ValueError("bad sizing parameters")
        self.handlers = handlers
        self.loads_per_handler = loads_per_handler
        self.queue_len = queue_len

    def _emit_dispatch(self, b: ProgramBuilder, lo: int, hi: int) -> None:
        """Binary compare tree on r4 (event type) calling handler leaves."""
        if lo == hi:
            b.call(f"handler_{lo}")
            b.jmp("ev_next")
            return
        mid = (lo + hi) // 2
        right = f"dsp_{mid + 1}_{hi}"
        b.li(5, mid + 1)
        b.bge(4, 5, right)
        self._emit_dispatch(b, lo, mid)
        b.label(right)
        self._emit_dispatch(b, mid + 1, hi)

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 211)

        # The recurring event queue: every handler appears (so the whole
        # static-load population is live and contends for the LB), with a
        # few hot handlers over-represented, mirroring real message
        # distributions.
        queue_base = allocator.alloc_array(self.queue_len, 4)
        events: list[int] = []
        while len(events) < self.queue_len:
            coverage = list(range(self.handlers))
            rng.shuffle(coverage)
            events.extend(coverage)
        events = events[: self.queue_len]
        hot = rng.sample(range(self.handlers), max(2, self.handlers // 16))
        for i in range(self.queue_len):
            if rng.random() < 0.35:
                events[i] = rng.choice(hot)
        for i, ev in enumerate(events):
            memory.poke(queue_base + 4 * i, ev)

        # Per-handler global blocks plus a tiny private list each.
        handler_globals = []
        handler_lists = []
        for _ in range(self.handlers):
            block = allocator.alloc_array(self.loads_per_handler, 4)
            for j in range(self.loads_per_handler):
                memory.poke(block + 4 * j, rng.randrange(100))
            handler_globals.append(block)
            nodes = [allocator.alloc(16) for _ in range(5)]
            for k, addr in enumerate(nodes):
                memory.poke(addr + 4, rng.randrange(100))
                memory.poke(addr + 8, nodes[k + 1] if k + 1 < len(nodes) else 0)
            handler_lists.append(nodes[0])

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.queue_len * 4)
        b.label("ev_loop")
        b.ld(4, 1, queue_base)          # event type (stride, recurring)
        self._emit_dispatch(b, 0, self.handlers - 1)
        b.label("ev_next")
        b.addi(1, 1, 4)
        b.blt(1, 3, "ev_loop")
        b.jmp("outer")

        for h in range(self.handlers):
            b.label(f"handler_{h}")
            block = handler_globals[h]
            # A block of constant-address global reads: each is a distinct
            # static load with a last-address-friendly pattern.
            for j in range(self.loads_per_handler):
                b.ld(6, 0, block + 4 * j)   # r0 is never written (zero)
                b.add(2, 2, 6)
            if h % 2 == 0:
                # Half of the handlers also chase a tiny private list.
                b.li(7, handler_lists[h])
                b.label(f"hl_{h}")
                b.ld(8, 7, 4)
                b.add(2, 2, 8)
                b.ld(7, 7, 8)
                b.bne(7, 0, f"hl_{h}")
            b.ret()

        return BuiltWorkload(
            b.build(), memory,
            {
                "handlers": self.handlers,
                "loads_per_handler": self.loads_per_handler,
                "queue_len": self.queue_len,
            },
        )
