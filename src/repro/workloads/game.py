"""GAM-suite workload: a game-engine frame loop.

Each simulated frame walks an entity list (RDS), dispatches per entity
type to update routines (control correlation), samples a trigonometric
lookup table by an entity field (semi-irregular), and sweeps a particle
array (stride) — the Quake-flavoured mix of the paper's GAM traces.
"""

from __future__ import annotations

import random

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["GameWorkload"]

# Entity layout: type, angle, value, next.
OFF_TYPE = 0
OFF_ANGLE = 4
OFF_VALUE = 8
OFF_NEXT = 12
ENTITY_SIZE = 16


class GameWorkload(Workload):
    """Frame loop over entities, a LUT and a particle array."""

    suite = "GAM"

    def __init__(
        self,
        name: str = "game",
        seed: int = 1,
        entities: int = 32,
        entity_types: int = 4,
        particles: int = 512,
        lut_size: int = 256,
    ) -> None:
        super().__init__(name, seed)
        if entities < 1 or not 1 <= entity_types <= 8:
            raise ValueError("bad entity parameters")
        if lut_size & (lut_size - 1):
            raise ValueError("lut_size must be a power of two")
        self.entities = entities
        self.entity_types = entity_types
        self.particles = particles
        self.lut_size = lut_size

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 223)

        # Entity list (shuffled heap placement).
        addrs = [allocator.alloc(ENTITY_SIZE) for _ in range(self.entities)]
        for i, addr in enumerate(addrs):
            memory.poke(addr + OFF_TYPE, rng.randrange(self.entity_types))
            memory.poke(addr + OFF_ANGLE, rng.randrange(self.lut_size))
            memory.poke(addr + OFF_VALUE, rng.randrange(100))
            memory.poke(
                addr + OFF_NEXT, addrs[i + 1] if i + 1 < self.entities else 0
            )
        head = addrs[0]

        lut_base = allocator.alloc_array(self.lut_size, 4)
        for i in range(self.lut_size):
            memory.poke(lut_base + 4 * i, (i * 37) & 0xFF)

        particle_base = allocator.alloc_array(self.particles, 8)
        for i in range(self.particles):
            memory.poke(particle_base + 8 * i, rng.randrange(100))

        # Global world state (read-only scalars every engine reads a lot).
        g_timestep = 0x1000_0300
        g_gravity = 0x1000_0304
        memory.poke(g_timestep, 16)
        memory.poke(g_gravity, 10)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("frame")
        # --- entity pass (RDS + control correlation) -------------------
        b.li(1, head)
        b.label("ent")
        b.ld(14, 0, g_timestep)          # constant-address global reads
        b.ld(13, 0, g_gravity)
        b.add(2, 2, 14)
        b.add(2, 2, 13)
        b.ld(4, 1, OFF_TYPE)             # entity type
        # Dispatch via a short compare chain: each type has its own update
        # routine whose loads correlate with the entity stream.
        for t in range(self.entity_types):
            b.li(5, t)
            b.beq(4, 5, f"type_{t}")
        b.jmp("ent_next")
        for t in range(self.entity_types):
            b.label(f"type_{t}")
            b.ld(6, 1, OFF_ANGLE)        # per-type static load of angle
            b.andi(6, 6, self.lut_size - 1)
            b.muli(6, 6, 4)
            b.ld(7, 6, lut_base)         # LUT sample (semi-irregular)
            b.ld(8, 1, OFF_VALUE)        # per-type static load of value
            b.add(2, 2, 7)
            b.add(2, 2, 8)
            b.jmp("ent_next")
        b.label("ent_next")
        b.ld(1, 1, OFF_NEXT)             # next entity (RDS)
        b.bne(1, 0, "ent")
        # --- particle pass (stride) -----------------------------------
        b.li(1, 0)
        b.li(3, self.particles * 8)
        b.label("part")
        b.ld(5, 1, particle_base)
        b.addi(5, 5, 1)
        b.st(5, 1, particle_base)
        b.addi(1, 1, 8)
        b.blt(1, 3, "part")
        b.jmp("frame")
        return BuiltWorkload(
            b.build(), memory,
            {"entities": self.entities, "particles": self.particles},
        )
