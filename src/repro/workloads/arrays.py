"""Array/stride kernels — the multimedia (MM) suite's bread and butter.

These are the loads the paper's *stride* predictor owns: long linear
traversals of large arrays.  CAP "can hardly handle" them with its limited
LT storage (Section 4.2), which is exactly why the hybrid exists.  The
kernels also provide the long-sequence LT-pollution pressure the PF bits
guard against.
"""

from __future__ import annotations

import random

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = [
    "ArraySumWorkload",
    "SaxpyWorkload",
    "StencilWorkload",
    "HistogramWorkload",
    "CopyWorkload",
    "MatMulWorkload",
]


def _fill_array(memory: Memory, base: int, count: int, rng, bound: int = 256):
    for i in range(count):
        memory.poke(base + 4 * i, rng.randrange(bound))


class ArraySumWorkload(Workload):
    """Sum an array with a configurable element stride."""

    suite = "MM"

    def __init__(
        self,
        name: str = "asum",
        seed: int = 1,
        elements: int = 4096,
        stride_words: int = 1,
    ) -> None:
        super().__init__(name, seed)
        if elements < 1 or stride_words < 1:
            raise ValueError("elements and stride must be positive")
        self.elements = elements
        self.stride_words = stride_words

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 3)
        span = self.elements * self.stride_words
        base = allocator.alloc_array(span, 4)
        _fill_array(memory, base, span, rng)

        step = 4 * self.stride_words
        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, 0)
        b.li(3, span * 4)
        b.label("inner")
        b.ld(5, 1, base)
        b.add(2, 2, 5)
        b.addi(1, 1, step)
        b.blt(1, 3, "inner")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory,
            {"elements": self.elements, "stride_words": self.stride_words},
        )


class SaxpyWorkload(Workload):
    """y[i] += a * x[i]: two parallel load streams plus a store stream."""

    suite = "MM"

    def __init__(
        self, name: str = "saxpy", seed: int = 1, elements: int = 4096,
    ) -> None:
        super().__init__(name, seed)
        self.elements = elements

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 5)
        x = allocator.alloc_array(self.elements, 4)
        y = allocator.alloc_array(self.elements, 4)
        _fill_array(memory, x, self.elements, rng)
        _fill_array(memory, y, self.elements, rng)
        # The scale factor lives in a global, reloaded per iteration — the
        # register-starved compiled-code idiom that makes last-address
        # predictors useful in the first place.
        coeff_addr = 0x1000_0400
        memory.poke(coeff_addr, 3)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.elements * 4)
        b.label("inner")
        b.ld(5, 1, x)
        b.ld(7, 0, coeff_addr)           # constant-address global
        b.mul(5, 5, 7)
        b.ld(6, 1, y)
        b.add(6, 6, 5)
        b.st(6, 1, y)
        b.addi(1, 1, 4)
        b.blt(1, 3, "inner")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"elements": self.elements})


class StencilWorkload(Workload):
    """3-point stencil: three static loads at constant offsets of one base.

    The loads share their base addresses exactly (offsets 0/4/8), so this
    kernel doubles as a pure global-correlation stress: with base-address
    links all three share LT entries.
    """

    suite = "MM"

    def __init__(
        self, name: str = "stencil", seed: int = 1, elements: int = 4096,
    ) -> None:
        super().__init__(name, seed)
        if elements < 3:
            raise ValueError("stencil needs at least 3 elements")
        self.elements = elements

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 7)
        src = allocator.alloc_array(self.elements, 4)
        dst = allocator.alloc_array(self.elements, 4)
        _fill_array(memory, src, self.elements, rng)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.label("outer")
        b.li(1, 0)
        b.li(3, (self.elements - 2) * 4)
        b.label("inner")
        b.ld(5, 1, src)
        b.ld(6, 1, src + 4)
        b.ld(7, 1, src + 8)
        b.add(5, 5, 6)
        b.add(5, 5, 7)
        b.st(5, 1, dst + 4)
        b.addi(1, 1, 4)
        b.blt(1, 3, "inner")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"elements": self.elements})


class HistogramWorkload(Workload):
    """hist[data[i]]++: a stride stream feeding a data-dependent stream."""

    suite = "MM"

    def __init__(
        self,
        name: str = "hist",
        seed: int = 1,
        elements: int = 4096,
        buckets: int = 64,
    ) -> None:
        super().__init__(name, seed)
        self.elements = elements
        self.buckets = buckets

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 11)
        data = allocator.alloc_array(self.elements, 4)
        hist = allocator.alloc_array(self.buckets, 4)
        _fill_array(memory, data, self.elements, rng, bound=self.buckets)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.elements * 4)
        b.label("inner")
        b.ld(5, 1, data)
        b.muli(6, 5, 4)
        b.ld(7, 6, hist)        # data-dependent address
        b.addi(7, 7, 1)
        b.st(7, 6, hist)
        b.addi(1, 1, 4)
        b.blt(1, 3, "inner")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory,
            {"elements": self.elements, "buckets": self.buckets},
        )


class CopyWorkload(Workload):
    """Word-wise memcpy between two large buffers."""

    suite = "MM"

    def __init__(
        self, name: str = "copy", seed: int = 1, elements: int = 8192,
    ) -> None:
        super().__init__(name, seed)
        self.elements = elements

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 13)
        src = allocator.alloc_array(self.elements, 4)
        dst = allocator.alloc_array(self.elements, 4)
        _fill_array(memory, src, self.elements, rng)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.elements * 4)
        b.label("inner")
        b.ld(5, 1, src)
        b.st(5, 1, dst)
        b.addi(1, 1, 4)
        b.blt(1, 3, "inner")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"elements": self.elements})


class GatherWorkload(Workload):
    """dst[i] = src[perm[i]]: a stride index stream feeding a gather.

    The gather loads have data-dependent, effectively random addresses —
    the image-dependent access half of real multimedia kernels that keeps
    the paper's MM prediction rates below the pure-stride ceiling.
    """

    suite = "MM"

    def __init__(
        self, name: str = "gather", seed: int = 1, elements: int = 4096,
    ) -> None:
        super().__init__(name, seed)
        self.elements = elements

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 19)
        src = allocator.alloc_array(self.elements, 4)
        dst = allocator.alloc_array(self.elements, 4)
        perm = allocator.alloc_array(self.elements, 4)
        _fill_array(memory, src, self.elements, rng)
        indices = list(range(self.elements))
        rng.shuffle(indices)
        for i, idx in enumerate(indices):
            memory.poke(perm + 4 * i, idx * 4)  # pre-scaled byte offsets

        b = ProgramBuilder(self.name)
        b.label("main")
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.elements * 4)
        b.label("inner")
        b.ld(5, 1, perm)        # index  (stride)
        b.ld(6, 5, src)         # gather (data-dependent)
        b.st(6, 1, dst)
        b.addi(1, 1, 4)
        b.blt(1, 3, "inner")
        b.jmp("outer")
        return BuiltWorkload(b.build(), memory, {"elements": self.elements})


class MatMulWorkload(Workload):
    """Dense n x n integer matrix multiply.

    The ``b[k][j]`` stream has a large constant stride (one row), ``a[i][k]``
    a unit stride, and ``c[i][j]`` a unit-stride store — three regular
    streams at three scales.
    """

    suite = "MM"

    def __init__(self, name: str = "matmul", seed: int = 1, n: int = 24) -> None:
        super().__init__(name, seed)
        if n < 1:
            raise ValueError("matrix dimension must be positive")
        self.n = n

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 17)
        n = self.n
        a = allocator.alloc_array(n * n, 4)
        bm = allocator.alloc_array(n * n, 4)
        c = allocator.alloc_array(n * n, 4)
        _fill_array(memory, a, n * n, rng, bound=16)
        _fill_array(memory, bm, n * n, rng, bound=16)

        n4 = 4 * n
        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(12, n)                 # loop bound
        b.label("big")
        b.li(8, 0)                  # i
        b.label("i_loop")
        b.li(9, 0)                  # j
        b.label("j_loop")
        b.li(10, 0)                 # k
        b.li(2, 0)                  # acc
        b.muli(11, 8, n4)           # a/c row byte offset
        b.label("k_loop")
        b.muli(4, 10, 4)
        b.add(5, 11, 4)
        b.ld(6, 5, a)               # a[i][k]
        b.muli(4, 10, n4)
        b.muli(5, 9, 4)
        b.add(4, 4, 5)
        b.ld(7, 4, bm)              # b[k][j]
        b.mul(6, 6, 7)
        b.add(2, 2, 6)
        b.addi(10, 10, 1)
        b.blt(10, 12, "k_loop")
        b.muli(4, 9, 4)
        b.add(4, 11, 4)
        b.st(2, 4, c)               # c[i][j]
        b.addi(9, 9, 1)
        b.blt(9, 12, "j_loop")
        b.addi(8, 8, 1)
        b.blt(8, 12, "i_loop")
        b.jmp("big")
        return BuiltWorkload(b.build(), memory, {"n": n})
