"""Binary-tree RDS workload: recursive traversal with real call/ret stack.

Nodes (``val``/``left``/``right``) are heap-allocated with a shuffled
layout, so the visit order produces a short recurring address sequence that
defeats stride prediction while the recursion exercises return-address and
spilled-register stack loads — the full Section 2.1 pattern mix.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["BinaryTreeWorkload"]

OFF_VAL = 0
OFF_LEFT = 4
OFF_RIGHT = 8
NODE_SIZE = 16


class BinaryTreeWorkload(Workload):
    """Repeated depth-first (in-order) traversal of a random BST."""

    suite = "INT"

    def __init__(
        self,
        name: str = "tree",
        seed: int = 1,
        nodes: int = 24,
        policy: str = "shuffled",
    ) -> None:
        super().__init__(name, seed)
        if nodes < 1:
            raise ValueError("tree needs at least one node")
        self.nodes = nodes
        self.policy = policy

    def _build_tree(self, memory: Memory) -> int:
        """Insert shuffled keys into a BST; returns the root address."""
        allocator = self.allocator(memory, policy=self.policy)
        rng = random.Random(self.seed + 41)
        keys = list(range(self.nodes))
        rng.shuffle(keys)

        addrs: List[int] = []
        lefts: List[Optional[int]] = []
        rights: List[Optional[int]] = []
        vals: List[int] = []

        for key in keys:
            addr = allocator.alloc(NODE_SIZE)
            addrs.append(addr)
            lefts.append(None)
            rights.append(None)
            vals.append(key)

        # BST insertion over node indices.
        for i in range(1, len(keys)):
            j = 0
            while True:
                if vals[i] < vals[j]:
                    if lefts[j] is None:
                        lefts[j] = i
                        break
                    j = lefts[j]
                else:
                    if rights[j] is None:
                        rights[j] = i
                        break
                    j = rights[j]

        for i, addr in enumerate(addrs):
            memory.poke(addr + OFF_VAL, vals[i])
            left = lefts[i]
            right = rights[i]
            memory.poke(addr + OFF_LEFT, addrs[left] if left is not None else 0)
            memory.poke(addr + OFF_RIGHT, addrs[right] if right is not None else 0)
        return addrs[0]

    def build(self) -> BuiltWorkload:
        memory = Memory()
        root = self._build_tree(memory)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, root)
        b.call("traverse")
        b.jmp("outer")

        # traverse(r1 = node): in-order visit accumulating into r2.
        b.label("traverse")
        b.bne(1, 0, "t_go")
        b.ret()
        b.label("t_go")
        b.push(1)                       # spill the node pointer
        b.ld(1, 1, OFF_LEFT)
        b.call("traverse")
        b.pop(1)                        # reload node (stack load)
        b.push(1)
        b.ld(7, 1, OFF_VAL)             # visit
        b.add(2, 2, 7)
        b.ld(1, 1, OFF_RIGHT)
        b.call("traverse")
        b.pop(1)
        b.ret()

        return BuiltWorkload(b.build(), memory, {"nodes": self.nodes})
