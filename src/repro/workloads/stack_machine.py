"""JAVA-suite workload: unoptimised JIT-compiled stack-machine code.

The paper attributes the JAVA traces' unusually high speedups to "the
stack-based model and short procedures used in JAVA bytecode, and to the
lack of optimizations performed by JAVA JIT compilers" — i.e. every
bytecode operand round-trips through memory.  This workload generates many
short "methods" whose bodies are straight-line compilations of random
bytecode: each ``iconst``/``iload``/``iadd``/``istore`` becomes explicit
operand-stack and locals-frame memory traffic, so the trace is dominated
by highly regular stack loads issued from a large number of static load
sites.
"""

from __future__ import annotations

import random

from ..isa.instructions import SP
from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["JavaJITWorkload"]


class JavaJITWorkload(Workload):
    """Call a chain of short, memory-heavy compiled methods in a loop."""

    suite = "JAV"

    def __init__(
        self,
        name: str = "javajit",
        seed: int = 1,
        methods: int = 24,
        ops_per_method: int = 24,
        locals_per_method: int = 6,
    ) -> None:
        super().__init__(name, seed)
        if methods < 1 or ops_per_method < 1 or locals_per_method < 1:
            raise ValueError("all sizing parameters must be positive")
        self.methods = methods
        self.ops_per_method = ops_per_method
        self.locals_per_method = locals_per_method

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 97)

        # A per-method operand-stack region (the "expression stack").
        opstack_base = allocator.alloc_array(64, 4)
        frame_bytes = 4 * self.locals_per_method

        # A small ring of heap objects for getfield ops: a global slot
        # holds the current receiver, advanced once per outer iteration.
        # Field loads are therefore stride-hostile but context-friendly.
        objects = [allocator.alloc(16) for _ in range(6)]
        for i, obj in enumerate(objects):
            memory.poke(obj + 4, rng.randrange(100))          # field a
            memory.poke(obj + 8, rng.randrange(100))          # field b
            memory.poke(obj + 12, objects[(i + 1) % len(objects)])  # next
        receiver_slot = 0x1000_0900
        memory.poke(receiver_slot, objects[0])

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        for m in range(self.methods):
            b.call(f"method_{m}")
        # Advance the receiver ring.
        b.ld(12, 0, receiver_slot)
        b.ld(12, 12, 12)                  # receiver = receiver.next
        b.st(12, 0, receiver_slot)
        b.jmp("outer")

        for m in range(self.methods):
            b.label(f"method_{m}")
            # Prologue: carve a locals frame below the return address.
            b.addi(SP, SP, -frame_bytes)
            # Initialise locals from the method's own static data.
            for slot in range(self.locals_per_method):
                b.li(4, rng.randrange(100))
                b.st(4, SP, 4 * slot)
            # r10 = operand-stack pointer (empty).
            b.li(10, opstack_base)
            depth = 0  # statically tracked operand-stack depth

            def push_reg(reg: int) -> None:
                nonlocal depth
                b.st(reg, 10, 0)
                b.addi(10, 10, 4)
                depth += 1

            def pop_reg(reg: int) -> None:
                nonlocal depth
                b.addi(10, 10, -4)
                b.ld(reg, 10, 0)
                depth -= 1

            for _ in range(self.ops_per_method):
                # Keep the stack shallow and never let it underflow.
                if depth < 2:
                    op = rng.choice(("iconst", "iload", "getfield"))
                else:
                    op = rng.choice(
                        ("iconst", "iload", "iadd", "istore", "iadd",
                         "getfield")
                    )
                if op == "iconst":
                    b.li(4, rng.randrange(64))
                    push_reg(4)
                elif op == "iload":
                    slot = rng.randrange(self.locals_per_method)
                    b.ld(4, SP, 4 * slot)
                    push_reg(4)
                elif op == "getfield":
                    # Receiver from the global slot, then a field whose
                    # address rotates with the receiver ring.
                    b.ld(4, 0, receiver_slot)
                    b.ld(4, 4, 4 if rng.random() < 0.5 else 8)
                    push_reg(4)
                elif op == "iadd":
                    pop_reg(4)
                    pop_reg(5)
                    b.add(4, 4, 5)
                    push_reg(4)
                else:  # istore
                    slot = rng.randrange(self.locals_per_method)
                    pop_reg(4)
                    b.st(4, SP, 4 * slot)
            # Drain the operand stack into the checksum.
            while depth > 0:
                pop_reg(4)
                b.add(2, 2, 4)
            # Epilogue.
            b.addi(SP, SP, frame_bytes)
            b.ret()

        return BuiltWorkload(
            b.build(), memory,
            {"methods": self.methods, "ops_per_method": self.ops_per_method},
        )
