"""TPC-suite workloads: index lookups, table scans, and hash joins.

Database kernels mix three address behaviours the predictors must share a
Load Buffer over: binary-search probes (data-dependent but recurring with
the query sequence), wide-stride row scans, and pointer-chased overflow
chains.  The paper's TPC traces show the *lowest* prediction rates due to
LB contention, which these workloads reproduce through their large static
load counts and irregular streams.
"""

from __future__ import annotations

import random

from ..common.bitops import is_power_of_two
from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["BTreeLookupWorkload", "TableScanWorkload", "HashJoinWorkload"]


class BTreeLookupWorkload(Workload):
    """Binary search over a sorted key array, then record fetches."""

    suite = "TPC"

    #: Record layout: key, payload0, payload1, payload2 (16 bytes).
    REC_SIZE = 16

    def __init__(
        self,
        name: str = "btree",
        seed: int = 1,
        keys: int = 1024,
        queries: int = 64,
    ) -> None:
        super().__init__(name, seed)
        if not is_power_of_two(keys):
            raise ValueError("keys must be a power of two")
        self.keys = keys
        self.queries = queries

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 101)

        key_base = allocator.alloc_array(self.keys, 4)
        rec_base = allocator.alloc_array(self.keys, self.REC_SIZE)
        query_base = allocator.alloc_array(self.queries, 4)

        # Sorted, distinct keys (value = 3*i + 7 keeps them strictly rising).
        for i in range(self.keys):
            key = 3 * i + 7
            memory.poke(key_base + 4 * i, key)
            memory.poke(rec_base + self.REC_SIZE * i + 4, key * 2)
            memory.poke(rec_base + self.REC_SIZE * i + 8, rng.randrange(100))
            memory.poke(rec_base + self.REC_SIZE * i + 12, rng.randrange(100))
        # The recurring query sequence (all present keys).
        for q in range(self.queries):
            memory.poke(query_base + 4 * q, 3 * rng.randrange(self.keys) + 7)

        # Index metadata globals (root pointer, key count) — loaded per
        # query exactly as a real index probe reads its descriptor.
        g_root = 0x1000_0500
        g_count = 0x1000_0504
        memory.poke(g_root, key_base)
        memory.poke(g_count, self.keys)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, 0)                         # query cursor (bytes)
        b.li(3, self.queries * 4)
        b.label("qloop")
        b.ld(4, 1, query_base)             # query key (stride)
        b.ld(14, 0, g_root)                # index descriptor (constant)
        b.ld(6, 0, g_count)                # key count (constant)
        b.li(5, 0)                         # lo
        b.label("bsearch")
        b.bge(5, 6, "qnext")               # not found (never for our data)
        b.add(7, 5, 6)
        b.li(8, 1)
        b.shr(7, 7, 8)                     # mid = (lo + hi) >> 1
        b.muli(9, 7, 4)
        b.ld(10, 9, key_base)              # probe (data-dependent, recurring)
        b.beq(10, 4, "found")
        b.blt(10, 4, "go_right")
        b.mov(6, 7)                        # hi = mid
        b.jmp("bsearch")
        b.label("go_right")
        b.addi(5, 7, 1)                    # lo = mid + 1
        b.jmp("bsearch")
        b.label("found")
        b.muli(9, 7, self.REC_SIZE)
        b.ld(11, 9, rec_base + 4)          # record fields
        b.ld(12, 9, rec_base + 8)
        b.ld(13, 9, rec_base + 12)
        b.add(2, 2, 11)
        b.add(2, 2, 12)
        b.add(2, 2, 13)
        b.label("qnext")
        b.addi(1, 1, 4)
        b.blt(1, 3, "qloop")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory, {"keys": self.keys, "queries": self.queries},
        )


class TableScanWorkload(Workload):
    """Scan wide rows with a selective filter and dimension-table hops."""

    suite = "TPC"

    ROW_SIZE = 32

    def __init__(
        self,
        name: str = "scan",
        seed: int = 1,
        rows: int = 2048,
        dim_rows: int = 128,
    ) -> None:
        super().__init__(name, seed)
        self.rows = rows
        self.dim_rows = dim_rows

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 103)

        row_base = allocator.alloc_array(self.rows, self.ROW_SIZE)
        dim_base = allocator.alloc_array(self.dim_rows, 8)

        for d in range(self.dim_rows):
            memory.poke(dim_base + 8 * d, rng.randrange(50))
        for r in range(self.rows):
            row = row_base + self.ROW_SIZE * r
            memory.poke(row + 0, rng.randrange(4))       # filter column
            memory.poke(row + 4, rng.randrange(1000))    # measure
            # Foreign key: byte offset of a dimension row.
            memory.poke(row + 8, 8 * rng.randrange(self.dim_rows))
            memory.poke(row + 12, rng.randrange(1000))

        # Schema descriptor global, read per row (constant address).
        g_schema = 0x1000_0600
        memory.poke(g_schema, self.ROW_SIZE)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.rows * self.ROW_SIZE)
        b.label("row")
        b.ld(14, 0, g_schema)              # schema descriptor (constant)
        b.ld(4, 1, row_base)               # filter column (stride 32)
        b.bne(4, 0, "skip")                # ~75% of rows skipped
        b.ld(5, 1, row_base + 4)           # measure
        b.ld(6, 1, row_base + 8)           # foreign key
        b.ld(7, 6, dim_base)               # dimension hop (data-dependent)
        b.add(2, 2, 5)
        b.add(2, 2, 7)
        b.label("skip")
        b.addi(1, 1, self.ROW_SIZE)
        b.blt(1, 3, "row")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory, {"rows": self.rows, "dim_rows": self.dim_rows},
        )


class HashJoinWorkload(Workload):
    """Probe-side of a hash join: stride scan feeding hashed chain walks."""

    suite = "TPC"

    NODE_SIZE = 16

    def __init__(
        self,
        name: str = "join",
        seed: int = 1,
        buckets: int = 256,
        build_rows: int = 384,
        probe_rows: int = 512,
    ) -> None:
        super().__init__(name, seed)
        if not is_power_of_two(buckets):
            raise ValueError("buckets must be a power of two")
        self.buckets = buckets
        self.build_rows = build_rows
        self.probe_rows = probe_rows

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 107)

        bucket_base = allocator.alloc_array(self.buckets, 4)
        probe_base = allocator.alloc_array(self.probe_rows, 8)

        heads = [0] * self.buckets
        build_keys = []
        for _ in range(self.build_rows):
            key = rng.randrange(1, 4096)
            node = allocator.alloc(self.NODE_SIZE)
            slot = key & (self.buckets - 1)
            memory.poke(node + 0, key)
            memory.poke(node + 4, rng.randrange(100))
            memory.poke(node + 8, heads[slot])
            heads[slot] = node
            build_keys.append(key)
        for slot, head in enumerate(heads):
            memory.poke(bucket_base + 4 * slot, head)
        for p in range(self.probe_rows):
            # ~70% of probes hit the build side.
            if rng.random() < 0.7:
                key = rng.choice(build_keys)
            else:
                key = rng.randrange(1, 4096)
            memory.poke(probe_base + 8 * p, key)
            memory.poke(probe_base + 8 * p + 4, rng.randrange(100))

        g_mask = 0x1000_0700
        memory.poke(g_mask, self.buckets - 1)

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.probe_rows * 8)
        b.label("probe")
        b.ld(4, 1, probe_base)             # probe key (stride 8)
        b.ld(5, 1, probe_base + 4)         # probe payload
        b.ld(14, 0, g_mask)                # hash descriptor (constant)
        b.and_(6, 4, 14)
        b.muli(6, 6, 4)
        b.ld(7, 6, bucket_base)            # bucket head
        b.label("chain")
        b.beq(7, 0, "pnext")
        b.ld(8, 7, 0)                      # node key
        b.bne(8, 4, "miss")
        b.ld(9, 7, 4)                      # matched payload
        b.add(2, 2, 9)
        b.add(2, 2, 5)
        b.label("miss")
        b.ld(7, 7, 8)                      # next node
        b.jmp("chain")
        b.label("pnext")
        b.addi(1, 1, 8)
        b.blt(1, 3, "probe")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory,
            {"buckets": self.buckets, "build_rows": self.build_rows,
             "probe_rows": self.probe_rows},
        )
