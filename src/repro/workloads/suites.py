"""The 45-trace / 8-suite benchmark roster (paper Section 4.1).

The paper evaluates on 45 proprietary IA-32 traces grouped into eight
suites: SPECint95 (INT, 8), CAD programs (CAD, 2), MMX multimedia (MM, 8),
games (GAM, 4), JAVA programs (JAV, 5), TPC benchmarks (TPC, 3), NT
applications (NT, 8) and Windows-95 applications (W95, 7).  This module
defines a synthetic stand-in for each trace with the suite's characteristic
address-pattern mix (see DESIGN.md for the substitution argument).

Trace lengths default to ``DEFAULT_INSTRUCTIONS`` dynamic instructions
(scaled down from the paper's 30M for a pure-Python pipeline) and can be
scaled with the ``REPRO_TRACE_SCALE`` environment variable.  Generated
traces are cached on disk; a (name, seed, length) triple is fully
deterministic.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..trace.trace import PredictorStream, Trace
from .arrays import (
    ArraySumWorkload,
    CopyWorkload,
    GatherWorkload,
    HistogramWorkload,
    MatMulWorkload,
    SaxpyWorkload,
    StencilWorkload,
)
from .base import Workload, trace_workload
from .binary_tree import BinaryTreeWorkload
from .cad import CircuitWorkload
from .call_patterns import CallPatternWorkload
from .database import BTreeLookupWorkload, HashJoinWorkload, TableScanWorkload
from .desktop import DesktopWorkload
from .extra import (
    MutatingListWorkload,
    QuickSortWorkload,
    RingBufferWorkload,
    SparseMatVecWorkload,
)
from .game import GameWorkload
from .hash_table import HashTableWorkload
from .interpreter import ListEvalWorkload
from .linked_list import (
    DoubleLinkedListWorkload,
    IndexListWorkload,
    LinkedListWorkload,
)
from .random_access import LongChainWorkload, RandomAccessWorkload
from .stack_machine import JavaJITWorkload

__all__ = [
    "SUITES",
    "SUITE_NAMES",
    "DEFAULT_INSTRUCTIONS",
    "trace_names",
    "suite_of",
    "build_workload",
    "get_trace",
    "get_predictor_stream",
    "trace_cache_path",
    "suite_traces",
    "all_traces",
    "default_instructions",
]

#: Baseline dynamic-instruction budget per trace (paper: 30M).
DEFAULT_INSTRUCTIONS = 200_000

SUITE_NAMES = ("CAD", "GAM", "INT", "JAV", "MM", "NT", "TPC", "W95")


def _mk(factory: Callable[[str, int], Workload], suite: str):
    """Wrap a factory so the built workload carries the right suite label."""

    def build(name: str, seed: int) -> Workload:
        workload = factory(name, seed)
        workload.suite = suite
        return workload

    return build


#: suite -> ordered list of (trace_name, builder) pairs.
SUITES: Dict[str, List[tuple]] = {
    "INT": [
        ("INT_cmp", _mk(lambda n, s: LinkedListWorkload(
            n, s, length=40, via_global_ptr=True), "INT")),
        ("INT_gcc", _mk(lambda n, s: CircuitWorkload(
            n, s, gates=256, gate_types=16, wheel_len=160), "INT")),
        ("INT_go", _mk(lambda n, s: IndexListWorkload(
            n, s, length=28, capacity=128), "INT")),
        ("INT_ijpeg", _mk(lambda n, s: ArraySumWorkload(
            n, s, elements=2048, stride_words=2), "INT")),
        ("INT_m88", _mk(lambda n, s: JavaJITWorkload(
            n, s, methods=10, ops_per_method=14), "INT")),
        ("INT_prl", _mk(lambda n, s: HashTableWorkload(
            n, s, buckets=128, items=192, probes=64), "INT")),
        ("INT_vtx", _mk(lambda n, s: BinaryTreeWorkload(
            n, s, nodes=48), "INT")),
        ("INT_xli", _mk(lambda n, s: ListEvalWorkload(
            n, s, elements=20, sublist_len=6), "INT")),
    ],
    "CAD": [
        ("CAD_cat", _mk(lambda n, s: CircuitWorkload(
            n, s, gates=160, gate_types=24, wheel_len=96,
            max_fanout=2), "CAD")),
        ("CAD_mic", _mk(lambda n, s: CircuitWorkload(
            n, s, gates=224, gate_types=32, wheel_len=128,
            max_fanout=3), "CAD")),
    ],
    "MM": [
        ("MM_aud", _mk(lambda n, s: ArraySumWorkload(
            n, s, elements=8192), "MM")),
        ("MM_fir", _mk(lambda n, s: StencilWorkload(
            n, s, elements=4096), "MM")),
        ("MM_hst", _mk(lambda n, s: HistogramWorkload(
            n, s, elements=4096, buckets=128), "MM")),
        ("MM_img", _mk(lambda n, s: CopyWorkload(
            n, s, elements=16384), "MM")),
        ("MM_mat", _mk(lambda n, s: MatMulWorkload(n, s, n=32), "MM")),
        ("MM_mpa", _mk(lambda n, s: SaxpyWorkload(
            n, s, elements=8192), "MM")),
        ("MM_mpg", _mk(lambda n, s: GatherWorkload(
            n, s, elements=4096), "MM")),
        ("MM_mpv", _mk(lambda n, s: StencilWorkload(
            n, s, elements=12288), "MM")),
    ],
    "GAM": [
        ("GAM_duk", _mk(lambda n, s: GameWorkload(
            n, s, entities=24, entity_types=4, particles=384), "GAM")),
        ("GAM_fal", _mk(lambda n, s: GameWorkload(
            n, s, entities=48, entity_types=6, particles=512), "GAM")),
        ("GAM_mec", _mk(lambda n, s: GameWorkload(
            n, s, entities=64, entity_types=5, particles=256), "GAM")),
        ("GAM_quk", _mk(lambda n, s: GameWorkload(
            n, s, entities=32, entity_types=3, particles=768,
            lut_size=512), "GAM")),
    ],
    "JAV": [
        ("JAV_3dg", _mk(lambda n, s: JavaJITWorkload(
            n, s, methods=20, ops_per_method=24), "JAV")),
        ("JAV_aud", _mk(lambda n, s: JavaJITWorkload(
            n, s, methods=28, ops_per_method=20), "JAV")),
        ("JAV_cfc", _mk(lambda n, s: JavaJITWorkload(
            n, s, methods=36, ops_per_method=28,
            locals_per_method=8), "JAV")),
        ("JAV_cwc", _mk(lambda n, s: JavaJITWorkload(
            n, s, methods=44, ops_per_method=24), "JAV")),
        ("JAV_cws", _mk(lambda n, s: JavaJITWorkload(
            n, s, methods=52, ops_per_method=18,
            locals_per_method=4), "JAV")),
    ],
    "TPC": [
        ("TPC_23", _mk(lambda n, s: BTreeLookupWorkload(
            n, s, keys=512, queries=64), "TPC")),
        ("TPC_33", _mk(lambda n, s: HashJoinWorkload(
            n, s, buckets=256, build_rows=384, probe_rows=384), "TPC")),
        ("TPC_b", _mk(lambda n, s: TableScanWorkload(
            n, s, rows=384, dim_rows=64), "TPC")),
    ],
    "NT": [
        ("NT_cdw", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=96, loads_per_handler=14, queue_len=120), "NT")),
        ("NT_exl", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=128, loads_per_handler=16, queue_len=160), "NT")),
        ("NT_frl", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=160, loads_per_handler=12, queue_len=200), "NT")),
        ("NT_pdx", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=192, loads_per_handler=16, queue_len=240), "NT")),
        ("NT_pmk", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=224, loads_per_handler=14, queue_len=280), "NT")),
        ("NT_pwp", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=256, loads_per_handler=12, queue_len=320), "NT")),
        ("NT_wdp", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=192, loads_per_handler=20, queue_len=240), "NT")),
        ("NT_wwd", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=128, loads_per_handler=24, queue_len=160), "NT")),
    ],
    "W95": [
        ("W95_cdw", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=288, loads_per_handler=16, queue_len=360), "W95")),
        ("W95_exl", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=320, loads_per_handler=14, queue_len=400), "W95")),
        ("W95_frl", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=352, loads_per_handler=12, queue_len=440), "W95")),
        ("W95_prx", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=384, loads_per_handler=14, queue_len=480), "W95")),
        ("W95_pwp", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=320, loads_per_handler=18, queue_len=400), "W95")),
        ("W95_wdp", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=256, loads_per_handler=20, queue_len=320), "W95")),
        ("W95_wwd", _mk(lambda n, s: DesktopWorkload(
            n, s, handlers=288, loads_per_handler=22, queue_len=360), "W95")),
    ],
}

# Deterministic per-trace seeds (stable across sessions).
_SEEDS: Dict[str, int] = {}
for _suite_index, _suite in enumerate(SUITE_NAMES):
    for _trace_index, (_name, _builder) in enumerate(SUITES[_suite]):
        _SEEDS[_name] = 1000 + 100 * _suite_index + _trace_index

_BUILDERS: Dict[str, Callable[[str, int], Workload]] = {
    name: builder for pairs in SUITES.values() for name, builder in pairs
}

#: Extra non-suite workloads used by unit tests and ablations.
EXTRA_WORKLOADS: Dict[str, Callable[[str, int], Workload]] = {
    "X_random": _mk(lambda n, s: RandomAccessWorkload(n, s), "MISC"),
    "X_longchain": _mk(lambda n, s: LongChainWorkload(n, s), "MISC"),
    "X_dlist": _mk(lambda n, s: DoubleLinkedListWorkload(n, s), "MISC"),
    "X_calls": _mk(lambda n, s: CallPatternWorkload(n, s), "MISC"),
    "X_qsort": _mk(lambda n, s: QuickSortWorkload(n, s), "MISC"),
    "X_mutlist": _mk(lambda n, s: MutatingListWorkload(n, s), "MISC"),
    "X_ring": _mk(lambda n, s: RingBufferWorkload(n, s), "MISC"),
    "X_spmv": _mk(lambda n, s: SparseMatVecWorkload(n, s), "MISC"),
}


def default_instructions() -> int:
    """Per-trace instruction budget honouring ``REPRO_TRACE_SCALE``."""
    # Documented CI knob (docs/performance.md): scales trace *length*, never
    # trace *content* — the same seed still generates the same events, so a
    # scaled run is a deterministic prefix of the full one.
    from ..eval.config import trace_scale

    return max(1000, int(DEFAULT_INSTRUCTIONS * trace_scale()))


def trace_names(suite: Optional[str] = None) -> List[str]:
    """All trace names, optionally restricted to one suite."""
    if suite is None:
        return [name for s in SUITE_NAMES for name, _ in SUITES[s]]
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; choose from {SUITE_NAMES}")
    return [name for name, _ in SUITES[suite]]


def suite_of(trace_name: str) -> str:
    """Suite label for a trace name (registry traces included)."""
    for suite in SUITE_NAMES:
        if any(name == trace_name for name, _ in SUITES[suite]):
            return suite
    if trace_name in EXTRA_WORKLOADS:
        return "MISC"
    from . import registry

    label = registry.suite_of(trace_name)
    if label is not None:
        return label
    raise KeyError(f"unknown trace {trace_name!r}")


def build_workload(trace_name: str) -> Workload:
    """Instantiate the workload behind a trace name."""
    if trace_name in _BUILDERS:
        return _BUILDERS[trace_name](trace_name, _SEEDS[trace_name])
    if trace_name in EXTRA_WORKLOADS:
        return EXTRA_WORKLOADS[trace_name](trace_name, 7777)
    raise KeyError(f"unknown trace {trace_name!r}")


#: Bumped whenever the trace schema or workload definitions change in a
#: way that invalidates previously cached traces.  v3 added the persisted
#: columnar predictor-stream arrays.
_CACHE_VERSION = 3


def _cache_dir() -> Path:
    # Documented cache-location knob (CI points it at a tmpfs).  It moves
    # where identical bytes are stored; cache contents are content-addressed
    # by (_CACHE_VERSION, trace, instructions), so results cannot change.
    from ..eval.config import trace_cache_dir

    override = trace_cache_dir()
    if override:
        return Path(override)
    return Path.cwd() / ".trace_cache"


@contextmanager
def _generation_lock(cache_path: Path):
    """Exclusive advisory lock guarding one cache file's first generation.

    Parallel engine workers resolve traces through this cache; without the
    lock, N cold-cache workers would each regenerate the same trace.  With
    it, one worker generates while the rest block and then load the file.
    ``fcntl`` is Linux/macOS only; where it is unavailable the atomic
    rename in :meth:`Trace.save` still keeps concurrent generation safe —
    merely redundant rather than serialised.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = cache_path.with_name(cache_path.name + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def trace_cache_path(
    trace_name: str, instructions: Optional[int] = None
) -> Path:
    """On-disk cache file a (trace, instructions) pair resolves to.

    The file may not exist yet (cold cache).  Exposed so the telemetry
    layer can record cache-file provenance in run manifests without
    duplicating the naming scheme.
    """
    if instructions is None:
        instructions = default_instructions()
    return _cache_dir() / f"{trace_name}_{instructions}_v{_CACHE_VERSION}.npz"


def get_trace(
    trace_name: str,
    instructions: Optional[int] = None,
    use_cache: bool = True,
) -> Trace:
    """Return the trace, generating (and caching) it on first use.

    Safe under concurrent callers (e.g. parallel engine workers hitting a
    cold cache): first generation runs under an exclusive per-file lock and
    the cache write is an atomic rename, so every caller observes either a
    missing file or a complete one.

    Names no synthetic workload claims fall back to the benchmark-set
    registry (ingested external traces, :mod:`repro.workloads.registry`);
    there ``instructions`` caps the record count and ``None`` means the
    whole file, so external traces are never padded or truncated to the
    synthetic default budget.
    """
    if trace_name not in _BUILDERS and trace_name not in EXTRA_WORKLOADS:
        from . import registry

        return registry.get_trace(
            trace_name, instructions, use_cache=use_cache
        )
    if instructions is None:
        instructions = default_instructions()
    cache_path = trace_cache_path(trace_name, instructions)
    if use_cache and cache_path.exists():
        return Trace.load(cache_path)
    if not use_cache:
        workload = build_workload(trace_name)
        return trace_workload(workload, max_instructions=instructions)
    with _generation_lock(cache_path):
        if cache_path.exists():  # another worker generated it while we waited
            return Trace.load(cache_path)
        workload = build_workload(trace_name)
        trace = trace_workload(workload, max_instructions=instructions)
        trace.save(cache_path)
    return trace


def get_predictor_stream(
    trace_name: str,
    instructions: Optional[int] = None,
) -> PredictorStream:
    """Columnar predictor stream for a trace, loaded as cheaply as possible.

    On a warm cache this reads only the four persisted stream arrays from
    the ``.npz`` (skipping the nine full event columns); on a cold cache it
    generates the trace through :func:`get_trace` (locked + atomic) first.
    Registry (ingested) trace names resolve the same way through the
    registry's own cache naming.
    """
    if trace_name not in _BUILDERS and trace_name not in EXTRA_WORKLOADS:
        from . import registry

        return registry.get_predictor_stream(trace_name, instructions)
    if instructions is None:
        instructions = default_instructions()
    cache_path = trace_cache_path(trace_name, instructions)
    if cache_path.exists():
        stream = Trace.load_stream(cache_path)
        if stream is not None:
            return stream
    return get_trace(trace_name, instructions).predictor_columns()


def suite_traces(suite: str, instructions: Optional[int] = None) -> List[Trace]:
    """All traces of one suite (generated or loaded from cache)."""
    return [get_trace(name, instructions) for name in trace_names(suite)]


def all_traces(instructions: Optional[int] = None) -> List[Trace]:
    """All 45 traces in suite order."""
    return [get_trace(name, instructions) for name in trace_names()]
