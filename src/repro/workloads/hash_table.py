"""Chained hash-table workload.

A fixed, recurring key sequence probes a bucket array and walks short
collision chains.  The key fetches are stride loads; the bucket-head and
chain loads are data-dependent — unpredictable to stride but recurring, so
a context predictor can learn them.  Section 3.3 explicitly calls out hash
tables as an LT-aliasing hazard for the base-address scheme, which this
workload reproduces.
"""

from __future__ import annotations

import random

from ..common.bitops import is_power_of_two
from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["HashTableWorkload"]

# Chain node layout.
OFF_KEY = 0
OFF_VAL = 4
OFF_NEXT = 8
NODE_SIZE = 16


class HashTableWorkload(Workload):
    """Probe a chained hash table with a recurring key sequence."""

    suite = "INT"

    def __init__(
        self,
        name: str = "hash",
        seed: int = 1,
        buckets: int = 64,
        items: int = 96,
        probes: int = 48,
    ) -> None:
        super().__init__(name, seed)
        if not is_power_of_two(buckets):
            raise ValueError("buckets must be a power of two")
        if items < 1 or probes < 1:
            raise ValueError("items and probes must be positive")
        self.buckets = buckets
        self.items = items
        self.probes = probes

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 61)

        bucket_base = allocator.alloc_array(self.buckets, 4)
        keys_base = allocator.alloc_array(self.probes, 4)

        # Insert items (distinct keys) into chains.
        inserted: list[int] = []
        heads = [0] * self.buckets
        key_space = list(range(1, self.items * 8))
        rng.shuffle(key_space)
        for key in key_space[: self.items]:
            node = allocator.alloc(NODE_SIZE)
            slot = key & (self.buckets - 1)
            memory.poke(node + OFF_KEY, key)
            memory.poke(node + OFF_VAL, rng.randrange(1000))
            memory.poke(node + OFF_NEXT, heads[slot])
            heads[slot] = node
            inserted.append(key)
        for slot, head in enumerate(heads):
            memory.poke(bucket_base + 4 * slot, head)

        # The recurring probe sequence (all hits).
        for i in range(self.probes):
            memory.poke(keys_base + 4 * i, rng.choice(inserted))

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("outer")
        b.li(1, 0)
        b.li(3, self.probes * 4)
        b.label("kloop")
        b.ld(4, 1, keys_base)            # key       (stride)
        b.andi(5, 4, self.buckets - 1)
        b.muli(5, 5, 4)
        b.ld(6, 5, bucket_base)          # head      (data-dependent, recurring)
        b.label("chain")
        b.beq(6, 0, "done")
        b.ld(7, 6, OFF_KEY)              # node key  (RDS-like)
        b.beq(7, 4, "found")
        b.ld(6, 6, OFF_NEXT)             # next      (RDS-like)
        b.jmp("chain")
        b.label("found")
        b.ld(8, 6, OFF_VAL)
        b.add(2, 2, 8)
        b.label("done")
        b.addi(1, 1, 4)
        b.blt(1, 3, "kloop")
        b.jmp("outer")
        return BuiltWorkload(
            b.build(), memory,
            {"buckets": self.buckets, "items": self.items,
             "probes": self.probes},
        )
