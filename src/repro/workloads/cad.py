"""CAD-suite workload: event-driven gate-level circuit simulation.

A netlist of gates is evaluated off an event wheel: gate records are
fetched by (data-dependent) index, each gate walks its fanout chain (RDS)
to schedule successors, and a delay lookup table is sampled per gate type.
Many distinct gate-evaluation routines give the suite its large static
load population (the paper's CAD traces gain steadily from bigger LBs).
"""

from __future__ import annotations

import random

from ..isa.memory import Memory
from ..isa.program import ProgramBuilder
from .base import BuiltWorkload, Workload

__all__ = ["CircuitWorkload"]

# Gate record layout: type, state, fanout-head, delay-class.
OFF_TYPE = 0
OFF_STATE = 4
OFF_FANOUT = 8
OFF_DELAY = 12
GATE_SIZE = 16

# Fanout node: target gate index, next.
FAN_TARGET = 0
FAN_NEXT = 8
FAN_SIZE = 16


class CircuitWorkload(Workload):
    """Evaluate gates off a circular event wheel."""

    suite = "CAD"

    def __init__(
        self,
        name: str = "circuit",
        seed: int = 1,
        gates: int = 256,
        gate_types: int = 12,
        wheel_len: int = 128,
        max_fanout: int = 3,
    ) -> None:
        super().__init__(name, seed)
        if gates < 2 or gate_types < 1 or wheel_len < 1:
            raise ValueError("bad circuit parameters")
        self.gates = gates
        self.gate_types = gate_types
        self.wheel_len = wheel_len
        self.max_fanout = max_fanout

    def _emit_dispatch(self, b: ProgramBuilder, lo: int, hi: int) -> None:
        if lo == hi:
            b.call(f"gate_{lo}")
            b.jmp("g_next")
            return
        mid = (lo + hi) // 2
        right = f"gd_{mid + 1}_{hi}"
        b.li(5, mid + 1)
        b.bge(4, 5, right)
        self._emit_dispatch(b, lo, mid)
        b.label(right)
        self._emit_dispatch(b, mid + 1, hi)

    def build(self) -> BuiltWorkload:
        memory = Memory()
        allocator = self.allocator(memory)
        rng = random.Random(self.seed + 227)

        gate_base = allocator.alloc_array(self.gates, GATE_SIZE)
        wheel_base = allocator.alloc_array(self.wheel_len, 4)
        delay_lut = allocator.alloc_array(16, 4)
        for i in range(16):
            memory.poke(delay_lut + 4 * i, 1 + (i * 7) % 13)

        # Gates with fanout chains of heap nodes.
        for g in range(self.gates):
            rec = gate_base + GATE_SIZE * g
            memory.poke(rec + OFF_TYPE, rng.randrange(self.gate_types))
            memory.poke(rec + OFF_STATE, rng.randrange(2))
            memory.poke(rec + OFF_DELAY, rng.randrange(16))
            head = 0
            for _ in range(rng.randrange(1, self.max_fanout + 1)):
                node = allocator.alloc(FAN_SIZE)
                memory.poke(node + FAN_TARGET, rng.randrange(self.gates))
                memory.poke(node + FAN_NEXT, head)
                head = node
            memory.poke(rec + OFF_FANOUT, head)

        # The event wheel holds gate indices (a recurring activity pattern).
        for i in range(self.wheel_len):
            memory.poke(wheel_base + 4 * i, rng.randrange(self.gates))

        # Per-gate activity counters, swept linearly every tick (the
        # waveform/statistics pass every event-driven simulator has).
        activity_base = allocator.alloc_array(self.gates, 4)
        g_time = 0x1000_0800  # simulation clock global

        b = ProgramBuilder(self.name)
        b.label("main")
        b.li(2, 0)
        b.label("tick")
        # --- statistics sweep (stride) ---------------------------------
        b.li(1, 0)
        b.li(3, self.gates * 4)
        b.label("stat")
        b.ld(5, 1, activity_base)
        b.add(2, 2, 5)
        b.addi(1, 1, 4)
        b.blt(1, 3, "stat")
        # --- event evaluation pass --------------------------------------
        b.li(1, 0)
        b.li(3, self.wheel_len * 4)
        b.label("slot")
        b.ld(14, 0, g_time)                # simulation clock (constant)
        b.ld(4, 1, wheel_base)             # active gate index
        b.muli(6, 4, GATE_SIZE)
        b.ld(7, 6, gate_base + OFF_STATE)  # gate state (data-dependent)
        b.ld(4, 6, gate_base + OFF_TYPE)   # gate type
        b.mov(9, 6)                        # r9 = gate record offset
        self._emit_dispatch(b, 0, self.gate_types - 1)
        b.label("g_next")
        b.addi(1, 1, 4)
        b.blt(1, 3, "slot")
        b.jmp("tick")

        for t in range(self.gate_types):
            b.label(f"gate_{t}")
            # Per-type evaluation: distinct static loads per gate type.
            b.ld(10, 9, gate_base + OFF_DELAY)
            b.muli(10, 10, 4)
            b.ld(11, 10, delay_lut)        # delay sample
            b.add(2, 2, 11)
            # Walk the fanout chain (RDS).
            b.ld(12, 9, gate_base + OFF_FANOUT)
            b.label(f"fan_{t}")
            b.beq(12, 0, f"gdone_{t}")
            b.ld(13, 12, FAN_TARGET)
            b.add(2, 2, 13)
            b.ld(12, 12, FAN_NEXT)
            b.jmp(f"fan_{t}")
            b.label(f"gdone_{t}")
            b.ret()

        return BuiltWorkload(
            b.build(), memory,
            {"gates": self.gates, "gate_types": self.gate_types,
             "wheel_len": self.wheel_len},
        )
