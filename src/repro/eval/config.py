"""Typed runtime configuration: the single env-knob resolution point.

Every runtime knob the harness honours — worker count, kernel backend,
telemetry switches, trace-cache location and scale — resolves **here**
and nowhere else, with one precedence rule everywhere::

    defaults  <  environment variables  <  explicit CLI flags

:class:`RunConfig` is the typed carrier of a resolved configuration.
Process boundaries still use the environment as transport (pool workers
and subprocesses inherit it), so :func:`apply` exports a config back into
``os.environ`` after CLI flags have been folded in; workers then rebuild
the identical config with :func:`from_env`.

The lint R002 determinism rule allowlists exactly this module for
environment reads: any other ``os.environ`` consultation inside
``src/repro`` is a finding.  Callers that need one knob without holding a
:class:`RunConfig` use the module-level accessors (:func:`resolve_jobs`,
:func:`resolve_backend`, :func:`telemetry_enabled`, ...), which re-read
the environment on every call — cheap, and it keeps tests that flip
``monkeypatch.setenv`` mid-session honest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, MutableMapping, Optional

from ..kernels.api import BACKEND_NUMPY, BACKEND_PYTHON, available_backends

__all__ = [
    "ENV_BACKEND",
    "ENV_JOBS",
    "ENV_PROFILE",
    "ENV_REGISTRY",
    "ENV_TELEMETRY",
    "ENV_TELEMETRY_DIR",
    "ENV_TRACE_CACHE",
    "ENV_TRACE_SCALE",
    "RunConfig",
    "apply",
    "from_args",
    "from_env",
    "profile_enabled",
    "registry_manifest",
    "resolve_backend",
    "resolve_jobs",
    "telemetry_dir",
    "telemetry_enabled",
    "trace_cache_dir",
    "trace_scale",
]

ENV_JOBS = "REPRO_JOBS"
ENV_BACKEND = "REPRO_BACKEND"
ENV_TELEMETRY = "REPRO_TELEMETRY"
ENV_TELEMETRY_DIR = "REPRO_TELEMETRY_DIR"
ENV_PROFILE = "REPRO_TELEMETRY_PROFILE"
ENV_TRACE_CACHE = "REPRO_TRACE_CACHE"
ENV_TRACE_SCALE = "REPRO_TRACE_SCALE"
ENV_REGISTRY = "REPRO_REGISTRY"

#: Values accepted as "on" for boolean knobs.
_TRUTHY = ("1", "true", "on")

#: Default telemetry output directory (relative to the working directory).
DEFAULT_TELEMETRY_DIR = "telemetry"


@dataclass(frozen=True)
class RunConfig:
    """One resolved runtime configuration.

    ``None`` fields mean "not pinned": :meth:`resolved_jobs` and
    :meth:`resolved_backend` fill them with the dynamic defaults (CPU
    count, feature-detected backend) at the point of use, so a config can
    be stored, shipped across a process boundary and resolved late.
    """

    jobs: Optional[int] = None
    backend: Optional[str] = None
    telemetry: bool = False
    telemetry_dir: Optional[str] = None
    profile: bool = False
    trace_cache: Optional[str] = None
    trace_scale: Optional[float] = None
    registry: Optional[str] = None

    # -- late resolution -----------------------------------------------------

    def resolved_jobs(self) -> int:
        """Effective worker count (>= 1)."""
        workers = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        return workers

    def resolved_backend(self) -> str:
        """Effective kernel backend name (validated)."""
        choice = (self.backend or "").strip().lower()
        if not choice:
            return (
                BACKEND_NUMPY
                if len(available_backends()) > 1
                else BACKEND_PYTHON
            )
        if choice not in (BACKEND_PYTHON, BACKEND_NUMPY):
            raise ValueError(
                f"unknown backend {choice!r} (expected"
                f" {BACKEND_PYTHON!r} or {BACKEND_NUMPY!r})"
            )
        if choice == BACKEND_NUMPY and len(available_backends()) == 1:
            raise RuntimeError(
                "numpy backend requested but numpy is unavailable"
            )
        return choice

    def resolved_telemetry_dir(self) -> Path:
        """Manifest output directory."""
        return Path(self.telemetry_dir or DEFAULT_TELEMETRY_DIR)

    def resolved_trace_scale(self) -> float:
        """Trace-length scale factor (> 0)."""
        scale = 1.0 if self.trace_scale is None else self.trace_scale
        if scale <= 0:
            raise ValueError(f"{ENV_TRACE_SCALE} must be positive")
        return scale

    def with_overrides(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields replaced (``None`` = keep)."""
        kept = {k: v for k, v in changes.items() if v is not None}
        return replace(self, **kept) if kept else self


# ---------------------------------------------------------------------------
# Resolution: defaults < env < CLI flags
# ---------------------------------------------------------------------------

def _parse_int(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def _parse_float(name: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def from_env(environ: Optional[Mapping[str, str]] = None) -> RunConfig:
    """Build a config from environment variables over the defaults."""
    env = os.environ if environ is None else environ
    jobs_raw = env.get(ENV_JOBS, "").strip()
    backend_raw = env.get(ENV_BACKEND, "").strip()
    dir_raw = env.get(ENV_TELEMETRY_DIR, "").strip()
    cache_raw = env.get(ENV_TRACE_CACHE, "")
    scale_raw = env.get(ENV_TRACE_SCALE, "").strip()
    return RunConfig(
        jobs=_parse_int(ENV_JOBS, jobs_raw) if jobs_raw else None,
        backend=backend_raw.lower() or None,
        telemetry=env.get(ENV_TELEMETRY, "").strip() in _TRUTHY,
        telemetry_dir=dir_raw or None,
        profile=env.get(ENV_PROFILE, "").strip() in _TRUTHY,
        trace_cache=cache_raw or None,
        trace_scale=(
            _parse_float(ENV_TRACE_SCALE, scale_raw) if scale_raw else None
        ),
        registry=env.get(ENV_REGISTRY, "") or None,
    )


def from_args(
    args: Any = None, environ: Optional[Mapping[str, str]] = None
) -> RunConfig:
    """Resolve a config from CLI arguments over the environment.

    ``args`` is any object exposing (a subset of) ``jobs``, ``backend``,
    ``telemetry`` and ``telemetry_dir`` attributes — an argparse namespace
    in practice.  Missing or ``None`` attributes leave the environment
    value in force.
    """
    config = from_env(environ)
    if args is None:
        return config
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise ValueError(f"--jobs must be >= 1, got {jobs}")
    telemetry = getattr(args, "telemetry", None)
    return config.with_overrides(
        jobs=jobs,
        backend=getattr(args, "backend", None),
        telemetry=telemetry if telemetry else None,
        telemetry_dir=getattr(args, "telemetry_dir", None),
        registry=getattr(args, "registry", None),
    )


def apply(
    config: RunConfig,
    environ: Optional[MutableMapping[str, str]] = None,
) -> RunConfig:
    """Export ``config`` into the environment (the transport layer).

    Pool workers and measured subprocesses inherit ``os.environ``, so
    after folding CLI flags in, the resolved knobs are written back out.
    Only pinned fields are exported — unpinned ones stay resolvable to
    their dynamic defaults on the far side.  Returns ``config`` so call
    sites can resolve and apply in one expression.
    """
    env = os.environ if environ is None else environ
    if config.jobs is not None:
        env[ENV_JOBS] = str(config.jobs)
    if config.backend is not None:
        env[ENV_BACKEND] = config.backend
    if config.telemetry:
        env[ENV_TELEMETRY] = "1"
    if config.telemetry_dir is not None:
        env[ENV_TELEMETRY_DIR] = config.telemetry_dir
    if config.profile:
        env[ENV_PROFILE] = "1"
    if config.trace_cache is not None:
        env[ENV_TRACE_CACHE] = config.trace_cache
    if config.trace_scale is not None:
        env[ENV_TRACE_SCALE] = repr(config.trace_scale)
    if config.registry is not None:
        env[ENV_REGISTRY] = config.registry
    return config


# ---------------------------------------------------------------------------
# Module-level accessors (re-read the environment per call)
# ---------------------------------------------------------------------------

def resolve_jobs(explicit: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else CPUs."""
    if explicit is not None:
        return RunConfig(jobs=int(explicit)).resolved_jobs()
    return from_env().resolved_jobs()


def resolve_backend(override: Optional[str] = None) -> str:
    """Effective backend name.

    Precedence: explicit ``override`` argument, then the ``REPRO_BACKEND``
    environment variable, then feature detection (numpy when importable).
    Unknown names raise rather than silently degrade — a forced backend is
    a correctness assertion in CI.
    """
    if override:
        return RunConfig(backend=override).resolved_backend()
    return from_env().resolved_backend()


def telemetry_enabled() -> bool:
    """Whether run telemetry is switched on (``REPRO_TELEMETRY=1``)."""
    return from_env().telemetry


def telemetry_dir() -> Path:
    """Manifest directory: ``REPRO_TELEMETRY_DIR``, default ``telemetry/``."""
    return from_env().resolved_telemetry_dir()


def profile_enabled() -> bool:
    """Whether profiling is requested (``REPRO_TELEMETRY_PROFILE=1``)."""
    return from_env().profile


def trace_cache_dir() -> Optional[str]:
    """Trace-cache directory override (``REPRO_TRACE_CACHE``), or None."""
    return from_env().trace_cache


def trace_scale() -> float:
    """Trace-length scale factor (``REPRO_TRACE_SCALE``, default 1.0)."""
    return from_env().resolved_trace_scale()


def registry_manifest() -> Optional[str]:
    """Benchmark-set registry manifest path (``REPRO_REGISTRY``), or None.

    ``None`` means "use the checked-in default if present" — resolution
    of that default lives in :mod:`repro.workloads.registry`, which owns
    the manifest format; this accessor only transports the knob.
    """
    return from_env().registry
