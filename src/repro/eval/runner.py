"""Drive a predictor over a trace and collect metrics.

The runner walks the trace's predictor stream (loads, branches, calls,
returns in program order), calls ``predict``/``update`` for every dynamic
load and maintains the correctness bookkeeping.  With the default
immediate-update predictors this reproduces the Section 4 machine model;
wrapping the predictor in :class:`repro.pipeline.PipelinedPredictor` gives
the Section 5 model without changing this runner.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from ..kernels import try_run_batch
from ..predictors.base import AddressPredictor
from ..trace.trace import PredictorStream, Trace
from .metrics import AttributionCounters, PredictorMetrics

__all__ = ["run_predictor", "run_on_stream", "run_on_columns"]


def run_on_stream(
    predictor: AddressPredictor,
    stream: Iterable[tuple],
    metrics: PredictorMetrics,
    warmup_loads: int = 0,
    observer: Optional[Callable] = None,
) -> PredictorMetrics:
    """Evaluate ``predictor`` over a predictor stream.

    ``stream`` items follow :meth:`repro.trace.Trace.predictor_stream`:
    ``(1, ip, addr, offset)`` loads, ``(0, ip, taken, 0)`` branches,
    ``(2, ip, 0, 0)`` calls, ``(3, ip, 0, 0)`` returns.

    ``warmup_loads`` loads at the start train the predictor without being
    counted (the paper's 30M-instruction traces amortise warm-up; short
    synthetic traces may not).

    ``observer`` (when given) is called as ``observer(ip, offset, actual,
    prediction)`` for every dynamic load, between prediction and table
    update — the hook the differential verification harness uses to diff
    per-access behaviour across evaluation paths.
    """
    predict = predictor.predict
    update = predictor.update
    on_branch = predictor.on_branch
    on_call = predictor.on_call
    on_return = predictor.on_return
    seen_loads = 0
    metrics.backend = "python"

    for tag, ip, a, b in stream:
        if tag == 1:
            prediction = predict(ip, b)
            if observer is not None:
                observer(ip, b, a, prediction)
            seen_loads += 1
            if seen_loads > warmup_loads:
                metrics.record(
                    made=prediction.made,
                    speculative=prediction.speculative,
                    correct=prediction.address == a,
                )
            update(ip, b, a, prediction)
        elif tag == 0:
            on_branch(ip, bool(a))
        elif tag == 2:
            on_call(ip)
        else:
            on_return(ip)
    return metrics


def run_on_columns(
    predictor: AddressPredictor,
    stream: PredictorStream,
    metrics: PredictorMetrics,
    warmup_loads: int = 0,
    observer: Optional[Callable] = None,
) -> PredictorMetrics:
    """Columnar fast path: evaluate over a :class:`PredictorStream`.

    Dispatches to the batch kernels (:mod:`repro.kernels`) when the
    predictor advertises ``supports_batch`` and the resolved backend is
    ``numpy``; otherwise runs the scalar reference loop.  The scalar loop
    is semantically identical to :func:`run_on_stream`, with two wins over
    iterating a tuple list: ``zip`` over the four parallel columns lets
    CPython recycle the event tuple every iteration instead of keeping one
    4-tuple per event alive, and the correctness counters accumulate in
    locals (folded into ``metrics`` once at the end) instead of paying a
    method call per dynamic load.  ``metrics.backend`` records which path
    actually ran.
    """
    if try_run_batch(predictor, stream, metrics, warmup_loads, observer):
        return metrics
    predict = predictor.predict
    update = predictor.update
    on_branch = predictor.on_branch
    on_call = predictor.on_call
    on_return = predictor.on_return
    seen_loads = 0
    loads = predictions = correct_predictions = 0
    speculative = correct_speculative = 0
    metrics.backend = "python"

    for tag, ip, a, b in zip(*stream.lists()):
        if tag == 1:
            prediction = predict(ip, b)
            if observer is not None:
                observer(ip, b, a, prediction)
            seen_loads += 1
            if seen_loads > warmup_loads:
                loads += 1
                correct = prediction.address == a
                if prediction.made:
                    predictions += 1
                    if correct:
                        correct_predictions += 1
                if prediction.speculative:
                    speculative += 1
                    if correct:
                        correct_speculative += 1
            update(ip, b, a, prediction)
        elif tag == 0:
            on_branch(ip, bool(a))
        elif tag == 2:
            on_call(ip)
        else:
            on_return(ip)

    metrics.loads += loads
    metrics.predictions += predictions
    metrics.correct_predictions += correct_predictions
    metrics.speculative += speculative
    metrics.correct_speculative += correct_speculative
    return metrics


def run_predictor(
    predictor: AddressPredictor,
    trace: Union[Trace, PredictorStream, list],
    name: Optional[str] = None,
    warmup_loads: int = 0,
    instrument: bool = False,
) -> PredictorMetrics:
    """Evaluate ``predictor`` on ``trace`` and return fresh metrics.

    ``trace`` may be a :class:`Trace` (evaluated through its columnar
    stream), a :class:`PredictorStream`, or an already-extracted list of
    stream tuples (useful when evaluating many predictors over one trace).

    With ``instrument=True`` an attribution probe is attached to the
    predictor tree and the result is an
    :class:`~repro.eval.metrics.AttributionCounters` carrying the
    per-component misprediction-cause breakdown.
    """
    trace_name = ""
    suite = ""
    if isinstance(trace, Trace):
        stream: Union[PredictorStream, list] = trace.predictor_columns()
        trace_name = trace.name
        suite = trace.meta.get("suite", "")
    else:
        stream = trace
    metrics: PredictorMetrics
    probe = None
    if instrument:
        # Imported here: the runner itself stays telemetry-free for the
        # (overwhelmingly common) uninstrumented path.
        from ..telemetry.instrumentation import (
            AttributionProbe,
            instrument_predictor,
        )

        probe = AttributionProbe()
        instrument_predictor(predictor, probe)
        metrics = AttributionCounters(
            name=name or predictor.name, trace=trace_name, suite=suite,
        )
    else:
        metrics = PredictorMetrics(
            name=name or predictor.name, trace=trace_name, suite=suite,
        )
    if isinstance(stream, PredictorStream):
        run_on_columns(predictor, stream, metrics, warmup_loads)
    else:
        run_on_stream(predictor, stream, metrics, warmup_loads)
    if probe is not None:
        assert isinstance(metrics, AttributionCounters)
        metrics.absorb_probe(probe)
    return metrics
