"""Drive a predictor over a trace and collect metrics.

.. deprecated:: PR 7
   The evaluation loops live in :mod:`repro.serve.session`, behind the
   sessionized :class:`~repro.serve.session.PredictorSession` facade
   (``session.feed(events)`` → predictions, ``session.finish()`` →
   metrics).  The functions here are thin delegating shims kept so
   existing drivers, figures and tests import from their historical
   home; new code should construct a session (stateful, incremental) or
   call the :mod:`repro.serve.session` loops directly (one-shot).

The contract is unchanged: the runner walks the trace's predictor stream
(loads, branches, calls, returns in program order), calls
``predict``/``update`` for every dynamic load and maintains the
correctness bookkeeping.  With the default immediate-update predictors
this reproduces the Section 4 machine model; wrapping the predictor in
:class:`repro.pipeline.PipelinedPredictor` gives the Section 5 model
without changing the loops.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Optional, Set, Union

from ..predictors.base import AddressPredictor
from ..trace.trace import PredictorStream, Trace
from .metrics import PredictorMetrics

__all__ = ["run_predictor", "run_on_stream", "run_on_columns"]

#: Shim names that already warned this process — each deprecated entry
#: point announces itself once, not once per evaluated trace.
_WARNED: Set[str] = set()


def _warn_deprecated(name: str) -> None:
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"repro.eval.runner.{name} is deprecated; use"
        f" repro.serve.session.{name} (or a PredictorSession)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_on_stream(
    predictor: AddressPredictor,
    stream: Iterable[tuple],
    metrics: PredictorMetrics,
    warmup_loads: int = 0,
    observer: Optional[Callable] = None,
) -> PredictorMetrics:
    """Shim for :func:`repro.serve.session.run_on_stream` (see above)."""
    from ..serve.session import run_on_stream as impl

    _warn_deprecated("run_on_stream")
    return impl(predictor, stream, metrics, warmup_loads, observer)


def run_on_columns(
    predictor: AddressPredictor,
    stream: PredictorStream,
    metrics: PredictorMetrics,
    warmup_loads: int = 0,
    observer: Optional[Callable] = None,
) -> PredictorMetrics:
    """Shim for :func:`repro.serve.session.run_on_columns` (see above)."""
    from ..serve.session import run_on_columns as impl

    _warn_deprecated("run_on_columns")
    return impl(predictor, stream, metrics, warmup_loads, observer)


def run_predictor(
    predictor: AddressPredictor,
    trace: Union[Trace, PredictorStream, list],
    name: Optional[str] = None,
    warmup_loads: int = 0,
    instrument: bool = False,
) -> PredictorMetrics:
    """Shim for :func:`repro.serve.session.run_predictor` (see above)."""
    from ..serve.session import run_predictor as impl

    _warn_deprecated("run_predictor")
    return impl(predictor, trace, name, warmup_loads, instrument)
