"""Experiment drivers: one per figure/table of the paper's evaluation.

Every driver returns a result object carrying both the raw per-trace data
and a ``render()`` that prints the same rows/series the paper's figure
shows.  Drivers accept a ``traces`` list (names) and per-trace instruction
budget so the benchmark harness can trade fidelity for runtime; defaults
reproduce the full 45-trace roster.

Figure map (see DESIGN.md for the full experiment index):

========  ==========================================================
fig5      prediction rate/accuracy of stride, CAP, hybrid per suite
fig6      hybrid vs Load Buffer size/associativity
lt_sweep  hybrid vs Link Table size (Section 4.2 text)
fig7      processor speedup per trace (immediate update)
lt_update_policy  Section 4.3's three LT update policies
fig8      selector state distribution + correct-selection rate
fig9      correct predictions vs history length, +/- global correlation
fig10     LT tags and control-flow indications vs misprediction rate
fig11     prediction rate/accuracy vs prediction gap
fig12     processor speedup at a prediction gap of 8
baselines Section 1's last-address/stride coverage claims
control_based  Section 3.6's g-share / call-path address predictors
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..predictors.cap import CORRELATION_BASE, CORRELATION_REAL, CAPConfig, CAPPredictor
from ..predictors.confidence import CFI_LAST, CFI_OFF
from ..predictors.gshare_address import HISTORY_BRANCH, HISTORY_CALL_PATH
from ..predictors.hybrid import (
    UPDATE_ALWAYS,
    UPDATE_UNLESS_STRIDE_CORRECT,
    UPDATE_UNLESS_STRIDE_SELECTED,
    HybridConfig,
    HybridPredictor,
)
from ..predictors.link_table import LinkTableConfig
from ..predictors.stride import StrideConfig, StridePredictor
from ..timing.machine import MachineConfig
from ..workloads import suites as suite_registry
from .charts import grouped_bar_chart
from .engine import Job, run_jobs
from .metrics import PredictorMetrics, SuiteMetrics, aggregate_by_suite
from .report import format_percent, format_speedup, format_table
from ..serve.session import run_predictor

__all__ = [
    "fig5",
    "fig6",
    "lt_sweep",
    "fig7",
    "lt_update_policy",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "baselines",
    "control_based",
    "value_vs_address",
    "quick_trace_set",
]

SUITE_ORDER = ("CAD", "GAM", "INT", "JAV", "MM", "NT", "TPC", "W95", "Average")


def quick_trace_set() -> List[str]:
    """A reduced roster: the first two traces of every suite."""
    names: List[str] = []
    for suite in suite_registry.SUITE_NAMES:
        names.extend(suite_registry.trace_names(suite)[:2])
    return names


def _resolve_traces(traces: Optional[Iterable[str]]) -> List[str]:
    return list(traces) if traces is not None else suite_registry.trace_names()


# ---------------------------------------------------------------------------
# Predictor factories (paper baseline configurations)
# ---------------------------------------------------------------------------

def make_enhanced_stride(**overrides) -> StridePredictor:
    """The paper's enhanced stride predictor (CFI + interval)."""
    return StridePredictor(StrideConfig(**overrides))

def make_basic_stride(**overrides) -> StridePredictor:
    """Prior-art two-delta stride predictor."""
    return StridePredictor(StrideConfig.basic(**overrides))

def make_cap(**overrides) -> CAPPredictor:
    """Stand-alone CAP with the Section 4.2 baseline tables."""
    return CAPPredictor(CAPConfig(**overrides))

def make_hybrid(**overrides) -> HybridPredictor:
    """Hybrid CAP/enhanced-stride with the dynamic selector."""
    return HybridPredictor(HybridConfig(**overrides))


# ---------------------------------------------------------------------------
# Engine variant specs
# ---------------------------------------------------------------------------

#: (engine factory name, config overrides, prediction gap or None).
VariantSpec = Tuple[str, Dict[str, Any], Optional[int]]


def _spec(
    factory: str, gap: Optional[int] = None, **overrides: Any
) -> VariantSpec:
    """Shorthand for one predictor-variant spec of an experiment grid."""
    return (factory, overrides, gap)


def _grid_jobs(
    trace_names: List[str],
    variants: Dict[str, VariantSpec],
    instructions: Optional[int],
    warmup_fraction: float = 0.0,
    capture_selector: bool = False,
) -> List[Job]:
    """Jobs for a (trace x variant) grid, trace-outer for cache locality."""
    return [
        Job(
            trace=name,
            factory=factory,
            overrides=overrides,
            instructions=instructions,
            warmup_fraction=warmup_fraction,
            gap=gap,
            capture_selector=capture_selector,
            variant=variant,
        )
        for name in trace_names
        for variant, (factory, overrides, gap) in variants.items()
    ]


# ---------------------------------------------------------------------------
# Generic per-suite comparison result
# ---------------------------------------------------------------------------

@dataclass
class SuiteComparison:
    """Per-suite rates/accuracies for several predictor variants."""

    title: str
    variants: List[str]
    #: variant -> suite -> SuiteMetrics
    suites: Dict[str, Dict[str, SuiteMetrics]] = field(default_factory=dict)
    #: variant -> per-trace metrics (for drill-down)
    runs: Dict[str, List[PredictorMetrics]] = field(default_factory=dict)

    def suite_row(self, suite: str) -> List[str]:
        cells: List[str] = [suite]
        for variant in self.variants:
            combined = self.suites[variant][suite].combined
            cells.append(format_percent(combined.prediction_rate))
            cells.append(format_percent(combined.accuracy, 2))
        return cells

    def average(self, variant: str) -> PredictorMetrics:
        """Combined counters over every trace for one variant."""
        return self.suites[variant]["Average"].combined

    def suite_labels(self) -> List[str]:
        """Row order: the paper's suites first, then any extras, then Average.

        Registry (ingested) traces carry suite labels outside the paper's
        eight (``EXT`` by default); they are appended in sorted order so
        external benchmarks render instead of silently vanishing from the
        tables.
        """
        present = self.suites[self.variants[0]]
        labels = [
            suite for suite in SUITE_ORDER
            if suite != "Average" and suite in present
        ]
        labels.extend(sorted(
            suite for suite in present
            if suite not in SUITE_ORDER
        ))
        labels.append("Average")
        return labels

    def render(self) -> str:
        headers = ["suite"]
        for variant in self.variants:
            headers += [f"{variant} rate", f"{variant} acc"]
        rows = [self.suite_row(suite) for suite in self.suite_labels()]
        return format_table(headers, rows, title=self.title)

    def render_chart(self, width: int = 40) -> str:
        """The same data as grouped bars, like the paper's figure."""
        labels = self.suite_labels()
        series = {
            variant: [
                self.suites[variant][suite].combined.prediction_rate
                for suite in labels
            ]
            for variant in self.variants
        }
        return grouped_bar_chart(labels, series, width=width, title=self.title)


def _compare(
    title: str,
    variants: Dict[str, VariantSpec],
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    warmup_fraction: float = 0.0,
) -> SuiteComparison:
    trace_names = _resolve_traces(traces)
    result = SuiteComparison(title=title, variants=list(variants))
    jobs = _grid_jobs(trace_names, variants, instructions, warmup_fraction)
    runs: Dict[str, List[PredictorMetrics]] = {v: [] for v in variants}
    for job_result in run_jobs(jobs):
        runs[job_result.variant].append(job_result.metrics)
    result.runs = runs
    result.suites = {
        variant: aggregate_by_suite(metrics_list, name=variant)
        for variant, metrics_list in runs.items()
    }
    return result


# ---------------------------------------------------------------------------
# Figure 5 — stride vs CAP vs hybrid, per suite
# ---------------------------------------------------------------------------

def fig5(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> SuiteComparison:
    """Prediction performance of the different predictors (Figure 5)."""
    return _compare(
        "Figure 5: prediction rate and accuracy per suite",
        {
            "stride": _spec("stride"),
            "cap": _spec("cap"),
            "hybrid": _spec("hybrid"),
        },
        traces,
        instructions,
    )


# ---------------------------------------------------------------------------
# Figure 6 — hybrid vs LB geometry
# ---------------------------------------------------------------------------

def fig6(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    geometries: Optional[List[Tuple[int, int]]] = None,
) -> SuiteComparison:
    """Hybrid prediction rate vs LB entries/associativity (Figure 6)."""
    geometries = geometries or [
        (2048, 2), (4096, 1), (4096, 2), (4096, 4), (8192, 2),
    ]
    variants = {
        f"{entries // 1024}K,{ways}way": _spec(
            "hybrid", lb_entries=entries, lb_ways=ways
        )
        for entries, ways in geometries
    }
    return _compare(
        "Figure 6: hybrid prediction rate vs Load Buffer geometry",
        variants, traces, instructions,
    )


# ---------------------------------------------------------------------------
# Section 4.2 text — LT size sweep
# ---------------------------------------------------------------------------

def lt_sweep(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    sizes: Optional[List[int]] = None,
) -> SuiteComparison:
    """Hybrid prediction rate vs Link Table size (Section 4.2 text)."""
    sizes = sizes or [1024, 2048, 4096, 8192]
    variants = {
        f"LT {size // 1024}K": _spec(
            "hybrid", cap=CAPConfig(lt=LinkTableConfig(entries=size))
        )
        for size in sizes
    }
    return _compare(
        "Section 4.2: hybrid prediction rate vs Link Table size",
        variants, traces, instructions,
    )


# ---------------------------------------------------------------------------
# Figure 7 / Figure 12 — processor speedups
# ---------------------------------------------------------------------------

@dataclass
class SpeedupResult:
    """Per-trace speedups of address-predicting configurations."""

    title: str
    variants: List[str]
    #: trace -> {variant: speedup}
    per_trace: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: trace -> suite
    suite_of: Dict[str, str] = field(default_factory=dict)
    #: trace -> baseline cycles
    base_cycles: Dict[str, int] = field(default_factory=dict)

    def suite_average(self, variant: str) -> Dict[str, float]:
        """Cycle-weighted per-suite speedup (plus overall 'Average')."""
        base: Dict[str, int] = {}
        improved: Dict[str, float] = {}
        for trace, per_variant in self.per_trace.items():
            for bucket in (self.suite_of[trace], "Average"):
                base[bucket] = base.get(bucket, 0) + self.base_cycles[trace]
                improved[bucket] = improved.get(bucket, 0.0) + (
                    self.base_cycles[trace] / per_variant[variant]
                )
        return {
            bucket: base[bucket] / improved[bucket] for bucket in base
        }

    def render(self) -> str:
        headers = ["trace"] + list(self.variants)
        rows = []
        for trace in self.per_trace:
            rows.append(
                [trace]
                + [format_speedup(self.per_trace[trace][v]) for v in self.variants]
            )
        for variant in self.variants:
            averages = self.suite_average(variant)
            rows.append(
                [f"Average ({variant})"]
                + [
                    format_speedup(averages["Average"]) if v == variant else "-"
                    for v in self.variants
                ]
            )
        return format_table(headers, rows, title=self.title)


_BASELINE = "__baseline__"


def _speedups(
    title: str,
    variants: Dict[str, VariantSpec],
    traces: Optional[Iterable[str]],
    instructions: Optional[int],
    machine: Optional[MachineConfig] = None,
) -> SpeedupResult:
    trace_names = _resolve_traces(traces)
    result = SpeedupResult(title=title, variants=list(variants))
    jobs: List[Job] = []
    for name in trace_names:
        jobs.append(Job(
            trace=name, instructions=instructions, kind="timing",
            machine=machine, variant=_BASELINE,
        ))
        for variant, (factory, overrides, gap) in variants.items():
            jobs.append(Job(
                trace=name, factory=factory, overrides=overrides,
                instructions=instructions, gap=gap, kind="timing",
                machine=machine, variant=variant,
            ))
    base_cycles: Dict[str, int] = {}
    for job_result in run_jobs(jobs):
        name = job_result.trace
        if job_result.variant == _BASELINE:
            base_cycles[name] = job_result.cycles
            result.base_cycles[name] = job_result.cycles
            result.suite_of[name] = job_result.suite
            result.per_trace[name] = {}
        else:
            # The baseline job precedes its variants in job order.
            result.per_trace[name][job_result.variant] = (
                base_cycles[name] / job_result.cycles
            )
    return result


def fig7(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    machine: Optional[MachineConfig] = None,
) -> SpeedupResult:
    """Relative performance of stride and hybrid predictors (Figure 7)."""
    return _speedups(
        "Figure 7: speedup over no address prediction (immediate update)",
        {
            "stride": _spec("stride"),
            "hybrid": _spec("hybrid"),
        },
        traces, instructions, machine,
    )


def fig12(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    gap: int = 8,
    machine: Optional[MachineConfig] = None,
) -> SpeedupResult:
    """Speedups with a realistic prediction gap (Figure 12)."""
    return _speedups(
        f"Figure 12: speedup at prediction gap {gap} vs immediate",
        {
            "stride imm": _spec("stride"),
            f"stride g{gap}": _spec("stride", gap=gap),
            "hybrid imm": _spec("hybrid"),
            f"hybrid g{gap}": _spec("hybrid", gap=gap),
        },
        traces, instructions, machine,
    )


# ---------------------------------------------------------------------------
# Section 4.3 — LT update policies
# ---------------------------------------------------------------------------

def lt_update_policy(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> SuiteComparison:
    """The three LT update policies of Section 4.3."""
    return _compare(
        "Section 4.3: Link Table update policies (hybrid)",
        {
            "always": _spec("hybrid", lt_update_policy=UPDATE_ALWAYS),
            "unless stride ok": _spec(
                "hybrid", lt_update_policy=UPDATE_UNLESS_STRIDE_CORRECT
            ),
            "unless selected": _spec(
                "hybrid", lt_update_policy=UPDATE_UNLESS_STRIDE_SELECTED
            ),
        },
        traces, instructions,
    )


# ---------------------------------------------------------------------------
# Figure 8 — selector behaviour
# ---------------------------------------------------------------------------

@dataclass
class SelectorResult:
    """Selector counter-state distribution and selection quality."""

    title: str
    #: suite -> {state name: fraction}
    distributions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: suite -> correct-selection rate
    correct_selection: Dict[str, float] = field(default_factory=dict)
    #: suite -> share of speculative accesses predicted by both components
    dual_share: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        states = ["strong stride", "weak stride", "weak cap", "strong cap"]
        headers = ["suite"] + states + ["correct sel", "dual share"]
        rows = []
        for suite in SUITE_ORDER:
            if suite not in self.distributions:
                continue
            dist = self.distributions[suite]
            rows.append(
                [suite]
                + [format_percent(dist.get(s, 0.0)) for s in states]
                + [
                    format_percent(self.correct_selection[suite], 2),
                    format_percent(self.dual_share[suite]),
                ]
            )
        return format_table(headers, rows, title=self.title)


def fig8(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> SelectorResult:
    """Selector performance of the hybrid predictor (Figure 8)."""
    trace_names = _resolve_traces(traces)
    result = SelectorResult(title="Figure 8: hybrid selector performance")
    per_suite: Dict[str, List] = {}
    jobs = _grid_jobs(
        trace_names, {"hybrid": _spec("hybrid")}, instructions,
        capture_selector=True,
    )
    for job_result in run_jobs(jobs):
        per_suite.setdefault(job_result.suite, []).append(
            job_result.selector_stats
        )
        per_suite.setdefault("Average", []).append(job_result.selector_stats)
    for suite, stats_list in per_suite.items():
        counts: Dict[str, int] = {}
        sel_hits = sel_total = dual = spec = 0
        for stats in stats_list:
            for state, count in stats.states.counts.items():
                counts[state] = counts.get(state, 0) + count
            sel_hits += stats.selection.hits
            sel_total += stats.selection.total
            dual += stats.dual_speculative
            spec += stats.speculative
        total = sum(counts.values()) or 1
        result.distributions[suite] = {
            state: count / total for state, count in counts.items()
        }
        result.correct_selection[suite] = sel_hits / sel_total if sel_total else 0.0
        result.dual_share[suite] = dual / spec if spec else 0.0
    return result


# ---------------------------------------------------------------------------
# Figure 9 — history length and global correlation
# ---------------------------------------------------------------------------

@dataclass
class HistoryLengthResult:
    """Correct predictions vs history length, with/without correlation."""

    title: str
    lengths: List[int]
    #: correlation label -> [correct rate per length]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def best_length(self, label: str) -> int:
        values = self.series[label]
        return self.lengths[values.index(max(values))]

    def render(self) -> str:
        headers = ["history length"] + [str(n) for n in self.lengths]
        rows = [
            [label] + [format_percent(v) for v in values]
            for label, values in self.series.items()
        ]
        return format_table(headers, rows, title=self.title)

    def render_chart(self, width: int = 40) -> str:
        """Correct-prediction bars per history length."""
        labels = [str(n) for n in self.lengths]
        return grouped_bar_chart(
            labels, dict(self.series), width=width, title=self.title,
        )


def fig9(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    lengths: Optional[List[int]] = None,
) -> HistoryLengthResult:
    """Correct predictions vs history length (Figure 9).

    Per the paper, no confidence mechanism is used here: the metric is
    correct predictions out of all dynamic loads, with LT tags and CFI
    disabled, isolating the influence of global correlation.
    """
    lengths = lengths or [1, 2, 3, 4, 6, 12]
    trace_names = _resolve_traces(traces)
    result = HistoryLengthResult(
        title="Figure 9: correct predictions vs history length",
        lengths=lengths,
    )
    modes = {
        "global correlation": CORRELATION_BASE,
        "no global correlation": CORRELATION_REAL,
    }
    variants = {
        f"{label}|{n}": _spec(
            "cap",
            correlation=mode,
            history_length=n,
            cfi_mode=CFI_OFF,
            lt=LinkTableConfig(tag_bits=0),
        )
        for label, mode in modes.items()
        for n in lengths
    }
    totals = {
        (label, n): PredictorMetrics() for label in modes for n in lengths
    }
    for job_result in run_jobs(_grid_jobs(trace_names, variants, instructions)):
        label, n = job_result.variant.rsplit("|", 1)
        totals[(label, int(n))].add(job_result.metrics)
    for label in modes:
        result.series[label] = [
            totals[(label, n)].correct_predictions / totals[(label, n)].loads
            if totals[(label, n)].loads else 0.0
            for n in lengths
        ]
    return result


# ---------------------------------------------------------------------------
# Figure 10 — LT tags and control-flow indications
# ---------------------------------------------------------------------------

@dataclass
class ConfidenceResult:
    """Prediction/misprediction rates per confidence configuration."""

    title: str
    configs: List[str]
    prediction_rate: Dict[str, float] = field(default_factory=dict)
    misprediction_rate: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["confidence", "prediction rate", "misprediction rate"]
        rows = [
            [
                cfg,
                format_percent(self.prediction_rate[cfg]),
                format_percent(self.misprediction_rate[cfg], 2),
            ]
            for cfg in self.configs
        ]
        return format_table(headers, rows, title=self.title)


def fig10(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> ConfidenceResult:
    """Influence of LT tags and path information on CAP (Figure 10)."""
    configs: Dict[str, VariantSpec] = {
        "no tag": _spec(
            "cap", cfi_mode=CFI_OFF, lt=LinkTableConfig(tag_bits=0)
        ),
        "4-bit tag": _spec(
            "cap", cfi_mode=CFI_OFF, lt=LinkTableConfig(tag_bits=4)
        ),
        "8-bit tag": _spec(
            "cap", cfi_mode=CFI_OFF, lt=LinkTableConfig(tag_bits=8)
        ),
        "4-bit tag + path": _spec(
            "cap", cfi_mode=CFI_LAST, lt=LinkTableConfig(tag_bits=4)
        ),
        "8-bit tag + path": _spec(
            "cap", cfi_mode=CFI_LAST, lt=LinkTableConfig(tag_bits=8)
        ),
    }
    trace_names = _resolve_traces(traces)
    result = ConfidenceResult(
        title="Figure 10: LT tags / CFI vs CAP performance",
        configs=list(configs),
    )
    totals = {cfg: PredictorMetrics() for cfg in configs}
    for job_result in run_jobs(_grid_jobs(trace_names, configs, instructions)):
        totals[job_result.variant].add(job_result.metrics)
    for cfg, metrics in totals.items():
        result.prediction_rate[cfg] = metrics.prediction_rate
        result.misprediction_rate[cfg] = metrics.misprediction_rate
    return result


# ---------------------------------------------------------------------------
# Figure 11 — prediction gap sweep
# ---------------------------------------------------------------------------

@dataclass
class GapResult:
    """Prediction rate/accuracy vs prediction gap."""

    title: str
    gaps: List[int]
    #: variant -> gap -> (rate, accuracy, correct_rate)
    series: Dict[str, Dict[int, Tuple[float, float, float]]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        headers = ["variant"]
        for gap in self.gaps:
            label = "imm" if gap == 0 else f"gap {gap}"
            headers += [f"{label} rate", f"{label} acc"]
        rows = []
        for variant, per_gap in self.series.items():
            row = [variant]
            for gap in self.gaps:
                rate, acc, _ = per_gap[gap]
                row += [format_percent(rate), format_percent(acc, 2)]
            rows.append(row)
        return format_table(headers, rows, title=self.title)

    def render_chart(self, width: int = 40) -> str:
        """Prediction-rate bars per gap, one series per predictor."""
        labels = ["imm" if g == 0 else f"gap {g}" for g in self.gaps]
        series = {
            variant: [per_gap[g][0] for g in self.gaps]
            for variant, per_gap in self.series.items()
        }
        return grouped_bar_chart(labels, series, width=width, title=self.title)


def fig11(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    gaps: Optional[List[int]] = None,
) -> GapResult:
    """Influence of the prediction gap on the predictors (Figure 11)."""
    gaps = gaps or [0, 4, 8, 12]
    trace_names = _resolve_traces(traces)
    result = GapResult(
        title="Figure 11: prediction gap influence", gaps=gaps,
    )
    variants = ("stride", "hybrid")
    grid = {
        f"{variant}|{gap}": _spec(variant, gap=gap)
        for variant in variants
        for gap in gaps
    }
    totals = {(v, g): PredictorMetrics() for v in variants for g in gaps}
    for job_result in run_jobs(_grid_jobs(trace_names, grid, instructions)):
        variant, gap = job_result.variant.rsplit("|", 1)
        totals[(variant, int(gap))].add(job_result.metrics)
    for variant in variants:
        result.series[variant] = {}
        for gap in gaps:
            metrics = totals[(variant, gap)]
            result.series[variant][gap] = (
                metrics.prediction_rate,
                metrics.accuracy,
                metrics.correct_rate,
            )
    return result


# ---------------------------------------------------------------------------
# Section 1 claims and Section 3.6 control-based predictors
# ---------------------------------------------------------------------------

def baselines(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> SuiteComparison:
    """Last-address vs stride coverage (Section 1's 40% / +13% claims)."""
    return _compare(
        "Section 1: last-address and stride baselines",
        {
            "last": _spec("last_address"),
            "basic stride": _spec("basic_stride"),
            "enh stride": _spec("stride"),
        },
        traces, instructions,
    )


def control_based(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> SuiteComparison:
    """Section 3.6: control-based address predictors vs CAP."""
    return _compare(
        "Section 3.6: control-based address predictors",
        {
            "gshare": _spec("gshare", history_mode=HISTORY_BRANCH),
            "call-path": _spec("gshare", history_mode=HISTORY_CALL_PATH),
            "cap": _spec("cap"),
        },
        traces, instructions,
    )


# ---------------------------------------------------------------------------
# Section 1: address prediction vs load-value prediction
# ---------------------------------------------------------------------------

@dataclass
class ValueVsAddressResult:
    """Predictability of load values vs load addresses."""

    title: str
    #: variant -> (prediction_rate, accuracy, ceiling)
    rows: Dict[str, Tuple[float, float, float]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["predictor", "pred rate", "accuracy", "ceiling"]
        table_rows = [
            [
                name,
                format_percent(rate),
                format_percent(acc, 2),
                format_percent(ceiling),
            ]
            for name, (rate, acc, ceiling) in self.rows.items()
        ]
        return format_table(headers, table_rows, title=self.title)


def value_vs_address(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> ValueVsAddressResult:
    """Section 1's claim: load values are less predictable than addresses.

    Runs last-value and stride-value predictors over the loaded *data* and
    the hybrid over the *addresses* of the same traces.  ``ceiling`` is
    the confidence-free correct-prediction share.
    """
    from ..predictors.value_prediction import (
        LastValuePredictor,
        StrideValuePredictor,
        ValueMetrics,
        run_value_predictor,
    )

    trace_names = _resolve_traces(traces)
    value_totals = {
        "last-value": ValueMetrics(),
        "stride-value": ValueMetrics(),
    }
    addr_total = PredictorMetrics(name="hybrid")
    for name in trace_names:
        trace = suite_registry.get_trace(name, instructions)
        pairs = trace.value_stream()
        value_totals["last-value"].add(
            run_value_predictor(LastValuePredictor(), pairs)
        )
        value_totals["stride-value"].add(
            run_value_predictor(StrideValuePredictor(), pairs)
        )
        addr_total.add(run_predictor(make_hybrid(), trace))

    result = ValueVsAddressResult(
        title="Section 1: load-value vs load-address predictability",
    )
    for label, metrics in value_totals.items():
        result.rows[label] = (
            metrics.prediction_rate, metrics.accuracy, metrics.predictability,
        )
    ceiling = (
        addr_total.correct_predictions / addr_total.loads
        if addr_total.loads else 0.0
    )
    result.rows["hybrid (address)"] = (
        addr_total.prediction_rate, addr_total.accuracy, ceiling,
    )
    return result
