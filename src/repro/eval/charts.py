"""ASCII bar charts — terminal renderings of the paper's figures.

The paper's evaluation figures are grouped bar charts; the tables the
experiment drivers print carry the same data, but a bar rendering makes
the *shape* (who wins, by how much, where the crossovers are) visible at
a glance in a terminal.  Used by ``python -m repro run <exp> --chart``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "series_chart"]

#: Fill characters cycled across series in a group.
_FILLS = ("#", "=", "o", "x", "+", "*")


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    formatter: Optional[Callable[[float], str]] = None,
    title: str = "",
) -> str:
    """One horizontal bar per labelled value."""
    return grouped_bar_chart(
        labels=list(values),
        series={"": [values[k] for k in values]},
        width=width,
        formatter=formatter,
        title=title,
    )


def grouped_bar_chart(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 50,
    formatter: Optional[Callable[[float], str]] = None,
    title: str = "",
) -> str:
    """Grouped horizontal bars: one group per label, one bar per series.

    ``series`` maps a series name to one value per label.  Bars scale to
    the global maximum so groups are comparable, exactly like the paper's
    shared y-axes.
    """
    if formatter is None:
        formatter = lambda v: f"{v * 100:.1f}%"  # noqa: E731 - local default
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for"
                f" {len(labels)} labels"
            )
    peak = max(
        (v for values in series.values() for v in values), default=0.0,
    )
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max((len(str(l)) for l in labels), default=0)
    name_width = max((len(n) for n in series), default=0)

    lines = []
    if title:
        lines.append(title)
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            value = values[i]
            bar = _FILLS[j % len(_FILLS)] * max(
                0, round(value * scale)
            )
            group_label = str(label) if j == 0 else ""
            lines.append(
                f"{group_label:<{label_width}}  {name:<{name_width}}"
                f" |{bar} {formatter(value)}"
            )
        if len(series) > 1:
            lines.append("")
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def series_chart(
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 50,
    formatter: Optional[Callable[[float], str]] = None,
    title: str = "",
) -> str:
    """Line-chart stand-in: one bar row per (x, series) point.

    For sweep results (history length, prediction gap) where the paper
    draws lines; the grouped-bar form reads fine for short sweeps.
    """
    return grouped_bar_chart(
        labels=x_labels, series=series, width=width,
        formatter=formatter, title=title,
    )
