"""Plain-text rendering of experiment results.

Every experiment driver returns structured data plus uses these helpers to
print the same rows/series the paper's figures show, so a terminal run of
the benchmark harness reads like the evaluation section.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_percent", "format_speedup"]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def format_speedup(value: float) -> str:
    """Render a speedup ratio."""
    return f"{value:.3f}x"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with a header rule, column-aligned."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        )

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)
