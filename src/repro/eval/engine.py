"""Parallel experiment engine: a declarative job model for the figure suite.

Every grid-shaped experiment in :mod:`repro.eval.experiments` is a cross
product of (predictor variant x trace), optionally wrapped in a pipelined
prediction gap or run through the timing model.  This module turns one
cell of that grid into a picklable :class:`Job` *spec* — predictor factory
name, config overrides, trace name, instruction budget — and executes a
batch of them either fully in-process or across a ``ProcessPoolExecutor``.

Design rules:

* **Jobs are specs, not live objects.**  Workers resolve the trace through
  the on-disk cache in :mod:`repro.workloads.suites` (first generation is
  file-locked and atomically renamed, so cold-cache workers don't race)
  and instantiate the predictor locally from the factory registry.
* **Results merge in job order.**  ``run_jobs`` returns one
  :class:`JobResult` per job, in the order the jobs were given, no matter
  which worker finished first — serial and parallel runs are
  bit-identical.
* **Worker count comes from ``REPRO_JOBS``** (default: CPU count).
  ``REPRO_JOBS=1`` short-circuits to plain in-process execution, so pytest
  and debugging behaviour is exactly the single-process code path.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..pipeline.delayed import PipelinedPredictor
from ..predictors.base import AddressPredictor
from ..predictors.cap import CAPConfig, CAPPredictor
from ..predictors.gshare_address import (
    GShareAddressConfig,
    GShareAddressPredictor,
)
from ..predictors.hybrid import HybridConfig, HybridPredictor, SelectorStats
from ..predictors.last_address import LastAddressConfig, LastAddressPredictor
from ..predictors.stride import StrideConfig, StridePredictor
from ..timing.machine import MachineConfig
from ..timing.ooo import simulate
from ..trace.trace import PredictorStream, Trace
from ..workloads import suites as suite_registry
from .metrics import PredictorMetrics
from .runner import run_on_columns

__all__ = [
    "FACTORIES",
    "Job",
    "JobResult",
    "build_predictor",
    "execute_job",
    "resolve_jobs",
    "run_jobs",
]

KIND_PREDICT = "predict"
KIND_TIMING = "timing"
KIND_VERIFY = "verify"


def _make_stride(**overrides) -> StridePredictor:
    return StridePredictor(StrideConfig(**overrides))


def _make_basic_stride(**overrides) -> StridePredictor:
    return StridePredictor(StrideConfig.basic(**overrides))


def _make_cap(**overrides) -> CAPPredictor:
    return CAPPredictor(CAPConfig(**overrides))


def _make_hybrid(**overrides) -> HybridPredictor:
    return HybridPredictor(HybridConfig(**overrides))


def _make_last_address(**overrides) -> LastAddressPredictor:
    return LastAddressPredictor(LastAddressConfig(**overrides))


def _make_gshare(**overrides) -> GShareAddressPredictor:
    return GShareAddressPredictor(GShareAddressConfig(**overrides))


#: Named predictor factories a :class:`Job` may reference.  Keys — not
#: callables — cross the process boundary, so workers rebuild predictors
#: from configuration alone.
FACTORIES: Dict[str, Callable[..., AddressPredictor]] = {
    "stride": _make_stride,
    "basic_stride": _make_basic_stride,
    "cap": _make_cap,
    "hybrid": _make_hybrid,
    "last_address": _make_last_address,
    "gshare": _make_gshare,
}


@dataclass(frozen=True)
class Job:
    """One cell of an experiment grid, fully described by picklable data.

    ``factory`` names an entry of :data:`FACTORIES`; ``None`` is only
    meaningful for ``kind="timing"`` and simulates the no-prediction
    baseline.  ``gap`` (when not ``None``) wraps the predictor in
    :class:`~repro.pipeline.delayed.PipelinedPredictor` — note ``gap=0``
    still wraps, matching the immediate-update end of the Figure 11 sweep.
    ``variant`` labels the result for merging; ``capture_selector`` ships
    the hybrid's Figure 8 selector statistics back with the metrics.

    ``kind="verify"`` runs the trace through the three-way differential
    harness instead of a plain evaluation; there ``variant`` names a
    :data:`repro.verify.differential.VARIANTS` entry and the result carries
    a formatted divergence report (or ``None`` when all paths agree).
    """

    trace: str
    factory: Optional[str] = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    instructions: Optional[int] = None
    warmup_fraction: float = 0.0
    gap: Optional[int] = None
    kind: str = KIND_PREDICT
    capture_selector: bool = False
    machine: Optional[MachineConfig] = None
    variant: str = ""


@dataclass
class JobResult:
    """Outcome of one executed :class:`Job`, tagged for deterministic merge."""

    variant: str
    trace: str
    suite: str
    metrics: Optional[PredictorMetrics] = None
    cycles: Optional[int] = None
    selector_stats: Optional[SelectorStats] = None
    #: Formatted divergence report from a ``verify`` job (None = clean).
    divergence: Optional[str] = None


# Tiny per-process memo for traces and stream columns: drivers emit jobs
# trace-outer, so serial runs and pool workers alike keep hitting the same
# few traces back to back; this avoids re-reading the .npz for every
# variant of a grid row.
_MEMO: "OrderedDict[tuple, Any]" = OrderedDict()
_MEMO_CAPACITY = 4


def _memoized(key: tuple, loader: Callable[[], Any]) -> Any:
    value = _MEMO.get(key)
    if value is None:
        value = loader()
        _MEMO[key] = value
        if len(_MEMO) > _MEMO_CAPACITY:
            _MEMO.popitem(last=False)
    else:
        _MEMO.move_to_end(key)
    return value


def _memoized_trace(name: str, instructions: Optional[int]) -> Trace:
    key = ("trace", name, instructions, os.environ.get("REPRO_TRACE_CACHE"))
    return _memoized(
        key, lambda: suite_registry.get_trace(name, instructions)
    )


def _memoized_stream(
    name: str, instructions: Optional[int]
) -> PredictorStream:
    """Stream columns only — skips the full event columns on a warm cache.

    A trace already memoised (by a timing job) donates its stream instead
    of re-reading anything.
    """
    cache_dir = os.environ.get("REPRO_TRACE_CACHE")
    trace = _MEMO.get(("trace", name, instructions, cache_dir))
    if trace is not None:
        return trace.predictor_columns()
    key = ("stream", name, instructions, cache_dir)
    return _memoized(
        key, lambda: suite_registry.get_predictor_stream(name, instructions)
    )


def _suite_of(trace_name: str) -> str:
    try:
        return suite_registry.suite_of(trace_name)
    except KeyError:
        return "MISC"


def build_predictor(job: Job) -> AddressPredictor:
    """Instantiate the predictor a job describes (worker side)."""
    if job.factory is None:
        raise ValueError("job has no predictor factory")
    try:
        factory = FACTORIES[job.factory]
    except KeyError:
        raise KeyError(
            f"unknown predictor factory {job.factory!r};"
            f" choose from {sorted(FACTORIES)}"
        ) from None
    predictor = factory(**job.overrides)
    if job.gap is not None:
        predictor = PipelinedPredictor(predictor, job.gap)
    return predictor


def execute_job(job: Job) -> JobResult:
    """Run one job to completion in the current process."""
    if job.kind == KIND_TIMING:
        trace = _memoized_trace(job.trace, job.instructions)
        predictor = build_predictor(job) if job.factory is not None else None
        timing = simulate(trace, predictor, job.machine)
        return JobResult(
            variant=job.variant, trace=job.trace,
            suite=trace.meta.get("suite", "MISC"), cycles=timing.cycles,
        )
    if job.kind == KIND_VERIFY:
        # Imported lazily: most engine users never touch the verifier.
        from ..verify.differential import verify_events

        stream = _memoized_stream(job.trace, job.instructions)
        divergence = verify_events(job.variant, stream.tuples())
        return JobResult(
            variant=job.variant, trace=job.trace, suite=_suite_of(job.trace),
            divergence=None if divergence is None else divergence.format(),
        )
    if job.kind != KIND_PREDICT:
        raise ValueError(f"unknown job kind {job.kind!r}")
    suite = _suite_of(job.trace)
    stream = _memoized_stream(job.trace, job.instructions)
    warmup = int(stream.loads * job.warmup_fraction)
    predictor = build_predictor(job)
    metrics = PredictorMetrics(
        name=job.variant or predictor.name, trace=job.trace, suite=suite,
    )
    run_on_columns(predictor, stream, metrics, warmup_loads=warmup)
    selector_stats = None
    if job.capture_selector:
        core = getattr(predictor, "inner", predictor)
        selector_stats = getattr(core, "selector_stats", None)
    return JobResult(
        variant=job.variant, trace=job.trace, suite=suite,
        metrics=metrics, selector_stats=selector_stats,
    )


def resolve_jobs(explicit: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else CPUs."""
    if explicit is not None:
        workers = int(explicit)
    else:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def run_jobs(
    jobs: Iterable[Job],
    max_workers: Optional[int] = None,
) -> List[JobResult]:
    """Execute a batch of jobs and return results in job order.

    With one worker (``REPRO_JOBS=1`` or a single job) everything runs
    in-process; otherwise jobs fan out over a ``ProcessPoolExecutor`` and
    results are stitched back by submission index, so the output is
    independent of worker scheduling.
    """
    job_list: Sequence[Job] = list(jobs)
    workers = resolve_jobs(max_workers)
    if workers == 1 or len(job_list) < 2:
        return [execute_job(job) for job in job_list]
    results: List[Optional[JobResult]] = [None] * len(job_list)
    with ProcessPoolExecutor(max_workers=min(workers, len(job_list))) as pool:
        futures = {
            pool.submit(execute_job, job): index
            for index, job in enumerate(job_list)
        }
        for future in as_completed(futures):
            results[futures[future]] = future.result()
    return results  # type: ignore[return-value]
