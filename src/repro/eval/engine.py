"""Parallel experiment engine: a declarative job model for the figure suite.

Every grid-shaped experiment in :mod:`repro.eval.experiments` is a cross
product of (predictor variant x trace), optionally wrapped in a pipelined
prediction gap or run through the timing model.  This module turns one
cell of that grid into a picklable :class:`Job` *spec* — predictor factory
name, config overrides, trace name, instruction budget — and executes a
batch of them either fully in-process or across a ``ProcessPoolExecutor``.

Design rules:

* **Jobs are specs, not live objects.**  Workers resolve the trace through
  the on-disk cache in :mod:`repro.workloads.suites` (first generation is
  file-locked and atomically renamed, so cold-cache workers don't race)
  and instantiate the predictor locally from the factory registry.
* **Results merge in job order.**  ``run_jobs`` returns one
  :class:`JobResult` per job, in the order the jobs were given, no matter
  which worker finished first — serial and parallel runs are
  bit-identical.
* **Worker count comes from ``REPRO_JOBS``** (default: CPU count).
  ``REPRO_JOBS=1`` short-circuits to plain in-process execution, so pytest
  and debugging behaviour is exactly the single-process code path.
"""

from __future__ import annotations

import os
import platform
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..pipeline.delayed import PipelinedPredictor
from ..predictors.base import AddressPredictor
from ..predictors.cap import CAPConfig, CAPPredictor
from ..predictors.gshare_address import (
    GShareAddressConfig,
    GShareAddressPredictor,
)
from ..predictors.hybrid import HybridConfig, HybridPredictor, SelectorStats
from ..predictors.last_address import LastAddressConfig, LastAddressPredictor
from ..predictors.stride import StrideConfig, StridePredictor
from ..telemetry import manifest as run_manifest
from ..telemetry.instrumentation import AttributionProbe, instrument_predictor
from ..telemetry.profiler import maybe_start as maybe_start_profiler
from ..timing.machine import MachineConfig
from ..timing.ooo import simulate
from ..trace.trace import PredictorStream, Trace
from ..workloads import suites as suite_registry
from . import config as run_config
from .metrics import AttributionCounters, PredictorMetrics
from ..serve.session import run_on_columns

__all__ = [
    "FACTORIES",
    "Job",
    "JobResult",
    "build_predictor",
    "execute_job",
    "resolve_jobs",
    "run_jobs",
]

KIND_PREDICT = "predict"
KIND_TIMING = "timing"
KIND_VERIFY = "verify"


def _make_stride(**overrides) -> StridePredictor:
    return StridePredictor(StrideConfig(**overrides))


def _make_basic_stride(**overrides) -> StridePredictor:
    return StridePredictor(StrideConfig.basic(**overrides))


def _make_cap(**overrides) -> CAPPredictor:
    return CAPPredictor(CAPConfig(**overrides))


def _make_hybrid(**overrides) -> HybridPredictor:
    return HybridPredictor(HybridConfig(**overrides))


def _make_last_address(**overrides) -> LastAddressPredictor:
    return LastAddressPredictor(LastAddressConfig(**overrides))


def _make_gshare(**overrides) -> GShareAddressPredictor:
    return GShareAddressPredictor(GShareAddressConfig(**overrides))


#: Named predictor factories a :class:`Job` may reference.  Keys — not
#: callables — cross the process boundary, so workers rebuild predictors
#: from configuration alone.
FACTORIES: Dict[str, Callable[..., AddressPredictor]] = {
    "stride": _make_stride,
    "basic_stride": _make_basic_stride,
    "cap": _make_cap,
    "hybrid": _make_hybrid,
    "last_address": _make_last_address,
    "gshare": _make_gshare,
}


@dataclass(frozen=True)
class Job:
    """One cell of an experiment grid, fully described by picklable data.

    ``factory`` names an entry of :data:`FACTORIES`; ``None`` is only
    meaningful for ``kind="timing"`` and simulates the no-prediction
    baseline.  ``gap`` (when not ``None``) wraps the predictor in
    :class:`~repro.pipeline.delayed.PipelinedPredictor` — note ``gap=0``
    still wraps, matching the immediate-update end of the Figure 11 sweep.
    ``variant`` labels the result for merging; ``capture_selector`` ships
    the hybrid's Figure 8 selector statistics back with the metrics.

    ``kind="verify"`` runs the trace through the three-way differential
    harness instead of a plain evaluation; there ``variant`` names a
    :data:`repro.verify.differential.VARIANTS` entry and the result carries
    a formatted divergence report (or ``None`` when all paths agree).

    ``instrument=True`` attaches an attribution probe to the predictor tree
    and returns :class:`~repro.eval.metrics.AttributionCounters` (a
    :class:`~repro.eval.metrics.PredictorMetrics` subclass) instead of
    plain metrics — the backbone of ``python -m repro stats``.
    """

    trace: str
    factory: Optional[str] = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    instructions: Optional[int] = None
    warmup_fraction: float = 0.0
    gap: Optional[int] = None
    kind: str = KIND_PREDICT
    capture_selector: bool = False
    machine: Optional[MachineConfig] = None
    variant: str = ""
    instrument: bool = False
    #: Observability trace id riding along with the spec (excluded from
    #: the config hash: tracing a job must not change its identity).
    trace_id: Optional[str] = None


@dataclass
class JobResult:
    """Outcome of one executed :class:`Job`, tagged for deterministic merge."""

    variant: str
    trace: str
    suite: str
    metrics: Optional[PredictorMetrics] = None
    cycles: Optional[int] = None
    selector_stats: Optional[SelectorStats] = None
    #: Formatted divergence report from a ``verify`` job (None = clean).
    divergence: Optional[str] = None
    #: Which evaluation backend actually ran ("python" / "numpy"); None
    #: for job kinds that never enter the prediction loop.
    backend: Optional[str] = None
    #: Execution wall time measured in the worker; lets the submitting
    #: process split pool latency into queue-wait vs run wall.
    wall_s: Optional[float] = None


# Tiny per-process memo for traces and stream columns: drivers emit jobs
# trace-outer, so serial runs and pool workers alike keep hitting the same
# few traces back to back; this avoids re-reading the .npz for every
# variant of a grid row.
_MEMO: "OrderedDict[tuple, Any]" = OrderedDict()
_MEMO_CAPACITY = 4


def _memoized(key: tuple, loader: Callable[[], Any]) -> Any:
    value = _MEMO.get(key)
    if value is None:
        value = loader()
        _MEMO[key] = value
        if len(_MEMO) > _MEMO_CAPACITY:
            _MEMO.popitem(last=False)
    else:
        _MEMO.move_to_end(key)
    return value


def _memoized_trace(name: str, instructions: Optional[int]) -> Trace:
    key = ("trace", name, instructions, run_config.trace_cache_dir())
    return _memoized(
        key, lambda: suite_registry.get_trace(name, instructions)
    )


def _memoized_stream(
    name: str, instructions: Optional[int]
) -> PredictorStream:
    """Stream columns only — skips the full event columns on a warm cache.

    A trace already memoised (by a timing job) donates its stream instead
    of re-reading anything.
    """
    cache_dir = run_config.trace_cache_dir()
    trace = _MEMO.get(("trace", name, instructions, cache_dir))
    if trace is not None:
        return trace.predictor_columns()
    key = ("stream", name, instructions, cache_dir)
    return _memoized(
        key, lambda: suite_registry.get_predictor_stream(name, instructions)
    )


def _suite_of(trace_name: str) -> str:
    try:
        return suite_registry.suite_of(trace_name)
    except KeyError:
        return "MISC"


def build_predictor(job: Job) -> AddressPredictor:
    """Instantiate the predictor a job describes (worker side)."""
    if job.factory is None:
        raise ValueError("job has no predictor factory")
    try:
        factory = FACTORIES[job.factory]
    except KeyError:
        raise KeyError(
            f"unknown predictor factory {job.factory!r};"
            f" choose from {sorted(FACTORIES)}"
        ) from None
    predictor = factory(**job.overrides)
    if job.gap is not None:
        predictor = PipelinedPredictor(predictor, job.gap)
    return predictor


def _execute(job: Job, aux: Dict[str, Any]) -> JobResult:
    """Run one job in the current process, recording run details in ``aux``.

    ``aux`` receives ``events``/``loads`` counts, the attribution ``probe``
    (instrumented jobs) and the sampling ``profile`` (when enabled) — the
    raw material for the job's run manifest.
    """
    if job.kind == KIND_TIMING:
        trace = _memoized_trace(job.trace, job.instructions)
        aux["events"] = len(trace)
        predictor = build_predictor(job) if job.factory is not None else None
        probe = None
        if job.instrument and predictor is not None:
            probe = AttributionProbe()
            aux["probe"] = probe
            instrument_predictor(predictor, probe)
        timing = simulate(trace, predictor, job.machine)
        aux["loads"] = timing.loads
        return JobResult(
            variant=job.variant, trace=job.trace,
            suite=trace.meta.get("suite", "MISC"), cycles=timing.cycles,
        )
    if job.kind == KIND_VERIFY:
        # Imported lazily: most engine users never touch the verifier.
        from ..verify.differential import verify_events

        stream = _memoized_stream(job.trace, job.instructions)
        aux["events"] = len(stream.tag)
        aux["loads"] = stream.loads
        divergence = verify_events(job.variant, stream.tuples())
        return JobResult(
            variant=job.variant, trace=job.trace, suite=_suite_of(job.trace),
            divergence=None if divergence is None else divergence.format(),
        )
    if job.kind != KIND_PREDICT:
        raise ValueError(f"unknown job kind {job.kind!r}")
    suite = _suite_of(job.trace)
    stream = _memoized_stream(job.trace, job.instructions)
    aux["events"] = len(stream.tag)
    aux["loads"] = stream.loads
    warmup = int(stream.loads * job.warmup_fraction)
    predictor = build_predictor(job)
    metrics: PredictorMetrics
    probe = None
    if job.instrument:
        probe = AttributionProbe()
        aux["probe"] = probe
        instrument_predictor(predictor, probe)
        metrics = AttributionCounters(
            name=job.variant or predictor.name, trace=job.trace, suite=suite,
        )
    else:
        metrics = PredictorMetrics(
            name=job.variant or predictor.name, trace=job.trace, suite=suite,
        )
    profiler = maybe_start_profiler()
    try:
        run_on_columns(predictor, stream, metrics, warmup_loads=warmup)
    finally:
        if profiler is not None:
            aux["profile"] = profiler.stop()
    if probe is not None:
        assert isinstance(metrics, AttributionCounters)
        metrics.absorb_probe(probe)
    selector_stats = None
    if job.capture_selector:
        core = getattr(predictor, "inner", predictor)
        selector_stats = getattr(core, "selector_stats", None)
    return JobResult(
        variant=job.variant, trace=job.trace, suite=suite,
        metrics=metrics, selector_stats=selector_stats,
        backend=metrics.backend or None,
    )


def _build_manifest(
    job: Job,
    result: JobResult,
    aux: Dict[str, Any],
    started_wall: float,
    wall_s: float,
    cpu_s: float,
) -> Dict[str, Any]:
    """Assemble one run-manifest dict (``run_manifest.schema.json``)."""
    from ..workloads import registry as external_registry

    loads = aux.get("loads")
    probe = aux.get("probe")
    metrics = result.metrics
    metrics_record: Optional[Dict[str, Any]] = None
    if metrics is not None:
        metrics_record = {
            "loads": metrics.loads,
            "predictions": metrics.predictions,
            "speculative": metrics.speculative,
            "correct_speculative": metrics.correct_speculative,
            "correct_predictions": metrics.correct_predictions,
            "prediction_rate": metrics.prediction_rate,
            "accuracy": metrics.accuracy,
            "misprediction_rate": metrics.misprediction_rate,
            "correct_rate": metrics.correct_rate,
            "coverage": metrics.coverage,
        }
    # Registry (ingested) traces cache under their own digest-stamped
    # naming and carry ingest provenance: format, source digest, record
    # counts and drop reasons travel into the manifest so an external
    # trace's figures trace back to the exact source bytes.
    if external_registry.has_trace(job.trace):
        cache_file = external_registry.cache_path(job.trace, job.instructions)
        ingest = external_registry.ingest_meta(job.trace, job.instructions)
    else:
        cache_file = suite_registry.trace_cache_path(
            job.trace, job.instructions
        )
        ingest = None
    trace_record: Dict[str, Any] = {
        "name": job.trace,
        "suite": result.suite,
        "events": aux.get("events"),
        "loads": loads,
        "cache": run_manifest.file_provenance(cache_file),
    }
    if ingest is not None:
        trace_record["ingest"] = ingest
    from dataclasses import asdict

    from ..obs.metrics import global_registry

    # trace_id is observability metadata, not configuration: hash the
    # spec without it so traced and untraced runs of the same job agree.
    hashable = {
        k: v for k, v in asdict(job).items() if k != "trace_id"
    }
    return {
        "schema": run_manifest.MANIFEST_SCHEMA_ID,
        "config_hash": run_manifest.config_hash(hashable),
        "job": {
            "trace": job.trace,
            "factory": job.factory,
            "variant": job.variant,
            "kind": job.kind,
            "overrides": run_manifest.jsonable(job.overrides),
            "instructions": job.instructions,
            "warmup_fraction": job.warmup_fraction,
            "gap": job.gap,
            "instrument": job.instrument,
        },
        "trace": trace_record,
        "run": {
            "started_at": run_manifest.iso_utc(started_wall),
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "loads_per_sec": (
                loads / wall_s if loads and wall_s > 0 else None
            ),
            "peak_rss_kb": run_manifest.peak_rss_kb(),
            "pid": os.getpid(),
            "python": platform.python_version(),
            "backend": result.backend,
        },
        "metrics": metrics_record,
        "cycles": result.cycles,
        "divergence": result.divergence,
        "obs": {
            "trace_id": job.trace_id,
            "flight_recorder": None,
            "metrics": global_registry().snapshot(),
        },
        "attribution": probe.as_dict() if probe is not None else None,
        "profile": aux.get("profile"),
    }


def execute_job(job: Job) -> JobResult:
    """Run one job to completion in the current process.

    Under ``REPRO_TELEMETRY=1`` the run is bracketed with heartbeat lines
    and a JSON run manifest (config hash, trace provenance, wall/CPU cost,
    metrics, attribution) is written to the telemetry directory — in
    worker processes just as in serial runs, since the flag travels
    through the inherited environment.
    """
    from ..obs.metrics import global_registry

    registry = global_registry()
    if not run_manifest.enabled():
        started_perf = run_manifest.perf_clock()
        result = _execute(job, {})
        result.wall_s = run_manifest.perf_clock() - started_perf
        registry.counter("engine.jobs").inc()
        registry.histogram("engine.job.run_s").observe(result.wall_s)
        return result
    label = job.variant or job.factory or job.kind
    started_wall = run_manifest.wall_clock()
    started_perf = run_manifest.perf_clock()
    started_cpu = run_manifest.cpu_clock()
    run_manifest.heartbeat(
        f"start kind={job.kind} variant={label} trace={job.trace}"
    )
    aux: Dict[str, Any] = {}
    result = _execute(job, aux)
    wall_s = run_manifest.perf_clock() - started_perf
    cpu_s = run_manifest.cpu_clock() - started_cpu
    result.wall_s = wall_s
    registry.counter("engine.jobs").inc()
    registry.histogram("engine.job.run_s").observe(wall_s)
    manifest = _build_manifest(job, result, aux, started_wall, wall_s, cpu_s)
    path = run_manifest.write_manifest(manifest)
    run_manifest.heartbeat(
        f"done  kind={job.kind} variant={label} trace={job.trace}"
        f" wall={wall_s:.2f}s manifest={path}"
    )
    return result


# Re-exported from the single configuration-resolution point; kept under
# its historical name because drivers and tests import it from here.
resolve_jobs = run_config.resolve_jobs


def run_jobs(
    jobs: Iterable[Job],
    max_workers: Optional[int] = None,
) -> List[JobResult]:
    """Execute a batch of jobs and return results in job order.

    With one worker (``REPRO_JOBS=1`` or a single job) everything runs
    in-process; otherwise jobs fan out over a ``ProcessPoolExecutor`` and
    results are stitched back by submission index, so the output is
    independent of worker scheduling.
    """
    from ..obs.metrics import global_registry

    job_list: Sequence[Job] = list(jobs)
    workers = resolve_jobs(max_workers)
    if workers == 1 or len(job_list) < 2:
        return [execute_job(job) for job in job_list]
    registry = global_registry()
    queue_wait = registry.histogram("engine.job.queue_wait_s")
    results: List[Optional[JobResult]] = [None] * len(job_list)
    telemetry_on = run_manifest.enabled()
    completed = 0
    pool_workers = min(workers, len(job_list))
    busy_s = 0.0
    submitted = run_manifest.perf_clock()
    with ProcessPoolExecutor(max_workers=pool_workers) as pool:
        futures = {
            pool.submit(execute_job, job): index
            for index, job in enumerate(job_list)
        }
        for future in as_completed(futures):
            result = future.result()
            results[futures[future]] = result
            # Pool latency splits into queue-wait (time the job spent
            # waiting for a worker slot) and the run wall the worker
            # measured; both travel into the metrics registry.
            done = run_manifest.perf_clock()
            wall_s = result.wall_s or 0.0
            busy_s += wall_s
            queue_wait.observe(max(0.0, done - submitted - wall_s))
            if telemetry_on:
                completed += 1
                run_manifest.heartbeat(
                    f"progress {completed}/{len(job_list)} jobs complete"
                )
    span_s = run_manifest.perf_clock() - submitted
    if span_s > 0:
        registry.gauge("engine.workers.utilisation").set(
            min(1.0, busy_s / (pool_workers * span_s))
        )
    if telemetry_on:
        run_manifest.heartbeat(
            f"pool done jobs={len(job_list)} workers={pool_workers}"
            f" span={span_s:.2f}s busy={busy_s:.2f}s"
        )
    return results  # type: ignore[return-value]
