"""Generic parameter-sensitivity sweeps.

The paper's Section 6 closes with "tuning the predictor parameters to
increase predictor performance ... determining the right amount of
information is an art unto itself."  This module makes that art cheap:
sweep any config knob of any predictor over any trace set and get the
same rate/accuracy tables the figure drivers produce.

Example::

    from repro.eval.sensitivity import sweep
    result = sweep(
        "cap.confidence_threshold",
        values=[1, 2, 3, 4],
        traces=["INT_xli", "GAM_duk"],
    )
    print(result.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from ..predictors.cap import CAPConfig, CAPPredictor
from ..predictors.hybrid import HybridConfig, HybridPredictor
from ..predictors.stride import StrideConfig, StridePredictor
from ..workloads import suites as suite_registry
from .metrics import PredictorMetrics
from .report import format_percent, format_table
from ..serve.session import run_predictor

__all__ = ["SweepResult", "sweep", "SWEEPABLE"]

#: predictor kind -> (config class, predictor factory)
_KINDS = {
    "cap": (CAPConfig, CAPPredictor),
    "stride": (StrideConfig, StridePredictor),
    "hybrid": (HybridConfig, HybridPredictor),
}

#: Knobs with documented paper relevance, for `python -m repro sweep --list`.
SWEEPABLE = {
    "cap.confidence_threshold": "saturating-counter firing point (Sec 3.4)",
    "cap.history_length": "addresses folded into the context (Sec 3.2)",
    "cap.cfi_bits": "GHR bits in the control-flow indication (Sec 3.4)",
    "cap.offset_bits": "offset LSBs kept in the LB (Sec 3.3)",
    "stride.confidence_threshold": "stride confidence firing point",
    "stride.cfi_bits": "stride CFI width",
    "hybrid.selector_init": "initial selector bias (Sec 4.2)",
    "hybrid.lb_entries": "shared Load Buffer capacity (Fig 6)",
    "hybrid.lb_ways": "shared Load Buffer associativity (Fig 6)",
}


@dataclass
class SweepResult:
    """Aggregate metrics per swept value."""

    knob: str
    values: List[object]
    #: value -> combined metrics
    metrics: Dict[object, PredictorMetrics] = field(default_factory=dict)

    def best(self, by: str = "correct_rate") -> object:
        """The swept value maximising the given metric attribute."""
        return max(self.values, key=lambda v: getattr(self.metrics[v], by))

    def render(self) -> str:
        headers = [self.knob, "pred rate", "accuracy", "correct"]
        rows = [
            [
                str(value),
                format_percent(m.prediction_rate),
                format_percent(m.accuracy, 2),
                format_percent(m.correct_rate),
            ]
            for value, m in (
                (v, self.metrics[v]) for v in self.values
            )
        ]
        return format_table(
            headers, rows, title=f"Sensitivity sweep: {self.knob}",
        )


def sweep(
    knob: str,
    values: Sequence[object],
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
) -> SweepResult:
    """Evaluate a predictor config knob across ``values``.

    ``knob`` is ``"<kind>.<field>"`` with kind one of ``cap``, ``stride``,
    ``hybrid``; the field must exist on that kind's config dataclass.
    """
    try:
        kind, field_name = knob.split(".", 1)
    except ValueError:
        raise ValueError(
            f"knob must look like 'cap.history_length', got {knob!r}"
        ) from None
    if kind not in _KINDS:
        raise ValueError(f"unknown predictor kind {kind!r}")
    config_cls, predictor_cls = _KINDS[kind]
    base = config_cls()
    if not hasattr(base, field_name):
        raise ValueError(f"{config_cls.__name__} has no field {field_name!r}")

    trace_names = (
        list(traces) if traces is not None else suite_registry.trace_names()
    )
    result = SweepResult(knob=knob, values=list(values))
    for value in values:
        result.metrics[value] = PredictorMetrics(name=f"{knob}={value}")

    for name in trace_names:
        stream = suite_registry.get_trace(name, instructions).predictor_stream()
        for value in values:
            config = replace(base, **{field_name: value})
            metrics = run_predictor(predictor_cls(config), stream)
            result.metrics[value].add(metrics)
    return result
