"""Command-line interface: run paper experiments from a shell.

Usage (via ``python -m repro``)::

    python -m repro list                      # available experiments/traces
    python -m repro run fig5                  # one figure, quick trace set
    python -m repro run fig9 --full           # all 45 traces
    python -m repro run fig5 --full --jobs 4  # 4 parallel worker processes
    python -m repro run fig7 --traces INT_xli MM_aud --instructions 50000
    python -m repro summarize INT_xli         # trace statistics
    python -m repro analyze INT_xli           # Section 2-style load analysis
    python -m repro sweep cap.history_length 1 2 4 8
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from ..workloads import suites
from . import experiments as E
from .engine import resolve_jobs

#: name -> (driver, description)
EXPERIMENTS: Dict[str, tuple] = {
    "fig5": (E.fig5, "prediction rate/accuracy of stride, CAP, hybrid"),
    "fig6": (E.fig6, "hybrid vs Load Buffer geometry"),
    "lt_sweep": (E.lt_sweep, "hybrid vs Link Table size (Sec 4.2)"),
    "fig7": (E.fig7, "processor speedup, immediate update"),
    "lt_update_policy": (E.lt_update_policy, "LT update policies (Sec 4.3)"),
    "fig8": (E.fig8, "hybrid selector performance"),
    "fig9": (E.fig9, "history length x global correlation"),
    "fig10": (E.fig10, "LT tags / CFI vs mispredictions"),
    "fig11": (E.fig11, "prediction-gap sweep"),
    "fig12": (E.fig12, "speedup at prediction gap 8"),
    "baselines": (E.baselines, "last-address / stride coverage (Sec 1)"),
    "control_based": (E.control_based, "g-share / call-path predictors"),
    "value_vs_address": (
        E.value_vs_address, "load-value vs address predictability (Sec 1)"
    ),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name, (_, description) in EXPERIMENTS.items():
        print(f"  {name:<18} {description}")
    print()
    print("suites / traces:")
    for suite in suites.SUITE_NAMES:
        print(f"  {suite:<5} {' '.join(suites.trace_names(suite))}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    driver, _ = EXPERIMENTS[args.experiment]

    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.jobs is not None:
        # The engine reads REPRO_JOBS at run time; routing the flag through
        # the environment keeps every driver signature unchanged and the
        # setting inheritable by pool workers.
        os.environ["REPRO_JOBS"] = str(args.jobs)

    traces: Optional[List[str]]
    if args.traces:
        traces = args.traces
    elif args.full:
        traces = suites.trace_names()
    else:
        traces = E.quick_trace_set()

    started = time.time()
    result = driver(traces=traces, instructions=args.instructions)
    elapsed = time.time() - started
    if args.chart and hasattr(result, "render_chart"):
        print(result.render_chart())
    else:
        print(result.render())
    print(f"\n[{len(traces)} traces, {resolve_jobs()} worker(s),"
          f" {elapsed:.1f}s]")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    for name in args.traces:
        trace = suites.get_trace(name, args.instructions)
        print(trace.summary())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from ..analysis import analyze_trace, load_fingerprint

    for name in args.traces:
        trace = suites.get_trace(name, args.instructions)
        analysis = analyze_trace(trace)
        print(analysis.render(top=args.top))
        if args.fingerprints:
            ranked = sorted(analysis.profiles, key=lambda p: -p.count)
            for profile in ranked[: args.fingerprints]:
                print(
                    f"  {profile.ip:#x} ({profile.classification}): "
                    + load_fingerprint(trace, profile.ip, limit=24)
                )
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sensitivity import SWEEPABLE, sweep

    if args.list:
        for knob, description in SWEEPABLE.items():
            print(f"  {knob:<28} {description}")
        return 0
    if not args.knob or not args.values:
        print("usage: sweep <knob> <value>... (or --list)", file=sys.stderr)
        return 2
    values = [int(v) for v in args.values]
    traces = args.traces or E.quick_trace_set()
    result = sweep(
        args.knob, values, traces=traces, instructions=args.instructions,
    )
    print(result.render())
    print(f"\nbest by correct rate: {args.knob} = {result.best()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction harness for 'Correlated Load-Address Predictors'"
            " (ISCA 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and traces").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see 'list')")
    run.add_argument("--full", action="store_true",
                     help="use all 45 traces (default: 2 per suite)")
    run.add_argument("--traces", nargs="+", metavar="NAME",
                     help="explicit trace names")
    run.add_argument("--instructions", type=int, default=None,
                     help="per-trace dynamic instruction budget")
    run.add_argument("--chart", action="store_true",
                     help="render as ASCII bars instead of a table")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="parallel worker processes (default: REPRO_JOBS"
                          " env var, else CPU count; 1 = serial)")
    run.set_defaults(func=_cmd_run)

    summarize = sub.add_parser("summarize", help="print trace statistics")
    summarize.add_argument("traces", nargs="+", metavar="NAME")
    summarize.add_argument("--instructions", type=int, default=None)
    summarize.set_defaults(func=_cmd_summarize)

    analyze = sub.add_parser(
        "analyze", help="Section 2-style load-pattern analysis"
    )
    analyze.add_argument("traces", nargs="+", metavar="NAME")
    analyze.add_argument("--instructions", type=int, default=None)
    analyze.add_argument("--top", type=int, default=10,
                         help="static loads to detail")
    analyze.add_argument("--fingerprints", type=int, default=3,
                         help="fingerprinted loads to print (0 = none)")
    analyze.set_defaults(func=_cmd_analyze)

    sweep_cmd = sub.add_parser(
        "sweep", help="sensitivity sweep over a predictor config knob"
    )
    sweep_cmd.add_argument("knob", nargs="?", help="e.g. cap.history_length")
    sweep_cmd.add_argument("values", nargs="*", help="integer values to try")
    sweep_cmd.add_argument("--list", action="store_true",
                           help="list documented knobs")
    sweep_cmd.add_argument("--traces", nargs="+", metavar="NAME")
    sweep_cmd.add_argument("--instructions", type=int, default=None)
    sweep_cmd.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.func
    return handler(args)
