"""Command-line interface: run paper experiments from a shell.

Usage (via ``python -m repro``)::

    python -m repro list                      # available experiments/traces
    python -m repro run fig5                  # one figure, quick trace set
    python -m repro run fig9 --full           # all 45 traces
    python -m repro run fig5 --full --jobs 4  # 4 parallel worker processes
    python -m repro run fig7 --traces INT_xli MM_aud --instructions 50000
    python -m repro summarize INT_xli         # trace statistics
    python -m repro analyze INT_xli           # Section 2-style load analysis
    python -m repro sweep cap.history_length 1 2 4 8
    python -m repro verify --fuzz 500 --seed 0   # differential fuzzing
    python -m repro verify --traces INT_xli      # differential suite replay
    python -m repro lint                         # static-analysis rules
    python -m repro lint --rules R001 --format json
    python -m repro stats breakdown              # misprediction-cause tables
    python -m repro stats summarize telemetry/   # run-manifest summary
    python -m repro stats diff base/ cand/       # flag perf/accuracy drift
    python -m repro stats validate telemetry/    # schema-check manifests
    python -m repro stats bench --gate 15        # fig5 wall-clock history
    python -m repro stats slo slo_report.json    # render a serving SLO report
    python -m repro stats tail 127.0.0.1:9100    # follow a live admin endpoint
    python -m repro stats tail telemetry/ --once # digest manifests/postmortems
    python -m repro stats spans spans.json       # summarise a span export
    python -m repro run fig5 --full --backend python   # force scalar path
    python -m repro serve --port 8377            # prediction-as-a-service
    python -m repro serve --shards 2 --telemetry # sharded, with manifests
    python -m repro serve --admin-port 0 --flight-dir flight/  # observable
    python -m repro ingest convert t.trc t.npz   # external trace -> Trace
    python -m repro ingest validate              # check the trace registry
    python -m repro run fig5 --traces ext_quick  # registry set in a figure
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from ..workloads import suites
from . import config as run_config
from . import experiments as E
from .engine import resolve_jobs

#: name -> (driver, description)
EXPERIMENTS: Dict[str, tuple] = {
    "fig5": (E.fig5, "prediction rate/accuracy of stride, CAP, hybrid"),
    "fig6": (E.fig6, "hybrid vs Load Buffer geometry"),
    "lt_sweep": (E.lt_sweep, "hybrid vs Link Table size (Sec 4.2)"),
    "fig7": (E.fig7, "processor speedup, immediate update"),
    "lt_update_policy": (E.lt_update_policy, "LT update policies (Sec 4.3)"),
    "fig8": (E.fig8, "hybrid selector performance"),
    "fig9": (E.fig9, "history length x global correlation"),
    "fig10": (E.fig10, "LT tags / CFI vs mispredictions"),
    "fig11": (E.fig11, "prediction-gap sweep"),
    "fig12": (E.fig12, "speedup at prediction gap 8"),
    "baselines": (E.baselines, "last-address / stride coverage (Sec 1)"),
    "control_based": (E.control_based, "g-share / call-path predictors"),
    "value_vs_address": (
        E.value_vs_address, "load-value vs address predictability (Sec 1)"
    ),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    from ..workloads import registry

    print("experiments:")
    for name, (_, description) in EXPERIMENTS.items():
        print(f"  {name:<18} {description}")
    print()
    print("suites / traces:")
    for suite in suites.SUITE_NAMES:
        print(f"  {suite:<5} {' '.join(suites.trace_names(suite))}")
    external = registry.trace_names()
    if external:
        print()
        print("registry traces (external):")
        for name in external:
            print(f"  {suites.suite_of(name):<5} {name}")
        reg = registry.get_registry()
        if reg is not None and reg.sets:
            print("registry sets:")
            for set_name, members in reg.sets.items():
                print(f"  {set_name:<12} {' '.join(members)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    driver, _ = EXPERIMENTS[args.experiment]

    try:
        # One resolution point: defaults < environment < CLI flags.  The
        # resolved config is exported back into the environment, which
        # stays the transport to engine pool workers — every driver
        # signature is unchanged and workers inherit the settings.
        run_config.apply(run_config.from_args(args))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    traces: Optional[List[str]]
    if args.traces:
        # Registry set names expand to their members; plain trace names
        # (built-in or registry) pass through untouched.
        from ..workloads import registry

        traces = registry.expand_trace_names(args.traces)
    elif args.full:
        traces = suites.trace_names()
    else:
        traces = E.quick_trace_set()

    # Wall-clock here only feeds the "[N traces, Ns]" status line printed
    # after the results; no simulated state depends on it.
    started = time.time()  # repro-lint: disable=R002
    result = driver(traces=traces, instructions=args.instructions)
    elapsed = time.time() - started  # repro-lint: disable=R002
    if args.chart and hasattr(result, "render_chart"):
        print(result.render_chart())
    else:
        print(result.render())
    print(f"\n[{len(traces)} traces, {resolve_jobs()} worker(s),"
          f" {elapsed:.1f}s]")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    for name in args.traces:
        trace = suites.get_trace(name, args.instructions)
        print(trace.summary())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from ..analysis import analyze_trace, load_fingerprint

    for name in args.traces:
        trace = suites.get_trace(name, args.instructions)
        analysis = analyze_trace(trace)
        print(analysis.render(top=args.top))
        if args.fingerprints:
            ranked = sorted(analysis.profiles, key=lambda p: -p.count)
            for profile in ranked[: args.fingerprints]:
                print(
                    f"  {profile.ip:#x} ({profile.classification}): "
                    + load_fingerprint(trace, profile.ip, limit=24)
                )
        print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sensitivity import SWEEPABLE, sweep

    if args.list:
        for knob, description in SWEEPABLE.items():
            print(f"  {knob:<28} {description}")
        return 0
    if not args.knob or not args.values:
        print("usage: sweep <knob> <value>... (or --list)", file=sys.stderr)
        return 2
    values = [int(v) for v in args.values]
    traces = args.traces or E.quick_trace_set()
    result = sweep(
        args.knob, values, traces=traces, instructions=args.instructions,
    )
    print(result.render())
    print(f"\nbest by correct rate: {args.knob} = {result.best()}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from ..verify.differential import VARIANTS
    from ..verify.fuzz import run_fuzz
    from ..verify.metamorphic import run_metamorphic_checks
    from ..verify.fuzz import generate_events
    from ..verify.regressions import (
        RegressionCase,
        load_cases,
        save_case,
    )

    for name in args.variants or ():
        if name not in VARIANTS:
            print(f"unknown variant {name!r};"
                  f" choose from {sorted(VARIANTS)}", file=sys.stderr)
            return 2
    # The vectorized differential lane honours the same backend selection
    # the evaluation runs do; see _cmd_run.
    run_config.apply(run_config.from_args(args))
    failed = False

    # 1. Saved regression traces always replay first: they are tiny, and a
    #    reintroduced bug should be reported by the trace that named it.
    replay_dir = Path(args.replay) if args.replay else None
    cases = load_cases(replay_dir)
    for case in cases:
        divergence = case.replay()
        if divergence is not None:
            failed = True
            print(f"regression {case.name!r} diverges again:")
            print(divergence.format())
    print(f"regressions: {len(cases)} replayed,"
          f" {sum(1 for c in cases if c.replay() is None)} clean")

    # 2. The differential fuzzer.
    if args.fuzz:
        save_dir = Path(args.save_dir) if args.save_dir else None
        failures = run_fuzz(
            cases=args.fuzz,
            seed=args.seed,
            events_per_case=args.events,
            variants=args.variants,
        )
        for index, failure in enumerate(failures):
            failed = True
            print(failure.describe())
            saved = save_case(
                RegressionCase(
                    name=(
                        f"fuzz-{failure.variant}-seed{args.seed}-{index}"
                    ),
                    variant=failure.variant,
                    events=failure.events,
                    note=(
                        f"found by 'verify --fuzz {args.fuzz} --seed"
                        f" {args.seed}', profile {failure.profile}"
                    ),
                ),
                save_dir,
            )
            print(f"minimised trace saved to {saved}")
        print(f"fuzz: {args.fuzz} cases, {len(failures)} divergence(s)")

    # 3. Metamorphic invariants over a few freshly generated traces.
    if not args.no_metamorphic:
        checked = 0
        for profile in ("rds_walk", "aliasing", "branch_churn", "mixed"):
            events = generate_events(profile, args.seed, args.events)
            for message in run_metamorphic_checks(events):
                failed = True
                print(f"metamorphic failure on {profile}: {message}")
            checked += 1
        print(f"metamorphic: {checked} traces checked")

    # 4. Optional full-suite traces through the engine (parallel-friendly).
    if args.traces:
        from .engine import KIND_VERIFY, Job, run_jobs

        names = args.variants or ["cap", "stride", "hybrid"]
        jobs = [
            Job(trace=trace, kind=KIND_VERIFY, variant=variant,
                instructions=args.instructions)
            for trace in args.traces
            for variant in names
        ]
        clean = 0
        for result in run_jobs(jobs):
            if result.divergence is None:
                clean += 1
            else:
                failed = True
                print(f"trace {result.trace} / {result.variant}:")
                print(result.divergence)
        print(f"suite traces: {len(jobs)} replays, {clean} clean")

    return 1 if failed else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    # Imported lazily: telemetry.stats pulls in the engine, which the
    # other subcommands don't need at parse time.
    from ..telemetry import stats as S

    mode = args.stats_mode
    if mode == "breakdown":
        run_config.apply(run_config.from_args(args))
        if args.traces:
            traces = args.traces
        elif args.full:
            traces = suites.trace_names()
        else:
            traces = E.quick_trace_set()
        result = S.collect_breakdown(
            traces=traces, instructions=args.instructions,
        )
        if args.format == "json":
            rendered = result.to_json()
        elif args.format == "csv":
            rendered = result.to_csv()
        else:
            rendered = result.render_text()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
            print(f"wrote {args.output}")
        else:
            print(rendered)
        return 0
    if mode == "summarize":
        print(S.summarize_manifests(args.directory))
        return 0
    if mode == "validate":
        problems = S.validate_directory(args.directory)
        if not problems:
            print(f"all manifests in {args.directory} validate")
            return 0
        for path, errors in problems:
            print(f"{path}:")
            for error in errors:
                print(f"  {error}")
        return 1
    if mode == "diff":
        diff = S.diff_manifests(
            args.baseline,
            args.candidate,
            wall_tolerance=args.wall_tol,
            accuracy_tolerance=args.acc_tol,
        )
        print(diff.render())
        return 0 if diff.clean else 1
    if mode == "slo":
        problems = S.check_slo_report(args.file)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 2
        print(S.render_slo_report(args.file))
        return 0
    if mode == "tail":
        from ..obs.report import tail as obs_tail

        return obs_tail(
            args.target, interval_s=args.interval, once=args.once
        )
    if mode == "spans":
        from ..obs.report import spans_report

        return spans_report(args.file)
    if mode == "bench":
        problems = S.check_bench_file(args.file)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 2
        print(S.render_bench_history(args.file))
        if args.gate is not None:
            message = S.bench_regression(args.file, args.gate / 100.0)
            if message is not None:
                print(message, file=sys.stderr)
                return 1
            print(f"gate: newest entry within {args.gate:.0f}% of best peer")
        return 0
    print(f"unknown stats mode {mode!r}", file=sys.stderr)
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from ..serve.server import ServeConfig, serve

    try:
        run_config.apply(run_config.from_args(args))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        session_timeout_s=args.timeout,
        shards=args.shards,
        admin_port=args.admin_port,
        flight_dir=args.flight_dir,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from ..lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_ingest(args: argparse.Namespace) -> int:
    from ..ingest.cli import run_ingest_command

    return run_ingest_command(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction harness for 'Correlated Load-Address Predictors'"
            " (ISCA 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and traces").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see 'list')")
    run.add_argument("--full", action="store_true",
                     help="use all 45 traces (default: 2 per suite)")
    run.add_argument("--traces", nargs="+", metavar="NAME",
                     help="explicit trace names")
    run.add_argument("--instructions", type=int, default=None,
                     help="per-trace dynamic instruction budget")
    run.add_argument("--chart", action="store_true",
                     help="render as ASCII bars instead of a table")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="parallel worker processes (default: REPRO_JOBS"
                          " env var, else CPU count; 1 = serial)")
    run.add_argument("--backend", choices=["python", "numpy"], default=None,
                     help="predictor evaluation backend (default:"
                          " REPRO_BACKEND env var, else numpy when"
                          " available)")
    run.add_argument("--registry", default=None, metavar="MANIFEST",
                     help="benchmark-set registry manifest (default:"
                          " REPRO_REGISTRY env var, else"
                          " benchmarks/traces/registry.json)")
    run.set_defaults(func=_cmd_run)

    summarize = sub.add_parser("summarize", help="print trace statistics")
    summarize.add_argument("traces", nargs="+", metavar="NAME")
    summarize.add_argument("--instructions", type=int, default=None)
    summarize.set_defaults(func=_cmd_summarize)

    analyze = sub.add_parser(
        "analyze", help="Section 2-style load-pattern analysis"
    )
    analyze.add_argument("traces", nargs="+", metavar="NAME")
    analyze.add_argument("--instructions", type=int, default=None)
    analyze.add_argument("--top", type=int, default=10,
                         help="static loads to detail")
    analyze.add_argument("--fingerprints", type=int, default=3,
                         help="fingerprinted loads to print (0 = none)")
    analyze.set_defaults(func=_cmd_analyze)

    sweep_cmd = sub.add_parser(
        "sweep", help="sensitivity sweep over a predictor config knob"
    )
    sweep_cmd.add_argument("knob", nargs="?", help="e.g. cap.history_length")
    sweep_cmd.add_argument("values", nargs="*", help="integer values to try")
    sweep_cmd.add_argument("--list", action="store_true",
                           help="list documented knobs")
    sweep_cmd.add_argument("--traces", nargs="+", metavar="NAME")
    sweep_cmd.add_argument("--instructions", type=int, default=None)
    sweep_cmd.set_defaults(func=_cmd_sweep)

    verify = sub.add_parser(
        "verify",
        help="differential verification: oracle vs stream vs columns",
    )
    verify.add_argument("--fuzz", type=int, default=200, metavar="N",
                        help="fuzz cases to run (0 = skip fuzzing)")
    verify.add_argument("--seed", type=int, default=0,
                        help="master seed for deterministic fuzzing")
    verify.add_argument("--events", type=int, default=300, metavar="N",
                        help="events per fuzzed trace")
    verify.add_argument("--variants", nargs="+", metavar="NAME",
                        help="restrict to these differential variants")
    verify.add_argument("--traces", nargs="+", metavar="NAME",
                        help="also replay these suite traces differentially")
    verify.add_argument("--instructions", type=int, default=20000,
                        help="per-trace budget for --traces replays")
    verify.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for --traces replays")
    verify.add_argument("--replay", metavar="DIR", default=None,
                        help="regression directory (default:"
                             " tests/regressions)")
    verify.add_argument("--save-dir", metavar="DIR", default=None,
                        help="where to save new minimised failures"
                             " (default: tests/regressions)")
    verify.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic invariant checks")
    verify.add_argument("--backend", choices=["python", "numpy"],
                        default=None,
                        help="backend for the vectorized differential lane"
                             " (default: REPRO_BACKEND env var)")
    verify.set_defaults(func=_cmd_verify)

    stats = sub.add_parser(
        "stats",
        help="attribution breakdowns and run-manifest reporting",
    )
    stats_sub = stats.add_subparsers(dest="stats_mode", required=True)

    breakdown = stats_sub.add_parser(
        "breakdown",
        help="per-predictor misprediction-cause tables (Figure 10 style)",
    )
    breakdown.add_argument("--traces", nargs="+", metavar="NAME",
                           help="explicit trace names")
    breakdown.add_argument("--full", action="store_true",
                           help="use all traces (default: 2 per suite)")
    breakdown.add_argument("--instructions", type=int, default=None,
                           help="per-trace dynamic instruction budget")
    breakdown.add_argument("--format", choices=("text", "json", "csv"),
                           default="text")
    breakdown.add_argument("--output", metavar="FILE", default=None,
                           help="write to FILE instead of stdout")
    breakdown.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="parallel worker processes")
    breakdown.set_defaults(func=_cmd_stats)

    summarize_stats = stats_sub.add_parser(
        "summarize", help="tabulate run manifests from a directory"
    )
    summarize_stats.add_argument("directory", metavar="DIR")
    summarize_stats.set_defaults(func=_cmd_stats)

    diff = stats_sub.add_parser(
        "diff",
        help="compare two manifest sets, flag perf/accuracy regressions",
    )
    diff.add_argument("baseline", metavar="BASELINE_DIR")
    diff.add_argument("candidate", metavar="CANDIDATE_DIR")
    diff.add_argument("--wall-tol", type=float, default=0.25,
                      help="relative wall-time slowdown tolerance")
    diff.add_argument("--acc-tol", type=float, default=0.005,
                      help="absolute accuracy/rate drop tolerance")
    diff.set_defaults(func=_cmd_stats)

    validate = stats_sub.add_parser(
        "validate", help="schema-validate run manifests in a directory"
    )
    validate.add_argument("directory", metavar="DIR")
    validate.set_defaults(func=_cmd_stats)

    bench = stats_sub.add_parser(
        "bench",
        help="fig5 wall-clock trajectory recorded in BENCH_fig5.json",
    )
    bench.add_argument(
        "file", nargs="?", default="BENCH_fig5.json", metavar="FILE",
    )
    bench.add_argument(
        "--gate", type=float, default=None, metavar="PCT",
        help="exit 1 if the newest entry is more than PCT%% slower than"
             " the best earlier run on the same backend and worker count",
    )
    bench.set_defaults(func=_cmd_stats)

    slo = stats_sub.add_parser(
        "slo",
        help="validate and render a serving SLO report"
             " (benchmarks/loadgen.py output)",
    )
    slo.add_argument("file", metavar="FILE",
                     help="SLO report JSON written by the load generator")
    slo.set_defaults(func=_cmd_stats)

    tail_cmd = stats_sub.add_parser(
        "tail",
        help="follow a live admin endpoint (host:port) or a"
             " manifest/postmortem directory",
    )
    tail_cmd.add_argument("target", metavar="TARGET",
                          help="host:port of a serve --admin-port"
                               " endpoint, or a telemetry/flight"
                               " directory")
    tail_cmd.add_argument("--interval", type=float, default=2.0,
                          metavar="SEC", help="poll interval")
    tail_cmd.add_argument("--once", action="store_true",
                          help="print one snapshot and exit (CI mode)")
    tail_cmd.set_defaults(func=_cmd_stats)

    spans_cmd = stats_sub.add_parser(
        "spans",
        help="validate and summarise a Chrome trace-event export"
             " (admin 'spans' answer or loadgen --trace-export)",
    )
    spans_cmd.add_argument("file", metavar="FILE",
                           help="trace-event JSON document")
    spans_cmd.set_defaults(func=_cmd_stats)

    serve_cmd = sub.add_parser(
        "serve",
        help="prediction-as-a-service: asyncio server over sessions",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8377,
                           help="TCP port (0 = ephemeral; the bound port"
                                " is printed on the ready line)")
    serve_cmd.add_argument("--max-sessions", type=int, default=256,
                           help="concurrently open session cap")
    serve_cmd.add_argument("--queue-depth", type=int, default=64,
                           help="bounded feed queue (backpressure valve)")
    serve_cmd.add_argument("--max-batch", type=int, default=16,
                           help="max feeds micro-batched per executor hop")
    serve_cmd.add_argument("--timeout", type=float, default=30.0,
                           help="per-feed budget in seconds")
    serve_cmd.add_argument("--shards", type=int, default=0, metavar="N",
                           help="session worker processes (0 = in-process)")
    serve_cmd.add_argument("--backend", choices=["python", "numpy"],
                           default=None,
                           help="evaluation backend for served sessions")
    serve_cmd.add_argument("--telemetry", action="store_true",
                           help="write kind=serve run manifests per session")
    serve_cmd.add_argument("--telemetry-dir", default=None, metavar="DIR",
                           help="manifest output directory")
    serve_cmd.add_argument("--admin-port", type=int, default=None,
                           metavar="PORT",
                           help="observability admin endpoint port"
                                " (0 = ephemeral; omitted = no admin"
                                " listener)")
    serve_cmd.add_argument("--flight-dir", default=None, metavar="DIR",
                           help="flight-recorder postmortem directory"
                                " (omitted = rings stay in memory only)")
    serve_cmd.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="AST-based simulator-correctness linter (R001-R006)",
    )
    from ..lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    ingest = sub.add_parser(
        "ingest",
        help="convert/describe/validate external traces and the"
             " benchmark-set registry",
    )
    from ..ingest.cli import add_ingest_arguments

    add_ingest_arguments(ingest)
    ingest.set_defaults(func=_cmd_ingest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = args.func
    return handler(args)
