"""Prediction-quality metrics, matching the paper's definitions.

* **prediction rate** — speculative accesses (correct *and* incorrect) as a
  fraction of all dynamic loads (Section 4.2);
* **accuracy** — correct predictions as a fraction of speculative accesses;
* **misprediction rate** — ``1 - accuracy`` (out of speculative accesses,
  as in Figure 10);
* **correct rate** — correct speculative accesses out of all dynamic loads
  (the Figure 9 metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, Optional

__all__ = [
    "AttributionCounters",
    "PredictorMetrics",
    "SuiteMetrics",
    "aggregate_by_suite",
]

#: Dataclass fields that label a metrics object rather than count events.
_LABEL_FIELDS = ("name", "trace", "suite", "backend")


@dataclass
class PredictorMetrics:
    """Counters from one predictor x trace evaluation."""

    name: str = ""
    trace: str = ""
    suite: str = ""
    #: Evaluation backend that produced these counters ("python" scalar
    #: loop or "numpy" batch kernels); "" when aggregated or unknown.
    backend: str = ""
    loads: int = 0
    predictions: int = 0          # an address was produced (LB hit + link)
    speculative: int = 0          # confidence agreed -> speculative access
    correct_speculative: int = 0
    correct_predictions: int = 0  # correctness over all produced addresses

    def record(self, made: bool, speculative: bool, correct: bool) -> None:
        """Account for one dynamic load."""
        self.loads += 1
        if made:
            self.predictions += 1
            if correct:
                self.correct_predictions += 1
        if speculative:
            self.speculative += 1
            if correct:
                self.correct_speculative += 1

    # -- derived rates ------------------------------------------------------

    @property
    def prediction_rate(self) -> float:
        """Speculative accesses / all loads."""
        return self.speculative / self.loads if self.loads else 0.0

    @property
    def accuracy(self) -> float:
        """Correct / speculative accesses."""
        if not self.speculative:
            return 0.0
        return self.correct_speculative / self.speculative

    @property
    def misprediction_rate(self) -> float:
        """Incorrect / speculative accesses."""
        if not self.speculative:
            return 0.0
        return 1.0 - self.accuracy

    @property
    def correct_rate(self) -> float:
        """Correct speculative accesses / all loads (Figure 9 metric)."""
        return self.correct_speculative / self.loads if self.loads else 0.0

    @property
    def coverage(self) -> float:
        """Loads for which any address was produced / all loads."""
        return self.predictions / self.loads if self.loads else 0.0

    @property
    def mispredictions(self) -> int:
        """Absolute count of wrong speculative accesses."""
        return self.speculative - self.correct_speculative

    # -- combination ------------------------------------------------------------

    def add(self, other: "PredictorMetrics") -> None:
        """Accumulate another metrics object into this one.

        Generic over dataclass fields, so subclasses that append counter
        fields (:class:`AttributionCounters`) merge without overriding;
        counters the other object lacks contribute zero.
        """
        for spec in fields(self):
            if spec.name in _LABEL_FIELDS:
                continue
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name, 0),
            )

    def __iadd__(self, other: "PredictorMetrics") -> "PredictorMetrics":
        self.add(other)
        return self

    def __str__(self) -> str:
        return (
            f"{self.name or 'predictor'} on {self.trace or 'trace'}: "
            f"rate={self.prediction_rate:.1%} acc={self.accuracy:.2%} "
            f"({self.speculative}/{self.loads} spec)"
        )


@dataclass
class AttributionCounters(PredictorMetrics):
    """:class:`PredictorMetrics` extended with attribution counters.

    One integer per telemetry event type, in the canonical order of
    ``repro.telemetry.instrumentation.ATTRIBUTION_FIELDS`` (a unit test
    pins the two field lists together; this module deliberately does not
    import the telemetry package, keeping ``eval`` importable without it).
    Instances survive the engine's deterministic merge like any other
    metrics object: :meth:`add` is generic over dataclass fields.
    """

    lb_misses: int = 0
    lt_misses: int = 0
    lt_tag_mismatches: int = 0
    pf_rejections: int = 0
    confidence_vetoes: int = 0
    cfi_vetoes: int = 0
    interval_stops: int = 0
    drain_suppressions: int = 0
    selector_cap: int = 0
    selector_stride: int = 0
    catchups_fired: int = 0
    spec_rollbacks: int = 0
    cfi_bad_patterns: int = 0
    pipeline_flushes: int = 0

    def attribution(self) -> Dict[str, int]:
        """The attribution counters alone, as an ordered plain dict."""
        base = {spec.name for spec in fields(PredictorMetrics)}
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name not in base
        }

    def absorb_probe(self, probe: Any) -> None:
        """Fold an ``AttributionProbe``'s counters into this object.

        Matched by field name, so the probe and this dataclass cannot
        drift apart silently — a missing attribute raises.
        """
        for name in self.attribution():
            setattr(self, name, getattr(self, name) + getattr(probe, name))


@dataclass
class SuiteMetrics:
    """Per-suite aggregation of several trace runs."""

    suite: str
    combined: PredictorMetrics = field(default_factory=PredictorMetrics)
    traces: Dict[str, PredictorMetrics] = field(default_factory=dict)

    def add(self, metrics: PredictorMetrics) -> None:
        """Fold one trace's metrics into the suite.

        When the incoming metrics are a richer subclass than ``combined``
        (e.g. :class:`AttributionCounters` folding into a default-built
        :class:`PredictorMetrics`), ``combined`` is upgraded to that
        subclass first so no counter is dropped in aggregation.
        """
        self.traces[metrics.trace] = metrics
        if not isinstance(self.combined, type(metrics)):
            upgraded = type(metrics)(
                name=self.combined.name,
                trace=self.combined.trace,
                suite=self.combined.suite,
            )
            upgraded.add(self.combined)
            self.combined = upgraded
        self.combined.add(metrics)

    def __iadd__(self, other: "SuiteMetrics") -> "SuiteMetrics":
        """Merge another suite aggregation (same suite) into this one."""
        for metrics in other.traces.values():
            self.add(metrics)
        return self


def aggregate_by_suite(
    runs: Iterable[PredictorMetrics],
    name: Optional[str] = None,
) -> Dict[str, SuiteMetrics]:
    """Group per-trace metrics into suites, plus an ``"Average"`` entry.

    The ``"Average"`` bucket sums counters across every trace — the same
    load-weighted averaging the paper uses for its "Average" bars.
    """
    suites: Dict[str, SuiteMetrics] = {}
    overall = SuiteMetrics(suite="Average")
    overall.combined.name = name or ""
    for metrics in runs:
        suite = metrics.suite or "MISC"
        if suite not in suites:
            suites[suite] = SuiteMetrics(suite=suite)
            suites[suite].combined.name = metrics.name
        suites[suite].add(metrics)
        overall.add(metrics)
    suites["Average"] = overall
    return suites
