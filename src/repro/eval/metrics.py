"""Prediction-quality metrics, matching the paper's definitions.

* **prediction rate** — speculative accesses (correct *and* incorrect) as a
  fraction of all dynamic loads (Section 4.2);
* **accuracy** — correct predictions as a fraction of speculative accesses;
* **misprediction rate** — ``1 - accuracy`` (out of speculative accesses,
  as in Figure 10);
* **correct rate** — correct speculative accesses out of all dynamic loads
  (the Figure 9 metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

__all__ = ["PredictorMetrics", "SuiteMetrics", "aggregate_by_suite"]


@dataclass
class PredictorMetrics:
    """Counters from one predictor x trace evaluation."""

    name: str = ""
    trace: str = ""
    suite: str = ""
    loads: int = 0
    predictions: int = 0          # an address was produced (LB hit + link)
    speculative: int = 0          # confidence agreed -> speculative access
    correct_speculative: int = 0
    correct_predictions: int = 0  # correctness over all produced addresses

    def record(self, made: bool, speculative: bool, correct: bool) -> None:
        """Account for one dynamic load."""
        self.loads += 1
        if made:
            self.predictions += 1
            if correct:
                self.correct_predictions += 1
        if speculative:
            self.speculative += 1
            if correct:
                self.correct_speculative += 1

    # -- derived rates ------------------------------------------------------

    @property
    def prediction_rate(self) -> float:
        """Speculative accesses / all loads."""
        return self.speculative / self.loads if self.loads else 0.0

    @property
    def accuracy(self) -> float:
        """Correct / speculative accesses."""
        if not self.speculative:
            return 0.0
        return self.correct_speculative / self.speculative

    @property
    def misprediction_rate(self) -> float:
        """Incorrect / speculative accesses."""
        if not self.speculative:
            return 0.0
        return 1.0 - self.accuracy

    @property
    def correct_rate(self) -> float:
        """Correct speculative accesses / all loads (Figure 9 metric)."""
        return self.correct_speculative / self.loads if self.loads else 0.0

    @property
    def coverage(self) -> float:
        """Loads for which any address was produced / all loads."""
        return self.predictions / self.loads if self.loads else 0.0

    @property
    def mispredictions(self) -> int:
        """Absolute count of wrong speculative accesses."""
        return self.speculative - self.correct_speculative

    # -- combination ------------------------------------------------------------

    def add(self, other: "PredictorMetrics") -> None:
        """Accumulate another metrics object into this one."""
        self.loads += other.loads
        self.predictions += other.predictions
        self.speculative += other.speculative
        self.correct_speculative += other.correct_speculative
        self.correct_predictions += other.correct_predictions

    def __str__(self) -> str:
        return (
            f"{self.name or 'predictor'} on {self.trace or 'trace'}: "
            f"rate={self.prediction_rate:.1%} acc={self.accuracy:.2%} "
            f"({self.speculative}/{self.loads} spec)"
        )


@dataclass
class SuiteMetrics:
    """Per-suite aggregation of several trace runs."""

    suite: str
    combined: PredictorMetrics = field(default_factory=PredictorMetrics)
    traces: Dict[str, PredictorMetrics] = field(default_factory=dict)

    def add(self, metrics: PredictorMetrics) -> None:
        """Fold one trace's metrics into the suite."""
        self.traces[metrics.trace] = metrics
        self.combined.add(metrics)


def aggregate_by_suite(
    runs: Iterable[PredictorMetrics],
    name: Optional[str] = None,
) -> Dict[str, SuiteMetrics]:
    """Group per-trace metrics into suites, plus an ``"Average"`` entry.

    The ``"Average"`` bucket sums counters across every trace — the same
    load-weighted averaging the paper uses for its "Average" bars.
    """
    suites: Dict[str, SuiteMetrics] = {}
    overall = SuiteMetrics(suite="Average")
    overall.combined.name = name or ""
    for metrics in runs:
        suite = metrics.suite or "MISC"
        if suite not in suites:
            suites[suite] = SuiteMetrics(suite=suite)
            suites[suite].combined.name = metrics.name
        suites[suite].add(metrics)
        overall.add(metrics)
    suites["Average"] = overall
    return suites
