"""Evaluation harness: runner, metrics, per-figure experiment drivers."""

from . import experiments
from .charts import bar_chart, grouped_bar_chart, series_chart
from .engine import Job, JobResult, resolve_jobs, run_jobs
from .metrics import PredictorMetrics, SuiteMetrics, aggregate_by_suite
from .report import format_percent, format_speedup, format_table
from ..serve.session import run_on_columns, run_on_stream, run_predictor
from .sensitivity import SweepResult, sweep

__all__ = [
    "experiments",
    "Job",
    "JobResult",
    "resolve_jobs",
    "run_jobs",
    "run_on_columns",
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "SweepResult",
    "sweep",
    "PredictorMetrics",
    "SuiteMetrics",
    "aggregate_by_suite",
    "format_percent",
    "format_speedup",
    "format_table",
    "run_on_stream",
    "run_predictor",
]
