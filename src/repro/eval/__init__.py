"""Evaluation harness: runner, metrics, per-figure experiment drivers."""

from . import experiments
from .charts import bar_chart, grouped_bar_chart, series_chart
from .metrics import PredictorMetrics, SuiteMetrics, aggregate_by_suite
from .report import format_percent, format_speedup, format_table
from .runner import run_on_stream, run_predictor
from .sensitivity import SweepResult, sweep

__all__ = [
    "experiments",
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "SweepResult",
    "sweep",
    "PredictorMetrics",
    "SuiteMetrics",
    "aggregate_by_suite",
    "format_percent",
    "format_speedup",
    "format_table",
    "run_on_stream",
    "run_predictor",
]
