"""Program container and a fluent builder with label resolution.

Workload generators construct programs through :class:`ProgramBuilder`;
hand-written snippets (examples, tests) can also use the text assembler in
:mod:`repro.isa.assembler`.  Both produce a :class:`Program` whose branch
targets are resolved to instruction indices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .instructions import Instruction, Op
from .memory import AddressSpace

__all__ = ["Program", "ProgramBuilder", "UnresolvedLabelError"]


class UnresolvedLabelError(Exception):
    """A control-flow target names a label that was never defined."""


class Program:
    """An immutable sequence of resolved instructions.

    Instruction ``i`` lives at byte address ``code_base + 4*i``; that address
    is the instruction pointer (IP) the predictors index their Load Buffer
    with.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Optional[Dict[str, int]] = None,
        code_base: int = AddressSpace.CODE_BASE,
        name: str = "",
    ) -> None:
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.code_base = code_base
        self.name = name
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for idx, instr in enumerate(self.instructions):
            if instr.is_control and instr.op not in (Op.RET, Op.JR):
                target = instr.target
                if not isinstance(target, int):
                    raise UnresolvedLabelError(
                        f"instruction {idx} ({instr}) has unresolved target"
                        f" {target!r}"
                    )
                if not 0 <= target < n:
                    raise ValueError(
                        f"instruction {idx} ({instr}) targets index {target}"
                        f" outside program of length {n}"
                    )

    def ip_of(self, index: int) -> int:
        """Byte address of instruction ``index``."""
        return self.code_base + 4 * index

    def index_of_ip(self, ip: int) -> int:
        """Instruction index for byte address ``ip``."""
        offset = ip - self.code_base
        if offset % 4 or not 0 <= offset // 4 < len(self.instructions):
            raise ValueError(f"IP {ip:#x} is not in this program")
        return offset // 4

    def entry(self, label: str = "main") -> int:
        """Index of a named entry point (defaults to ``main``, else 0)."""
        if label in self.labels:
            return self.labels[label]
        if label == "main":
            return 0
        raise KeyError(f"no label {label!r} in program {self.name!r}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def listing(self) -> str:
        """Human-readable disassembly with labels and addresses."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for idx, instr in enumerate(self.instructions):
            for label in sorted(by_index.get(idx, [])):
                lines.append(f"{label}:")
            lines.append(f"  {self.ip_of(idx):#010x}  {instr}")
        return "\n".join(lines)


class ProgramBuilder:
    """Accumulates instructions and labels, then resolves into a Program.

    Labels may be referenced before definition; resolution happens in
    :meth:`build`.  Convenience emitters exist for every opcode so workload
    generators read like assembly::

        b = ProgramBuilder("walk")
        b.label("loop")
        b.ld(1, base=2, offset=8)     # ld r1, 8(r2)
        b.bne(1, 0, "loop")
        b.halt()
        program = b.build()
    """

    def __init__(self, name: str = "", code_base: int = AddressSpace.CODE_BASE):
        self.name = name
        self.code_base = code_base
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    # -- core -------------------------------------------------------------

    def emit(self, instr: Instruction) -> "ProgramBuilder":
        """Append a raw instruction."""
        self._instructions.append(instr)
        return self

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ValueError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)
        return self

    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    def fresh_label(self, stem: str) -> str:
        """Generate a unique label name with the given stem."""
        i = 0
        while f"{stem}_{i}" in self._labels:
            i += 1
        name = f"{stem}_{i}"
        # Reserve without defining: record by defining lazily is racy, so we
        # simply rely on the caller to define it exactly once.
        return name

    # -- emitters -----------------------------------------------------------

    def li(self, rd: int, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.LI, rd=rd, imm=imm))

    def mov(self, rd: int, rs: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.MOV, rd=rd, rs1=rs))

    def _rrr(self, op: Op, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    def add(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.ADD, rd, rs1, rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.SUB, rd, rs1, rs2)

    def mul(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.MUL, rd, rs1, rs2)

    def div(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.DIV, rd, rs1, rs2)

    def mod(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.MOD, rd, rs1, rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.AND, rd, rs1, rs2)

    def or_(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.OR, rd, rs1, rs2)

    def xor(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.XOR, rd, rs1, rs2)

    def shl(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.SHL, rd, rs1, rs2)

    def shr(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Op.SHR, rd, rs1, rs2)

    def addi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.ADDI, rd=rd, rs1=rs1, imm=imm))

    def muli(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.MULI, rd=rd, rs1=rs1, imm=imm))

    def andi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.ANDI, rd=rd, rs1=rs1, imm=imm))

    def ld(self, rd: int, base: int, offset: int = 0) -> "ProgramBuilder":
        """``ld rd, offset(base)`` — the load predictors watch."""
        return self.emit(Instruction(Op.LD, rd=rd, rs1=base, imm=offset))

    def st(self, rs: int, base: int, offset: int = 0) -> "ProgramBuilder":
        """``st rs, offset(base)``."""
        return self.emit(Instruction(Op.ST, rs1=base, rs2=rs, imm=offset))

    def _branch(self, op: Op, rs1: int, rs2: int, label: str) -> "ProgramBuilder":
        return self.emit(Instruction(op, rs1=rs1, rs2=rs2, target=label))

    def beq(self, rs1: int, rs2: int, label: str) -> "ProgramBuilder":
        return self._branch(Op.BEQ, rs1, rs2, label)

    def bne(self, rs1: int, rs2: int, label: str) -> "ProgramBuilder":
        return self._branch(Op.BNE, rs1, rs2, label)

    def blt(self, rs1: int, rs2: int, label: str) -> "ProgramBuilder":
        return self._branch(Op.BLT, rs1, rs2, label)

    def bge(self, rs1: int, rs2: int, label: str) -> "ProgramBuilder":
        return self._branch(Op.BGE, rs1, rs2, label)

    def jmp(self, label: str) -> "ProgramBuilder":
        return self.emit(Instruction(Op.JMP, target=label))

    def call(self, label: str) -> "ProgramBuilder":
        return self.emit(Instruction(Op.CALL, target=label))

    def ret(self) -> "ProgramBuilder":
        return self.emit(Instruction(Op.RET))

    def jr(self, rs: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.JR, rs1=rs))

    def push(self, rs: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.PUSH, rs2=rs))

    def pop(self, rd: int) -> "ProgramBuilder":
        return self.emit(Instruction(Op.POP, rd=rd))

    def nop(self) -> "ProgramBuilder":
        return self.emit(Instruction(Op.NOP))

    def halt(self) -> "ProgramBuilder":
        return self.emit(Instruction(Op.HALT))

    # -- resolution --------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        resolved: List[Instruction] = []
        for idx, instr in enumerate(self._instructions):
            if isinstance(instr.target, str):
                if instr.target not in self._labels:
                    raise UnresolvedLabelError(
                        f"instruction {idx} ({instr.op.value}) references"
                        f" undefined label {instr.target!r}"
                    )
                instr = Instruction(
                    op=instr.op,
                    rd=instr.rd,
                    rs1=instr.rs1,
                    rs2=instr.rs2,
                    imm=instr.imm,
                    target=self._labels[instr.target],
                )
            resolved.append(instr)
        return Program(
            resolved, labels=self._labels, code_base=self.code_base,
            name=self.name,
        )
