"""Instruction set of the mini RISC-like ISA.

The paper evaluates its predictors on IA-32 traces.  Those traces are
proprietary, so this package defines a small word-addressed RISC-like ISA
whose programs generate the same *kinds* of load-address streams the paper
analyses: pointer chasing through heap structures, stack-relative argument
loads, array strides, and irregular accesses.

Design points that matter to the predictors:

* Every load carries an explicit **immediate offset** (``ld rd, imm(rs)``).
  CAP's global-correlation mechanism subtracts this offset to form base
  addresses (paper Section 3.3), so the ISA must expose it.
* ``call``/``ret``/``push``/``pop`` touch the stack through real memory
  accesses, so return-address and argument loads appear in the trace just
  as they do in the paper's user+kernel IA-32 traces.
* Conditional branches exist so a global branch-history register (GHR) can
  be maintained for the control-flow-indication confidence mechanism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Op",
    "Instruction",
    "NUM_REGISTERS",
    "WORD_SIZE",
    "SP",
    "FP",
    "RV",
]

#: Number of general-purpose registers r0..r15.
NUM_REGISTERS = 16
#: Bytes per machine word (all memory traffic is word-sized).
WORD_SIZE = 4
#: Conventional stack-pointer register.
SP = 15
#: Conventional frame-pointer register.
FP = 14
#: Conventional return-value register.
RV = 0


class Op(enum.Enum):
    """Operation codes.

    The ``value`` strings double as assembler mnemonics.
    """

    # Data movement / arithmetic
    LI = "li"        # li rd, imm
    MOV = "mov"      # mov rd, rs
    ADD = "add"      # add rd, rs1, rs2
    SUB = "sub"      # sub rd, rs1, rs2
    MUL = "mul"      # mul rd, rs1, rs2
    DIV = "div"      # div rd, rs1, rs2   (integer division, trunc toward 0)
    MOD = "mod"      # mod rd, rs1, rs2
    AND = "and"      # and rd, rs1, rs2
    OR = "or"        # or rd, rs1, rs2
    XOR = "xor"      # xor rd, rs1, rs2
    SHL = "shl"      # shl rd, rs1, rs2
    SHR = "shr"      # shr rd, rs1, rs2
    ADDI = "addi"    # addi rd, rs1, imm
    MULI = "muli"    # muli rd, rs1, imm
    ANDI = "andi"    # andi rd, rs1, imm

    # Memory
    LD = "ld"        # ld rd, imm(rs1)     -- the instruction predictors watch
    ST = "st"        # st rs2, imm(rs1)    -- store rs2 to [rs1 + imm]

    # Control flow
    BEQ = "beq"      # beq rs1, rs2, label
    BNE = "bne"      # bne rs1, rs2, label
    BLT = "blt"      # blt rs1, rs2, label (signed)
    BGE = "bge"      # bge rs1, rs2, label (signed)
    JMP = "jmp"      # jmp label
    CALL = "call"    # call label          -- pushes return address
    RET = "ret"      # ret                 -- pops return address
    JR = "jr"        # jr rs1              -- indirect jump

    # Stack
    PUSH = "push"    # push rs2
    POP = "pop"      # pop rd

    # Misc
    NOP = "nop"
    HALT = "halt"


#: Ops that read memory (emit a load trace event).
LOAD_OPS = frozenset({Op.LD, Op.POP, Op.RET})
#: Ops that write memory.
STORE_OPS = frozenset({Op.ST, Op.PUSH, Op.CALL})
#: Conditional branches (update the GHR).
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})
#: All control transfers.
CONTROL_OPS = BRANCH_OPS | {Op.JMP, Op.CALL, Op.RET, Op.JR}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``target`` holds a label name until :class:`~repro.isa.program.Program`
    resolution replaces it with an instruction index (still stored in
    ``target`` as an ``int``).
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[object] = None  # label name (str) or resolved index (int)

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if reg is not None and not 0 <= reg < NUM_REGISTERS:
                raise ValueError(f"{name}={reg} out of range for {self.op}")

    # -- classification ---------------------------------------------------

    @property
    def is_load(self) -> bool:
        """True for instructions that read memory."""
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        """True for instructions that write memory."""
        return self.op in STORE_OPS

    @property
    def is_branch(self) -> bool:
        """True for conditional branches."""
        return self.op in BRANCH_OPS

    @property
    def is_control(self) -> bool:
        """True for any control transfer."""
        return self.op in CONTROL_OPS

    def sources(self) -> tuple[int, ...]:
        """Registers read by this instruction (for dataflow analysis)."""
        op = self.op
        if op in (Op.MOV, Op.ADDI, Op.MULI, Op.ANDI, Op.LD, Op.JR):
            return (self.rs1,) if self.rs1 is not None else ()
        if op in (
            Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
            Op.XOR, Op.SHL, Op.SHR,
        ):
            return (self.rs1, self.rs2)  # type: ignore[return-value]
        if op in BRANCH_OPS:
            return (self.rs1, self.rs2)  # type: ignore[return-value]
        if op is Op.ST:
            return tuple(r for r in (self.rs1, self.rs2) if r is not None)
        if op is Op.PUSH:
            return (self.rs2, SP)  # type: ignore[return-value]
        if op is Op.POP:
            return (SP,)
        if op in (Op.CALL, Op.RET):
            return (SP,)
        return ()

    def destination(self) -> Optional[int]:
        """Register written by this instruction, if any."""
        if self.op in (
            Op.LI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
            Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.ADDI, Op.MULI,
            Op.ANDI, Op.LD, Op.POP,
        ):
            return self.rd
        return None

    # -- formatting ---------------------------------------------------------

    def __str__(self) -> str:
        op = self.op
        m = op.value
        if op is Op.LI:
            return f"{m} r{self.rd}, {self.imm}"
        if op is Op.MOV:
            return f"{m} r{self.rd}, r{self.rs1}"
        if op in (Op.ADDI, Op.MULI, Op.ANDI):
            return f"{m} r{self.rd}, r{self.rs1}, {self.imm}"
        if op in (
            Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
            Op.XOR, Op.SHL, Op.SHR,
        ):
            return f"{m} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if op is Op.LD:
            return f"{m} r{self.rd}, {self.imm}(r{self.rs1})"
        if op is Op.ST:
            return f"{m} r{self.rs2}, {self.imm}(r{self.rs1})"
        if op in BRANCH_OPS:
            return f"{m} r{self.rs1}, r{self.rs2}, {self.target}"
        if op in (Op.JMP, Op.CALL):
            return f"{m} {self.target}"
        if op is Op.JR:
            return f"{m} r{self.rs1}"
        if op is Op.PUSH:
            return f"{m} r{self.rs2}"
        if op is Op.POP:
            return f"{m} r{self.rd}"
        return m
