"""A small text assembler for the mini-ISA.

Syntax (one instruction per line; ``;`` or ``#`` starts a comment)::

    main:
        li   r1, 100        ; immediate
        li   r2, 0
    loop:
        ld   r3, 8(r1)      ; load with immediate offset
        add  r2, r2, r3
        addi r1, r1, 16
        bne  r3, r0, loop
        halt

Registers are ``r0``..``r15`` with aliases ``sp`` (r15) and ``fp`` (r14).
Immediates accept decimal or ``0x`` hex, optionally negative.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .instructions import FP, SP, Instruction, Op
from .program import Program, ProgramBuilder

__all__ = ["assemble", "AssemblyError"]

_MNEMONICS = {op.value: op for op in Op}
_REG_ALIASES = {"sp": SP, "fp": FP}
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))?\((\w+)\)$")


class AssemblyError(Exception):
    """Raised on any syntax error, with line information."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


def _parse_reg(token: str, line_no: int, line: str) -> int:
    token = token.lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        reg = int(token[1:])
        if 0 <= reg <= 15:
            return reg
    raise AssemblyError(line_no, line, f"bad register {token!r}")


def _parse_imm(token: str, line_no: int, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line_no, line, f"bad immediate {token!r}") from None


def _parse_mem(token: str, line_no: int, line: str) -> tuple[int, int]:
    """Parse ``imm(reg)`` into (offset, base register)."""
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblyError(line_no, line, f"bad memory operand {token!r}")
    offset = int(match.group(1), 0) if match.group(1) else 0
    base = _parse_reg(match.group(2), line_no, line)
    return offset, base


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


def assemble(source: str, name: str = "", code_base: Optional[int] = None) -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    kwargs = {} if code_base is None else {"code_base": code_base}
    builder = ProgramBuilder(name=name, **kwargs)

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue

        # Labels (possibly followed by an instruction on the same line).
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(line_no, raw, f"bad label {label!r}")
            try:
                builder.label(label)
            except ValueError as exc:
                raise AssemblyError(line_no, raw, str(exc)) from None
            line = line.strip()
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic not in _MNEMONICS:
            raise AssemblyError(line_no, raw, f"unknown mnemonic {mnemonic!r}")
        op = _MNEMONICS[mnemonic]
        ops = _split_operands(rest)

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblyError(
                    line_no, raw,
                    f"{mnemonic} expects {n} operand(s), got {len(ops)}",
                )

        if op is Op.LI:
            need(2)
            builder.li(_parse_reg(ops[0], line_no, raw),
                       _parse_imm(ops[1], line_no, raw))
        elif op is Op.MOV:
            need(2)
            builder.mov(_parse_reg(ops[0], line_no, raw),
                        _parse_reg(ops[1], line_no, raw))
        elif op in (Op.ADDI, Op.MULI, Op.ANDI):
            need(3)
            builder.emit(Instruction(
                op,
                rd=_parse_reg(ops[0], line_no, raw),
                rs1=_parse_reg(ops[1], line_no, raw),
                imm=_parse_imm(ops[2], line_no, raw),
            ))
        elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
                    Op.XOR, Op.SHL, Op.SHR):
            need(3)
            builder.emit(Instruction(
                op,
                rd=_parse_reg(ops[0], line_no, raw),
                rs1=_parse_reg(ops[1], line_no, raw),
                rs2=_parse_reg(ops[2], line_no, raw),
            ))
        elif op is Op.LD:
            need(2)
            offset, base = _parse_mem(ops[1], line_no, raw)
            builder.ld(_parse_reg(ops[0], line_no, raw), base, offset)
        elif op is Op.ST:
            need(2)
            offset, base = _parse_mem(ops[1], line_no, raw)
            builder.st(_parse_reg(ops[0], line_no, raw), base, offset)
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            need(3)
            builder.emit(Instruction(
                op,
                rs1=_parse_reg(ops[0], line_no, raw),
                rs2=_parse_reg(ops[1], line_no, raw),
                target=ops[2],
            ))
        elif op in (Op.JMP, Op.CALL):
            need(1)
            builder.emit(Instruction(op, target=ops[0]))
        elif op is Op.JR:
            need(1)
            builder.jr(_parse_reg(ops[0], line_no, raw))
        elif op is Op.PUSH:
            need(1)
            builder.push(_parse_reg(ops[0], line_no, raw))
        elif op is Op.POP:
            need(1)
            builder.pop(_parse_reg(ops[0], line_no, raw))
        elif op is Op.RET:
            need(0)
            builder.ret()
        elif op is Op.NOP:
            need(0)
            builder.nop()
        elif op is Op.HALT:
            need(0)
            builder.halt()
        else:  # pragma: no cover - all ops handled above
            raise AssemblyError(line_no, raw, f"unhandled op {op}")

    return builder.build()
