"""Functional CPU: executes programs and emits dynamic instruction traces.

The interpreter is the workhorse behind every workload trace, so the hot
loop is written for speed: instructions are pre-decoded into plain tuples,
dispatch is on integer opcodes, and trace recording appends directly to the
trace's column lists.

Arithmetic is 32-bit unsigned with wraparound; ``blt``/``bge`` compare the
two's-complement interpretation.  ``div``/``mod`` are unsigned and raise on
a zero divisor (workload bugs should be loud).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..trace.event import (
    KIND_ALU,
    KIND_BRANCH,
    KIND_CALL,
    KIND_JUMP,
    KIND_LOAD,
    KIND_RET,
    KIND_STORE,
)
from ..trace.trace import Trace
from .instructions import NUM_REGISTERS, SP, WORD_SIZE, Op
from .memory import AddressSpace, Memory
from .program import Program

__all__ = ["CPU", "CPUResult", "CPUError"]

_MASK32 = 0xFFFFFFFF
_SIGN_BIT = 0x80000000

# Integer opcodes for fast dispatch.
(
    _LI, _MOV, _ADD, _SUB, _MUL, _DIV, _MOD, _AND, _OR, _XOR, _SHL, _SHR,
    _ADDI, _MULI, _ANDI, _LD, _ST, _BEQ, _BNE, _BLT, _BGE, _JMP, _CALL,
    _RET, _JR, _PUSH, _POP, _NOP, _HALT,
) = range(29)

_OPCODE = {
    Op.LI: _LI, Op.MOV: _MOV, Op.ADD: _ADD, Op.SUB: _SUB, Op.MUL: _MUL,
    Op.DIV: _DIV, Op.MOD: _MOD, Op.AND: _AND, Op.OR: _OR, Op.XOR: _XOR,
    Op.SHL: _SHL, Op.SHR: _SHR, Op.ADDI: _ADDI, Op.MULI: _MULI,
    Op.ANDI: _ANDI, Op.LD: _LD, Op.ST: _ST, Op.BEQ: _BEQ, Op.BNE: _BNE,
    Op.BLT: _BLT, Op.BGE: _BGE, Op.JMP: _JMP, Op.CALL: _CALL, Op.RET: _RET,
    Op.JR: _JR, Op.PUSH: _PUSH, Op.POP: _POP, Op.NOP: _NOP, Op.HALT: _HALT,
}


class CPUError(Exception):
    """Runtime fault: bad jump target, stack underflow, division by zero."""


@dataclass
class CPUResult:
    """Outcome of one :meth:`CPU.run` invocation."""

    instructions: int
    halted: bool
    registers: List[int]

    @property
    def hit_limit(self) -> bool:
        """True when execution stopped at ``max_instructions``."""
        return not self.halted


def _signed(value: int) -> int:
    """Two's-complement interpretation of a 32-bit word."""
    return value - (1 << 32) if value & _SIGN_BIT else value


class CPU:
    """A single-context functional interpreter.

    Parameters
    ----------
    memory:
        The memory image (usually pre-populated by a workload builder).
    stack_base:
        Initial stack pointer; the stack grows towards lower addresses.
    """

    def __init__(
        self,
        memory: Optional[Memory] = None,
        stack_base: int = AddressSpace.STACK_BASE,
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.stack_base = stack_base
        self.registers: List[int] = [0] * NUM_REGISTERS

    @staticmethod
    def _decode(program: Program) -> list:
        """Pre-decode instructions into dispatch tuples.

        Each tuple is ``(code, rd, rs1, rs2, imm, target, ip)``.
        """
        decoded = []
        for index, instr in enumerate(program.instructions):
            decoded.append((
                _OPCODE[instr.op],
                instr.rd if instr.rd is not None else 0,
                instr.rs1 if instr.rs1 is not None else 0,
                instr.rs2 if instr.rs2 is not None else 0,
                instr.imm,
                instr.target if isinstance(instr.target, int) else 0,
                program.ip_of(index),
            ))
        return decoded

    def run(
        self,
        program: Program,
        max_instructions: int = 10_000_000,
        trace: Optional[Trace] = None,
        entry: str = "main",
    ) -> CPUResult:
        """Execute ``program`` until ``halt`` or the instruction limit.

        When ``trace`` is given, every retired instruction appends one
        event.  The register file persists across calls, except that the
        stack pointer is reset to ``stack_base`` at entry.
        """
        decoded = self._decode(program)
        n = len(decoded)
        if n == 0:
            return CPUResult(0, True, list(self.registers))

        regs = self.registers
        regs[SP] = self.stack_base
        mem_load = self.memory.load
        mem_store = self.memory.store
        record = trace.append if trace is not None else None

        pc = program.entry(entry)
        executed = 0
        halted = False

        while executed < max_instructions:
            if not 0 <= pc < n:
                raise CPUError(f"PC {pc} outside program of length {n}")
            code, rd, rs1, rs2, imm, target, ip = decoded[pc]
            executed += 1
            next_pc = pc + 1

            if code == _LD:
                addr = (regs[rs1] + imm) & _MASK32
                regs[rd] = mem_load(addr)
                if record:
                    record(KIND_LOAD, ip, addr, imm, rd, rs1, -1, 0, regs[rd])
            elif code == _ADDI:
                regs[rd] = (regs[rs1] + imm) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, -1)
            elif code == _ADD:
                regs[rd] = (regs[rs1] + regs[rs2]) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _BNE:
                taken = regs[rs1] != regs[rs2]
                if taken:
                    next_pc = target
                if record:
                    record(KIND_BRANCH, ip, 0, 0, -1, rs1, rs2, 1 if taken else 0)
            elif code == _BEQ:
                taken = regs[rs1] == regs[rs2]
                if taken:
                    next_pc = target
                if record:
                    record(KIND_BRANCH, ip, 0, 0, -1, rs1, rs2, 1 if taken else 0)
            elif code == _BLT:
                # Signed compare without the _signed() call overhead:
                # XOR-ing the sign bit biases both words by 2^31, mapping
                # two's-complement order onto unsigned order.
                taken = (regs[rs1] ^ _SIGN_BIT) < (regs[rs2] ^ _SIGN_BIT)
                if taken:
                    next_pc = target
                if record:
                    record(KIND_BRANCH, ip, 0, 0, -1, rs1, rs2, 1 if taken else 0)
            elif code == _BGE:
                taken = (regs[rs1] ^ _SIGN_BIT) >= (regs[rs2] ^ _SIGN_BIT)
                if taken:
                    next_pc = target
                if record:
                    record(KIND_BRANCH, ip, 0, 0, -1, rs1, rs2, 1 if taken else 0)
            elif code == _ST:
                addr = (regs[rs1] + imm) & _MASK32
                mem_store(addr, regs[rs2])
                if record:
                    record(KIND_STORE, ip, addr, imm, -1, rs1, rs2, 0,
                           regs[rs2])
            elif code == _LI:
                regs[rd] = imm & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, -1, -1)
            elif code == _MOV:
                regs[rd] = regs[rs1]
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, -1)
            elif code == _SUB:
                regs[rd] = (regs[rs1] - regs[rs2]) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _MUL:
                regs[rd] = (regs[rs1] * regs[rs2]) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _MULI:
                regs[rd] = (regs[rs1] * imm) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, -1)
            elif code == _ANDI:
                regs[rd] = regs[rs1] & imm & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, -1)
            elif code == _AND:
                regs[rd] = regs[rs1] & regs[rs2]
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _OR:
                regs[rd] = regs[rs1] | regs[rs2]
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _XOR:
                regs[rd] = regs[rs1] ^ regs[rs2]
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _SHL:
                regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _SHR:
                regs[rd] = regs[rs1] >> (regs[rs2] & 31)
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _DIV:
                divisor = regs[rs2]
                if divisor == 0:
                    raise CPUError(f"division by zero at {ip:#x}")
                regs[rd] = (regs[rs1] // divisor) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _MOD:
                divisor = regs[rs2]
                if divisor == 0:
                    raise CPUError(f"modulo by zero at {ip:#x}")
                regs[rd] = (regs[rs1] % divisor) & _MASK32
                if record:
                    record(KIND_ALU, ip, 0, 0, rd, rs1, rs2)
            elif code == _JMP:
                next_pc = target
                if record:
                    record(KIND_JUMP, ip, 0, 0, -1, -1, -1, 1)
            elif code == _CALL:
                sp = (regs[SP] - WORD_SIZE) & _MASK32
                regs[SP] = sp
                mem_store(sp, program.ip_of(next_pc))
                next_pc = target
                if record:
                    record(KIND_CALL, ip, sp, 0, SP, SP, -1, 1)
            elif code == _RET:
                sp = regs[SP]
                ret_ip = mem_load(sp)
                regs[SP] = (sp + WORD_SIZE) & _MASK32
                if record:
                    record(KIND_RET, ip, sp, 0, SP, SP, -1, 1, ret_ip)
                next_pc = program.index_of_ip(ret_ip)
            elif code == _JR:
                if record:
                    record(KIND_JUMP, ip, 0, 0, -1, rs1, -1, 1)
                next_pc = program.index_of_ip(regs[rs1])
            elif code == _PUSH:
                sp = (regs[SP] - WORD_SIZE) & _MASK32
                regs[SP] = sp
                mem_store(sp, regs[rs2])
                if record:
                    record(KIND_STORE, ip, sp, 0, SP, SP, rs2, 0, regs[rs2])
            elif code == _POP:
                sp = regs[SP]
                regs[rd] = mem_load(sp)
                regs[SP] = (sp + WORD_SIZE) & _MASK32
                if record:
                    record(KIND_LOAD, ip, sp, 0, rd, SP, -1, 0, regs[rd])
            elif code == _NOP:
                if record:
                    record(KIND_ALU, ip, 0, 0, -1, -1, -1)
            elif code == _HALT:
                halted = True
                break
            else:  # pragma: no cover - exhaustive dispatch
                raise CPUError(f"unknown opcode {code} at {ip:#x}")

            pc = next_pc

        return CPUResult(executed, halted, list(regs))
