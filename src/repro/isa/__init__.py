"""Mini RISC-like ISA: instructions, assembler, memory model, functional CPU.

This is the execution substrate that stands in for the paper's proprietary
IA-32 trace collection: workload programs written against this ISA are run
by :class:`~repro.isa.cpu.CPU` to produce the dynamic load-address streams
the predictors are evaluated on.
"""

from .assembler import AssemblyError, assemble
from .cpu import CPU, CPUError, CPUResult
from .instructions import FP, NUM_REGISTERS, RV, SP, WORD_SIZE, Instruction, Op
from .memory import AddressSpace, HeapAllocator, Memory
from .program import Program, ProgramBuilder, UnresolvedLabelError

__all__ = [
    "AssemblyError",
    "assemble",
    "CPU",
    "CPUError",
    "CPUResult",
    "FP",
    "NUM_REGISTERS",
    "RV",
    "SP",
    "WORD_SIZE",
    "Instruction",
    "Op",
    "AddressSpace",
    "HeapAllocator",
    "Memory",
    "Program",
    "ProgramBuilder",
    "UnresolvedLabelError",
]
