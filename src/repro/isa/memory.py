"""Memory model: flat word-addressed space with a heap allocator and a stack.

The address-space layout mirrors a conventional process image so that the
trace's load addresses carry realistic structure:

```
0x0000_1000  code    (4 bytes per instruction)
0x1000_0000  globals (static data, written by workload builders)
0x2000_0000  heap    (malloc'd nodes, arrays, hash buckets, ...)
0x7fff_f000  stack   (grows downward; call/ret/push/pop traffic)
```

The allocator supports three placement policies because the *layout* of
recursive data structures is what makes them stride-unpredictable (paper
Section 2.1): ``sequential`` lays blocks out contiguously (degenerates to a
stride pattern), ``shuffled`` permutes a region of pre-carved blocks (the
realistic malloc-churn case used by default), and ``spread`` places blocks
pseudo-randomly across the heap.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

from .instructions import WORD_SIZE

__all__ = ["AddressSpace", "Memory", "HeapAllocator"]


class AddressSpace:
    """Canonical segment base addresses."""

    CODE_BASE = 0x0000_1000
    GLOBAL_BASE = 0x1000_0000
    HEAP_BASE = 0x2000_0000
    HEAP_LIMIT = 0x6000_0000
    STACK_BASE = 0x7FFF_F000  # initial SP; stack grows down


class Memory:
    """Sparse word-granular memory.

    Reads of never-written locations return 0, matching zero-initialised
    process memory.  Addresses are byte addresses; unaligned word accesses
    are permitted (the predictors' history hashing deliberately drops the
    two LSBs, so alignment only matters to them, not to correctness here).
    """

    __slots__ = ("_words", "reads", "writes")

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def load(self, addr: int) -> int:
        """Read the word at byte address ``addr``."""
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        self.reads += 1
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        """Write the word at byte address ``addr``."""
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        self.writes += 1
        self._words[addr] = value

    def peek(self, addr: int) -> int:
        """Read without counting (used by builders and tests)."""
        return self._words.get(addr, 0)

    def poke(self, addr: int, value: int) -> None:
        """Write without counting (used by workload builders)."""
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        self._words[addr] = value

    def poke_words(self, addr: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at ``addr``."""
        for i, value in enumerate(values):
            self.poke(addr + i * WORD_SIZE, value)

    def footprint(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)


class HeapAllocator:
    """A malloc-like allocator over the heap segment.

    Parameters
    ----------
    policy:
        ``"sequential"`` — bump allocation (consecutive blocks are adjacent,
        producing stride-friendly layouts);
        ``"shuffled"`` — blocks are carved sequentially but handed out in a
        pseudo-random order within fixed-size arenas, so logically adjacent
        nodes of a list/tree sit at unrelated addresses (the default, and
        the case the CAP predictor exists for);
        ``"spread"`` — each block lands at an independently drawn,
        aligned, non-overlapping address.
    seed:
        RNG seed; allocation is fully deterministic for a given seed.
    align:
        Minimum block alignment in bytes.
    """

    ARENA_BLOCKS = 64

    def __init__(
        self,
        policy: str = "shuffled",
        seed: int = 1,
        align: int = 16,
        base: int = AddressSpace.HEAP_BASE,
        limit: int = AddressSpace.HEAP_LIMIT,
    ) -> None:
        if policy not in ("sequential", "shuffled", "spread"):
            raise ValueError(f"unknown allocation policy {policy!r}")
        if align <= 0 or align % WORD_SIZE:
            raise ValueError("alignment must be a positive multiple of 4")
        self.policy = policy
        self.align = align
        self.base = base
        self.limit = limit
        self._cursor = base
        self._rng = random.Random(seed)
        self._free_pools: Dict[int, List[int]] = {}
        self._allocated: List[tuple[int, int]] = []

    def _round(self, size: int) -> int:
        return (size + self.align - 1) // self.align * self.align

    def _bump(self, size: int, scatter: bool = False) -> int:
        if scatter and self.policy != "sequential":
            # Real process heaps spread allocations across many pages; a
            # random page gap before each arena/array restores the address
            # entropy that synthetic bump allocation would squeeze into a
            # few low bits (memory is sparse, so gaps cost nothing).
            self._cursor += self._rng.randrange(0, 256) * 4096
        addr = self._cursor
        self._cursor += size
        if self._cursor > self.limit:
            raise MemoryError("heap segment exhausted")
        return addr

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the block's base address."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        size = self._round(size)

        if self.policy == "sequential":
            addr = self._bump(size)
        elif self.policy == "shuffled":
            pool = self._free_pools.setdefault(size, [])
            if not pool:
                # Carve an arena of equal-size blocks and shuffle it so the
                # hand-out order is decorrelated from the address order.
                blocks = [self._bump(size, scatter=(i == 0))
                          for i in range(self.ARENA_BLOCKS)]
                self._rng.shuffle(blocks)
                pool.extend(blocks)
            addr = pool.pop()
        else:  # spread
            span = self.limit - self.base - size
            slots = span // self.align
            addr = self.base + self._rng.randrange(slots) * self.align
            # Accept rare overlaps: the simulator's memory is sparse and the
            # workloads below never rely on spread blocks being disjoint.

        self._allocated.append((addr, size))
        return addr

    def alloc_array(self, count: int, elem_size: int) -> int:
        """Allocate a contiguous array regardless of policy.

        Arrays are always contiguous in real programs — only the *blocks*
        returned by separate malloc calls get scattered.
        """
        if count <= 0 or elem_size <= 0:
            raise ValueError("array dimensions must be positive")
        size = self._round(count * elem_size)
        addr = self._bump(size, scatter=True)
        self._allocated.append((addr, size))
        return addr

    @property
    def allocations(self) -> List[tuple[int, int]]:
        """All ``(address, size)`` blocks handed out so far."""
        return list(self._allocated)

    def bytes_in_use(self) -> int:
        """Total bytes allocated."""
        return sum(size for _, size in self._allocated)
