"""A conventional g-share branch predictor.

Used in two places:

* the pipelined predictor model — a branch misprediction drains the
  in-flight prediction queue, the "dynamic event" the paper relies on to
  terminate context-predictor misprediction chains (Section 5.2);
* the out-of-order timing model — branch mispredictions bound the useful
  fetch window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.bitops import fold_xor, mask

__all__ = ["BranchPredictorConfig", "BranchPredictor"]


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Geometry of the g-share predictor."""

    entries: int = 4096
    history_bits: int = 12
    counter_bits: int = 2

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries & (self.entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 1 <= self.counter_bits <= 4:
            raise ValueError("counter_bits must be in [1, 4]")


class BranchPredictor:
    """g-share: counters indexed by (folded IP) xor (global history)."""

    def __init__(self, config: BranchPredictorConfig | None = None) -> None:
        self.config = config or BranchPredictorConfig()
        self.index_bits = self.config.entries.bit_length() - 1
        self._index_mask = mask(self.index_bits)
        self._history_mask = mask(self.config.history_bits)
        self._max_counter = mask(self.config.counter_bits)
        self._threshold = (self._max_counter + 1) // 2
        # Weakly taken initial state: loops predict well from the start.
        self._counters = [self._threshold] * self.config.entries
        self.history = 0
        self.lookups = 0
        self.mispredictions = 0

    def _index(self, ip: int) -> int:
        return (
            fold_xor(ip >> 2, self.index_bits)
            ^ (self.history & self._index_mask)
        ) & self._index_mask

    def predict(self, ip: int) -> bool:
        """Predicted direction for the branch at ``ip``."""
        return self._counters[self._index(ip)] >= self._threshold

    def update(self, ip: int, taken: bool) -> bool:
        """Predict, train, advance history; returns whether we were right."""
        self.lookups += 1
        index = self._index(ip)
        counter = self._counters[index]
        predicted = counter >= self._threshold
        if taken:
            if counter < self._max_counter:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self._history_mask
        correct = predicted == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        """Fraction of correctly predicted branches so far."""
        if not self.lookups:
            return 0.0
        return 1.0 - self.mispredictions / self.lookups

    def reset(self) -> None:
        """Forget all learned state."""
        self._counters = [self._threshold] * self.config.entries
        self.history = 0
        self.lookups = 0
        self.mispredictions = 0
