"""The pipelined predictor model (paper Section 5).

In a real machine a prediction is verified only once the load's effective
address is generated — the paper calls the number of pipeline stages
between the two the **prediction gap**.  Trace-driven, we express the gap
in *pending load resolutions*: a load's table update takes effect only
after ``gap`` later loads have been predicted, which yields exactly the
multiple-pending-predictions regime of Section 5.2.

:class:`PipelinedPredictor` wraps any predictor exposing a
``speculative_mode`` attribute (the stride, CAP and hybrid predictors do):

* predictions run against the wrapped predictor's *speculative* state
  (speculative history advancement, stride catch-up, stop-on-mispredict
  all live inside the component logic);
* updates are queued and applied ``gap`` loads late;
* a ``gap`` of 0 degenerates to the immediate model of Section 4.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..predictors.base import AddressPredictor, Prediction
from .branch import BranchPredictor, BranchPredictorConfig

__all__ = ["PipelinedPredictor"]


class PipelinedPredictor(AddressPredictor):
    """Delays a wrapped predictor's updates by a fixed prediction gap.

    A g-share branch predictor rides along: a mispredicted branch models a
    pipeline redirect, during which the in-flight loads resolve — so the
    queued updates are applied immediately.  This is the "dynamic event"
    (Section 5.2) that terminates context-predictor misprediction chains;
    without it a tight pointer-chasing loop would stay desynchronised
    forever.  Pass ``branch_flush=False`` to study that pathological case.
    """

    def __init__(
        self,
        inner: AddressPredictor,
        gap: int,
        branch_flush: bool = True,
        branch_config: Optional[BranchPredictorConfig] = None,
    ) -> None:
        super().__init__()
        if gap < 0:
            raise ValueError(f"prediction gap must be >= 0, got {gap}")
        if not hasattr(inner, "speculative_mode"):
            raise TypeError(
                f"{type(inner).__name__} does not support pipelined"
                " operation (no speculative_mode attribute)"
            )
        self.inner = inner
        self.gap = gap
        self.inner.speculative_mode = gap > 0
        self._queue: Deque[Tuple[int, int, int, Prediction]] = deque()
        self.branch_flush = branch_flush
        self.branch_predictor = BranchPredictor(branch_config)
        self.flushes = 0

    # -- interface ---------------------------------------------------------

    def predict(self, ip: int, offset: int) -> Prediction:
        return self.inner.predict(ip, offset)

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        """Queue the resolution; apply the one that is now ``gap`` old."""
        if self.gap == 0:
            self.inner.update(ip, offset, actual, prediction)
            return
        self._queue.append((ip, offset, actual, prediction))
        if len(self._queue) > self.gap:
            self.inner.update(*self._queue.popleft())

    def flush(self) -> None:
        """Apply all still-queued updates (end of trace)."""
        while self._queue:
            self.inner.update(*self._queue.popleft())

    # -- control-flow notifications are forwarded ---------------------------

    def on_branch(self, ip: int, taken: bool) -> None:
        self.inner.on_branch(ip, taken)
        if self.gap and self.branch_flush:
            if not self.branch_predictor.update(ip, taken):
                # Pipeline redirect: the in-flight loads resolve while the
                # front-end refills, so their updates land before the next
                # prediction is made.
                self.flushes += 1
                if self.probe is not None:
                    self.probe.pipeline_flush()
                self.flush()

    def on_call(self, ip: int) -> None:
        self.inner.on_call(ip)

    def on_return(self, ip: int) -> None:
        self.inner.on_return(ip)

    @property
    def ghr(self) -> int:  # type: ignore[override]
        return self.inner.ghr

    @ghr.setter
    def ghr(self, value: int) -> None:
        # The base-class constructor assigns ghr; route it to the inner
        # predictor so there is a single source of truth.
        if hasattr(self, "inner"):
            self.inner.ghr = value

    def reset(self) -> None:
        self.inner.reset()
        self._queue.clear()
        self.branch_predictor.reset()
        self.flushes = 0

    @property
    def pending_updates(self) -> int:
        """Number of resolutions currently in flight."""
        return len(self._queue)

    @property
    def name(self) -> str:
        return f"{self.inner.name}@gap{self.gap}"
