"""Pipelined prediction model: prediction gap, speculative state, catch-up."""

from .branch import BranchPredictor, BranchPredictorConfig
from .delayed import PipelinedPredictor

__all__ = ["BranchPredictor", "BranchPredictorConfig", "PipelinedPredictor"]
