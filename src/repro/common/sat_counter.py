"""Saturating counters and related confidence primitives.

The paper (Section 3.4) uses saturating counters that are *incremented on a
correct prediction and reset on a misprediction*, firing only at a threshold
value (typically 2 or 3); an optional hysteresis variant decrements instead
of resetting.  The hybrid selector (Section 3.7) uses a classic 2-bit
up/down counter with four states.
"""

from __future__ import annotations

__all__ = ["SaturatingCounter", "UpDownCounter"]


class SaturatingCounter:
    """Confidence counter: +1 on correct, reset (or -1) on incorrect.

    Parameters
    ----------
    threshold:
        Value at and above which the counter reports confidence.
    maximum:
        Saturation ceiling; defaults to ``threshold``.
    hysteresis:
        When true, an incorrect outcome decrements instead of resetting —
        the "extra bit" hysteresis behaviour mentioned in Section 3.4.
    initial:
        Starting value (0 = untrained).
    """

    __slots__ = ("value", "threshold", "maximum", "hysteresis")

    def __init__(
        self,
        threshold: int = 2,
        maximum: int | None = None,
        hysteresis: bool = False,
        initial: int = 0,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.maximum = threshold if maximum is None else maximum
        if self.maximum < threshold:
            raise ValueError("maximum must be >= threshold")
        if not 0 <= initial <= self.maximum:
            raise ValueError("initial value out of range")
        self.hysteresis = hysteresis
        self.value = initial

    @property
    def confident(self) -> bool:
        """True when the counter has reached its firing threshold."""
        return self.value >= self.threshold

    def update(self, correct: bool) -> None:
        """Train on one outcome."""
        if correct:
            if self.value < self.maximum:
                self.value += 1
        elif self.hysteresis:
            if self.value > 0:
                self.value -= 1
        else:
            self.value = 0

    def reset(self) -> None:
        """Return to the untrained state."""
        self.value = 0

    def snapshot(self) -> int:
        """Current raw value (for speculative checkpointing)."""
        return self.value

    def restore(self, value: int) -> None:
        """Restore a previously snapshotted value."""
        if not 0 <= value <= self.maximum:
            raise ValueError("restored value out of range")
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SaturatingCounter(value={self.value}, threshold={self.threshold},"
            f" maximum={self.maximum}, hysteresis={self.hysteresis})"
        )


class UpDownCounter:
    """An n-bit up/down saturating counter (the hybrid's dynamic selector).

    With ``width=2`` the four states are 0 (strong A), 1 (weak A),
    2 (weak B), 3 (strong B).  The paper initialises the selector biased
    towards "weak CAP" (state 2 when A=stride, B=CAP).
    """

    __slots__ = ("value", "maximum")

    def __init__(self, width: int = 2, initial: int = 0) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.maximum = (1 << width) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError("initial value out of range")
        self.value = initial

    @property
    def midpoint(self) -> float:
        """The boundary between the two halves of the state space."""
        return self.maximum / 2

    @property
    def favors_high(self) -> bool:
        """True when the counter currently selects the "high" component."""
        return self.value > self.midpoint

    def up(self) -> None:
        """Move one state towards the high component."""
        if self.value < self.maximum:
            self.value += 1

    def down(self) -> None:
        """Move one state towards the low component."""
        if self.value > 0:
            self.value -= 1

    def state_name(self, low: str = "A", high: str = "B") -> str:
        """Human-readable state label, e.g. ``"weak CAP"``."""
        if self.value <= self.midpoint:
            strength = "strong" if self.value == 0 else "weak"
            return f"{strength} {low}"
        strength = "strong" if self.value == self.maximum else "weak"
        return f"{strength} {high}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UpDownCounter(value={self.value}, maximum={self.maximum})"
