"""Shared low-level building blocks: bit manipulation, counters, tables."""

from .bitops import (
    bits,
    fold_xor,
    high_bits,
    is_power_of_two,
    log2_exact,
    low_bits,
    mask,
    popcount,
    sign_extend,
    truncate,
)
from .sat_counter import SaturatingCounter, UpDownCounter
from .stats import Distribution, RateCounter, geometric_mean, weighted_mean
from .tables import DirectMappedTable, SetAssociativeTable

__all__ = [
    "bits",
    "fold_xor",
    "high_bits",
    "is_power_of_two",
    "log2_exact",
    "low_bits",
    "mask",
    "popcount",
    "sign_extend",
    "truncate",
    "SaturatingCounter",
    "UpDownCounter",
    "Distribution",
    "RateCounter",
    "geometric_mean",
    "weighted_mean",
    "DirectMappedTable",
    "SetAssociativeTable",
]
