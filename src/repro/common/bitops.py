"""Bit-level helpers used throughout the predictor structures.

All predictor tables in the paper operate on fixed-width unsigned fields
(history registers, tags, base addresses, branch-history bits).  Python
integers are unbounded, so every structure masks its fields explicitly via
the helpers here.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "bits",
    "bit_slice",
    "truncate",
    "low_bits",
    "high_bits",
    "sign_extend",
    "fold_xor",
    "popcount",
    "is_power_of_two",
    "log2_exact",
]


def mask(width: int) -> int:
    """Return a bit mask of ``width`` ones (``mask(4) == 0b1111``)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bits(value: int, lo: int, hi: int) -> int:
    """Extract bits ``[lo, hi)`` of ``value`` (lo inclusive, hi exclusive).

    ``bits(0b10110, 1, 4) == 0b011``.
    """
    if lo < 0 or hi < lo:
        raise ValueError(f"invalid bit range [{lo}, {hi})")
    return (value >> lo) & mask(hi - lo)


# Alias with a name that reads better at some call sites.
bit_slice = bits


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to its low ``width`` bits."""
    return value & mask(width)


def low_bits(value: int, width: int) -> int:
    """Return the ``width`` least-significant bits of ``value``."""
    return value & mask(width)


def high_bits(value: int, total_width: int, width: int) -> int:
    """Return the ``width`` most-significant bits of a ``total_width``-bit value."""
    if width > total_width:
        raise ValueError(
            f"cannot take {width} high bits of a {total_width}-bit value"
        )
    return (value >> (total_width - width)) & mask(width)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement int."""
    value = truncate(value, width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def fold_xor(value: int, width: int) -> int:
    """Fold an arbitrarily long value into ``width`` bits by repeated xor.

    Used to compress long addresses into short table indices while letting
    every input bit influence the result.
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    folded = 0
    value = abs(value)
    while value:
        folded ^= value & mask(width)
        value >>= width
    return folded


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount requires a non-negative value")
    return bin(value).count("1")


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
