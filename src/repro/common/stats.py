"""Lightweight statistics helpers shared by the evaluation layer."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["RateCounter", "Distribution", "weighted_mean", "geometric_mean"]


@dataclass
class RateCounter:
    """Counts events against a population and reports the rate.

    ``hits / total`` with a well-defined value (0.0) for an empty population.
    """

    hits: int = 0
    total: int = 0

    def record(self, hit: bool) -> None:
        """Count one trial."""
        self.total += 1
        if hit:
            self.hits += 1

    def add(self, other: "RateCounter") -> None:
        """Accumulate another counter into this one."""
        self.hits += other.hits
        self.total += other.total

    @property
    def rate(self) -> float:
        """Fraction of hits (0.0 when nothing was recorded)."""
        return self.hits / self.total if self.total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RateCounter({self.hits}/{self.total} = {self.rate:.4f})"


@dataclass
class Distribution:
    """A categorical distribution over string-labelled buckets."""

    counts: Counter[str] = field(default_factory=Counter)

    def record(self, label: str, weight: int = 1) -> None:
        """Add ``weight`` observations of ``label``."""
        self.counts[label] += weight

    def add(self, other: "Distribution") -> None:
        """Accumulate another distribution into this one."""
        self.counts.update(other.counts)

    @property
    def total(self) -> int:
        """Total observation count."""
        return sum(self.counts.values())

    def fraction(self, label: str) -> float:
        """Share of observations carrying ``label``."""
        total = self.total
        return self.counts[label] / total if total else 0.0

    def fractions(self) -> Dict[str, float]:
        """All label shares, in insertion order of the counter."""
        total = self.total
        if not total:
            return {}
        return {label: count / total for label, count in self.counts.items()}


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean of ``(value, weight)`` pairs; 0.0 when weights sum to zero."""
    num = 0.0
    den = 0.0
    for value, weight in pairs:
        num += value * weight
        den += weight
    return num / den if den else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for speedup averaging)."""
    logsum = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        logsum += math.log(value)
        count += 1
    if not count:
        return 0.0
    return math.exp(logsum / count)


def merge_rate_maps(
    maps: Iterable[Mapping[str, RateCounter]],
) -> Dict[str, RateCounter]:
    """Merge several ``{label: RateCounter}`` mappings by summation."""
    merged: Dict[str, RateCounter] = {}
    for mapping in maps:
        for label, counter in mapping.items():
            if label not in merged:
                merged[label] = RateCounter()
            merged[label].add(counter)
    return merged
