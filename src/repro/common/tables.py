"""Generic hardware-style lookup tables.

The Load Buffer is a set-associative, tag-matched structure indexed by the
load instruction pointer; the Link Table is (by default) a direct-mapped
structure indexed by history bits.  Both are built on the two classes here.

Entries are arbitrary objects supplied by the caller; the tables manage
indexing, tag matching, LRU replacement and occupancy statistics only.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

from .bitops import is_power_of_two, log2_exact, mask

E = TypeVar("E")

__all__ = ["SetAssociativeTable", "DirectMappedTable"]


class _Way(Generic[E]):
    """One way of one set: a (tag, entry, lru) triple."""

    __slots__ = ("tag", "entry", "lru")

    def __init__(self) -> None:
        self.tag: Optional[int] = None
        self.entry: Optional[E] = None
        self.lru: int = 0

    @property
    def valid(self) -> bool:
        return self.tag is not None


class SetAssociativeTable(Generic[E]):
    """A set-associative table with true-LRU replacement.

    Keys are arbitrary integers (e.g. instruction pointers).  The low
    ``log2(num_sets)`` bits select the set and the remaining high bits form
    the tag, mirroring a hardware indexed/tagged structure.

    Parameters
    ----------
    entries:
        Total entry count (must be a power of two).
    ways:
        Associativity; ``entries`` must be divisible by ``ways``.
    """

    def __init__(self, entries: int, ways: int = 1) -> None:
        if not is_power_of_two(entries):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if ways < 1 or entries % ways:
            raise ValueError(f"ways={ways} does not divide entries={entries}")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        if not is_power_of_two(self.num_sets):
            raise ValueError("entries/ways must be a power of two")
        self.index_bits = log2_exact(self.num_sets)
        self._sets: List[List[_Way[E]]] = [
            [_Way() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- indexing -------------------------------------------------------

    def _split(self, key: int) -> Tuple[int, int]:
        index = key & mask(self.index_bits)
        tag = key >> self.index_bits
        return index, tag

    # -- operations -----------------------------------------------------

    def lookup(self, key: int) -> Optional[E]:
        """Return the entry for ``key``, updating LRU, or ``None`` on miss."""
        index, tag = self._split(key)
        for way in self._sets[index]:
            if way.valid and way.tag == tag:
                self._clock += 1
                way.lru = self._clock
                self.hits += 1
                return way.entry
        self.misses += 1
        return None

    def peek(self, key: int) -> Optional[E]:
        """Like :meth:`lookup` but without touching LRU or statistics."""
        index, tag = self._split(key)
        for way in self._sets[index]:
            if way.valid and way.tag == tag:
                return way.entry
        return None

    def insert(self, key: int, entry: E) -> Optional[E]:
        """Insert ``entry`` under ``key``; return any evicted entry.

        If ``key`` is already present its entry is replaced in place (no
        eviction is reported).
        """
        index, tag = self._split(key)
        ways = self._sets[index]
        self._clock += 1
        # Replace in place on a tag match.
        for way in ways:
            if way.valid and way.tag == tag:
                way.entry = entry
                way.lru = self._clock
                return None
        # Fill an invalid way if one exists.
        for way in ways:
            if not way.valid:
                way.tag = tag
                way.entry = entry
                way.lru = self._clock
                return None
        # Evict the LRU way.
        victim = min(ways, key=lambda w: w.lru)
        evicted = victim.entry
        victim.tag = tag
        victim.entry = entry
        victim.lru = self._clock
        self.evictions += 1
        return evicted

    def get_or_insert(self, key: int, factory: Callable[[], E]) -> Tuple[E, bool]:
        """Return ``(entry, hit)``; on miss create one via ``factory``."""
        found = self.lookup(key)
        if found is not None:
            return found, True
        created = factory()
        self.insert(key, created)
        return created, False

    def invalidate(self, key: int) -> bool:
        """Remove ``key`` from the table; return whether it was present."""
        index, tag = self._split(key)
        for way in self._sets[index]:
            if way.valid and way.tag == tag:
                way.tag = None
                way.entry = None
                way.lru = 0
                return True
        return False

    def clear(self) -> None:
        """Invalidate every entry and reset statistics."""
        for ways in self._sets:
            for way in ways:
                way.tag = None
                way.entry = None
                way.lru = 0
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- introspection ---------------------------------------------------

    def occupancy(self) -> int:
        """Number of valid entries currently resident."""
        return sum(1 for ways in self._sets for w in ways if w.valid)

    def __iter__(self) -> Iterator[Tuple[int, E]]:
        """Yield ``(key, entry)`` for every valid entry."""
        for index, ways in enumerate(self._sets):
            for way in ways:
                if way.valid:
                    assert way.tag is not None and way.entry is not None
                    yield (way.tag << self.index_bits) | index, way.entry

    def __len__(self) -> int:
        return self.occupancy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssociativeTable(entries={self.entries}, ways={self.ways},"
            f" occupancy={self.occupancy()})"
        )


class DirectMappedTable(Generic[E]):
    """A direct-mapped, untagged table: index bits select the slot directly.

    This matches the paper's Link Table organisation — the LT is indexed by
    the low bits of the history value; any tag matching (Section 3.4 "LT
    Tags") is the *caller's* responsibility because the tag lives inside the
    entry and is compared as a confidence mechanism, not as a hit/miss
    condition.
    """

    def __init__(self, entries: int) -> None:
        if not is_power_of_two(entries):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self.index_bits = log2_exact(entries)
        self._slots: List[Optional[E]] = [None] * entries
        self.conflict_writes = 0

    def index_of(self, key: int) -> int:
        """Slot index for ``key`` (its low ``index_bits`` bits)."""
        return key & mask(self.index_bits)

    def lookup(self, key: int) -> Optional[E]:
        """Return the slot contents for ``key`` (may be ``None``)."""
        return self._slots[self.index_of(key)]

    def insert(self, key: int, entry: E) -> None:
        """Write ``entry`` into the slot for ``key``."""
        index = self.index_of(key)
        if self._slots[index] is not None:
            self.conflict_writes += 1
        self._slots[index] = entry

    def get_or_insert(self, key: int, factory: Callable[[], E]) -> Tuple[E, bool]:
        """Return ``(entry, existed)``; on empty slot create via ``factory``."""
        index = self.index_of(key)
        existing = self._slots[index]
        if existing is not None:
            return existing, True
        created = factory()
        self._slots[index] = created
        return created, False

    def clear(self) -> None:
        """Empty every slot."""
        self._slots = [None] * self.entries
        self.conflict_writes = 0

    def occupancy(self) -> int:
        """Number of non-empty slots."""
        return sum(1 for slot in self._slots if slot is not None)

    def __iter__(self) -> Iterator[Tuple[int, E]]:
        """Yield ``(index, entry)`` for every non-empty slot."""
        for index, slot in enumerate(self._slots):
            if slot is not None:
                yield index, slot

    def __len__(self) -> int:
        return self.occupancy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DirectMappedTable(entries={self.entries},"
            f" occupancy={self.occupancy()})"
        )
