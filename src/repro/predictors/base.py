"""Common interface for all load-address predictors.

The contract mirrors the paper's machine model:

1. For every dynamic load, :meth:`AddressPredictor.predict` is called with
   the load's IP and immediate offset.  It returns a :class:`Prediction`
   saying whether an address was produced and whether the confidence
   machinery authorised a *speculative access* (the paper's prediction-rate
   metric counts speculative accesses only).
2. When the actual effective address resolves,
   :meth:`AddressPredictor.update` trains the tables.  In the immediate
   model of Section 4 this happens right after the prediction; the
   pipelined model of Section 5 delays it by the prediction gap.
3. Conditional-branch outcomes are fed through :meth:`on_branch` so
   predictors can maintain a global branch-history register (GHR); calls
   and returns are fed through :meth:`on_call`/:meth:`on_return` for
   call-path-history schemes (Section 3.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..common.bitops import mask

__all__ = ["Prediction", "AddressPredictor"]


@dataclass
class Prediction:
    """Outcome of one prediction attempt.

    Attributes
    ----------
    address:
        The predicted effective address, or ``None`` when the predictor had
        nothing to offer (table miss, no link, etc.).
    speculative:
        True when every confidence mechanism agreed and a speculative cache
        access would be initiated.  Only speculative accesses count towards
        the paper's prediction-rate and accuracy metrics.
    source:
        Which component produced the address (``"stride"``, ``"cap"``,
        ``"last"``, ``"gshare"``...).  Used by the hybrid's selector
        statistics.
    ghr:
        Snapshot of the global branch-history register at prediction time,
        so a delayed update (pipelined model) trains the control-flow
        indications against the path the prediction was actually made on.
    info:
        Free-form per-prediction metadata (the hybrid stores each
        component's sub-prediction here for selector training and
        statistics).
    """

    address: Optional[int] = None
    speculative: bool = False
    source: str = ""
    ghr: int = 0
    info: Optional[dict] = None

    @property
    def made(self) -> bool:
        """True when an address was produced (speculative or not)."""
        return self.address is not None

    def correct(self, actual: int) -> bool:
        """Whether the predicted address matches ``actual``."""
        return self.address is not None and self.address == actual


def lb_key(ip: int) -> int:
    """Table key for a load IP.

    Instruction pointers are 4-aligned in the mini-ISA (and mostly aligned
    in any ISA), so indexing a set-associative table with the raw IP would
    leave three quarters of the sets unused.  Dropping the two known-zero
    bits restores full set utilisation — the same trick hardware indexed
    structures use.
    """
    return ip >> 2


class AddressPredictor:
    """Abstract base class; concrete predictors override predict/update."""

    #: Width of the global branch-history register.
    GHR_BITS = 16
    #: Depth of the call-path history (recent call-site IPs).
    PATH_DEPTH = 4

    def __init__(self) -> None:
        self.ghr = 0
        self.call_path: list[int] = []
        # Attribution sink (telemetry Instrumentation protocol), attached
        # from the outside by repro.telemetry.instrument_predictor.  Wiring,
        # not learned state: reset() forgets tables, never the probe.
        self.probe: Optional[Any] = None

    # -- core interface ------------------------------------------------------

    def predict(self, ip: int, offset: int) -> Prediction:
        """Predict the address of the load at ``ip`` with immediate ``offset``."""
        raise NotImplementedError

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        """Train on the resolved address ``actual`` for the load at ``ip``.

        ``prediction`` is the object previously returned by
        :meth:`predict` for this dynamic instance (the pipelined model may
        resolve it many predictions later).
        """
        raise NotImplementedError

    # -- control-flow notifications -----------------------------------------

    def on_branch(self, ip: int, taken: bool) -> None:
        """Record a conditional-branch outcome into the GHR."""
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & mask(self.GHR_BITS)

    def on_call(self, ip: int) -> None:
        """Record a call-site IP into the path history."""
        self.call_path.append(ip)
        if len(self.call_path) > self.PATH_DEPTH:
            del self.call_path[0]

    def on_return(self, ip: int) -> None:
        """Record a return (pops nothing by default; kept for symmetry)."""

    # -- housekeeping ----------------------------------------------------------

    def reset(self) -> None:
        """Forget all learned state (tables and histories)."""
        self.ghr = 0
        self.call_path = []

    @property
    def name(self) -> str:
        """Short display name."""
        return type(self).__name__
