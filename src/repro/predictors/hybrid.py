"""Hybrid CAP/stride predictor with a dynamic selector (Sections 3.7, 4.3-4.4).

One shared Load Buffer holds, per static load, both components' fields plus
a 2-bit selector counter.  Both components predict every dynamic load and
both are trained on every resolution (the LB is "always updated"); the LT
may be updated selectively (Section 4.3 policies).  A speculative access is
made when at least one component is confident; when both are, the selector
chooses (initially biased towards *weak CAP*, because CAP's base
misprediction rate is lower).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..common.sat_counter import UpDownCounter
from ..common.stats import Distribution, RateCounter
from ..common.tables import SetAssociativeTable
from .base import AddressPredictor, Prediction, lb_key
from .cap import CAPComponent, CAPConfig, CAPState
from .stride import StrideConfig, StrideLogic, StrideState

__all__ = [
    "UPDATE_ALWAYS",
    "UPDATE_UNLESS_STRIDE_CORRECT",
    "UPDATE_UNLESS_STRIDE_SELECTED",
    "HybridConfig",
    "HybridEntry",
    "HybridPredictor",
]

#: Update the LT on every resolved load (the paper's winner, Section 4.3).
UPDATE_ALWAYS = "always"
#: Skip the LT update when the stride component predicted correctly.
UPDATE_UNLESS_STRIDE_CORRECT = "unless_stride_correct"
#: Skip it only when stride was correct *and* its prediction was the one
#: selected for the speculative access.
UPDATE_UNLESS_STRIDE_SELECTED = "unless_stride_selected"

_POLICIES = (
    UPDATE_ALWAYS, UPDATE_UNLESS_STRIDE_CORRECT, UPDATE_UNLESS_STRIDE_SELECTED,
)

#: Selector component order: counter low half selects stride, high half CAP.
_STRIDE, _CAP = "stride", "cap"


@dataclass(frozen=True)
class HybridConfig:
    """Hybrid parameters.

    The shared LB geometry is set here (``lb_entries``/``lb_ways``); the
    per-component table fields inside ``cap``/``stride`` are ignored.
    """

    lb_entries: int = 4096
    lb_ways: int = 2
    cap: CAPConfig = field(default_factory=CAPConfig)
    stride: StrideConfig = field(default_factory=StrideConfig)
    selector_bits: int = 2
    selector_init: int = 2  # "weak CAP"
    static_selector: Optional[str] = None  # "cap"/"stride" for a static priority
    lt_update_policy: str = UPDATE_ALWAYS

    def __post_init__(self) -> None:
        if self.lt_update_policy not in _POLICIES:
            raise ValueError(
                f"unknown LT update policy {self.lt_update_policy!r}"
            )
        if self.static_selector not in (None, _CAP, _STRIDE):
            raise ValueError(
                f"static_selector must be None, 'cap' or 'stride',"
                f" got {self.static_selector!r}"
            )
        if not 0 <= self.selector_init < (1 << self.selector_bits):
            raise ValueError("selector_init out of range")


class HybridEntry:
    """One shared-LB entry: CAP fields + stride fields + selector."""

    __slots__ = ("cap", "stride", "selector")

    def __init__(self, config: HybridConfig, offset: int) -> None:
        self.cap = CAPState(config.cap, offset)
        self.stride = StrideState(config.stride)
        self.selector = UpDownCounter(
            width=config.selector_bits, initial=config.selector_init
        )


@dataclass
class SelectorStats:
    """Figure 8 bookkeeping: selector behaviour on dual predictions."""

    #: Selector-state distribution over loads predicted by both components.
    states: Distribution = field(default_factory=Distribution)
    #: Correct-selection rate over dual speculative accesses (a
    #: miss-selection is a misprediction where the other component was right).
    selection: RateCounter = field(default_factory=RateCounter)
    #: Speculative accesses where both components offered an address.
    dual_speculative: int = 0
    #: All speculative accesses.
    speculative: int = 0


class HybridPredictor(AddressPredictor):
    """The paper's flagship predictor: shared-LB hybrid CAP/stride."""

    #: Batch-kernel capability flag (see :mod:`repro.kernels`); the
    #: dispatcher additionally declines when ``speculative_mode`` is set,
    #: and the kernel itself falls back for ``unless_stride_selected``.
    supports_batch = True

    def __init__(self, config: HybridConfig | None = None) -> None:
        super().__init__()
        self.config = config or HybridConfig()
        self.cap = CAPComponent(self.config.cap)
        self.stride_logic = StrideLogic(self.config.stride)
        self.load_buffer: SetAssociativeTable[HybridEntry] = SetAssociativeTable(
            self.config.lb_entries, self.config.lb_ways
        )
        self.selector_stats = SelectorStats()
        self.speculative_mode = False

    # -- prediction ----------------------------------------------------------

    def _select(self, entry: HybridEntry) -> str:
        if self.config.static_selector is not None:
            return self.config.static_selector
        return _CAP if entry.selector.favors_high else _STRIDE

    def predict(self, ip: int, offset: int) -> Prediction:
        entry = self.load_buffer.lookup(lb_key(ip))
        if entry is None:
            if self.probe is not None:
                self.probe.lb_miss()
            entry = HybridEntry(self.config, offset)
            if self.speculative_mode:
                # This very instance is now in flight for both components.
                entry.cap.pending = 1
                entry.stride.pending = 1
            self.load_buffer.insert(lb_key(ip), entry)
            return Prediction(source="hybrid", ghr=self.ghr)

        ghr = self.ghr
        cap_pred = self.cap.predict(
            entry.cap, ghr, speculative_mode=self.speculative_mode
        )
        stride_pred = self.stride_logic.predict(
            entry.stride, ghr, speculative_mode=self.speculative_mode
        )
        stride_pred.ghr = ghr

        both_made = cap_pred.made and stride_pred.made
        if both_made:
            self.selector_stats.states.record(
                entry.selector.state_name(low=_STRIDE, high=_CAP)
            )

        # Component choice: a confident component wins outright; when both
        # are confident the selector arbitrates; with no confident component
        # the selector's favourite still provides the (non-speculative)
        # prediction for a LB hit.
        if cap_pred.speculative and stride_pred.speculative:
            selected = self._select(entry)
        elif cap_pred.speculative:
            selected = _CAP
        elif stride_pred.speculative:
            selected = _STRIDE
        elif cap_pred.made and not stride_pred.made:
            selected = _CAP
        elif stride_pred.made and not cap_pred.made:
            selected = _STRIDE
        else:
            selected = self._select(entry)

        chosen = cap_pred if selected == _CAP else stride_pred
        prediction = Prediction(
            address=chosen.address,
            speculative=chosen.speculative,
            source=selected,
            ghr=ghr,
            info={
                "cap": cap_pred,
                "stride": stride_pred,
                "selector_state": entry.selector.value,
            },
        )
        if prediction.speculative:
            self.selector_stats.speculative += 1
            if cap_pred.made and stride_pred.made:
                self.selector_stats.dual_speculative += 1
            if self.probe is not None:
                self.probe.selector_choice(selected)
        return prediction

    # -- training -------------------------------------------------------------

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        entry = self.load_buffer.lookup(lb_key(ip))
        if entry is None:
            entry = HybridEntry(self.config, offset)
            self.load_buffer.insert(lb_key(ip), entry)

        info = prediction.info or {}
        cap_pred: Optional[Prediction] = info.get("cap")
        stride_pred: Optional[Prediction] = info.get("stride")
        cap_addr = cap_pred.address if cap_pred else None
        stride_addr = stride_pred.address if stride_pred else None
        selected = prediction.source

        cap_correct = cap_addr == actual if cap_addr is not None else None
        stride_correct = (
            stride_addr == actual if stride_addr is not None else None
        )

        # -- Section 4.3 LT update policy --------------------------------
        policy = self.config.lt_update_policy
        update_lt = True
        if policy == UPDATE_UNLESS_STRIDE_CORRECT:
            update_lt = not bool(stride_correct)
        elif policy == UPDATE_UNLESS_STRIDE_SELECTED:
            update_lt = not (
                bool(stride_correct)
                and selected == _STRIDE
                and prediction.speculative
            )

        # -- train both components (the LB is always updated) -------------
        self.cap.train(
            entry.cap,
            actual,
            predicted_addr=cap_addr,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative and selected == _CAP,
            update_lt=update_lt,
            speculative_mode=self.speculative_mode,
        )
        self.stride_logic.train(
            entry.stride,
            actual,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative and selected == _STRIDE,
            predicted_addr=stride_addr,
            had_prediction=stride_pred is not None,
            speculative_mode=self.speculative_mode,
        )

        # -- selector training (relative performance) ----------------------
        if cap_correct is not None and stride_correct is not None:
            if cap_correct and not stride_correct:
                entry.selector.up()
            elif stride_correct and not cap_correct:
                entry.selector.down()

        # -- Figure 8 selection-quality statistics --------------------------
        if (
            prediction.speculative
            and cap_addr is not None
            and stride_addr is not None
        ):
            final_correct = prediction.address == actual
            other_correct = (
                stride_correct if selected == _CAP else cap_correct
            )
            miss_selection = (not final_correct) and bool(other_correct)
            self.selector_stats.selection.record(not miss_selection)

    def predict_batch(self, batch):
        """Pure batch solver (see :mod:`repro.kernels.hybrid`)."""
        from ..kernels.hybrid import plan_hybrid

        return plan_hybrid(self, batch)

    def update_batch(self, batch, result) -> None:
        """Commit a batch result's end state into the live tables."""
        from ..kernels.hybrid import commit_hybrid

        commit_hybrid(self, batch, result)

    def reset(self) -> None:
        super().reset()
        self.load_buffer.clear()
        self.cap.reset()
        self.selector_stats = SelectorStats()

    @property
    def name(self) -> str:
        return "hybrid"
