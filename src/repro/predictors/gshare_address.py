"""Control-based address predictors (Section 3.6).

The paper evaluates — and rejects — predicting load addresses with
branch-predictor-like structures: a **g-share** scheme xors the load IP
with the global branch-history register to index a table of predicted
addresses.  It "gives poor results mainly because the loads are not well
correlated to all the individual conditional branches"; using a **path
history over recent call sites** instead "gives better results" but still
not enough to substitute for CAP.  Both variants are implemented here so
the claim can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.bitops import fold_xor, mask
from ..common.sat_counter import SaturatingCounter
from ..common.tables import DirectMappedTable
from .base import AddressPredictor, Prediction

__all__ = ["GShareAddressConfig", "GShareAddressPredictor"]

#: Index with IP xor branch GHR (classic g-share).
HISTORY_BRANCH = "branch"
#: Index with IP xor a hash of recent call-site IPs (call-path history).
HISTORY_CALL_PATH = "call_path"


@dataclass(frozen=True)
class GShareAddressConfig:
    """Geometry and history source of the control-based predictor."""

    entries: int = 4096
    history_mode: str = HISTORY_BRANCH
    history_bits: int = 8
    confidence_threshold: int = 2
    confidence_max: Optional[int] = None

    def __post_init__(self) -> None:
        if self.history_mode not in (HISTORY_BRANCH, HISTORY_CALL_PATH):
            raise ValueError(f"unknown history mode {self.history_mode!r}")


class _Entry:
    __slots__ = ("address", "confidence")

    def __init__(self, config: GShareAddressConfig) -> None:
        self.address: Optional[int] = None
        self.confidence = SaturatingCounter(
            threshold=config.confidence_threshold,
            maximum=config.confidence_max,
        )


class GShareAddressPredictor(AddressPredictor):
    """Table of predicted addresses indexed by IP xor control history."""

    #: Batch-kernel capability flag (see :mod:`repro.kernels`).
    supports_batch = True

    def __init__(self, config: GShareAddressConfig | None = None) -> None:
        super().__init__()
        self.config = config or GShareAddressConfig()
        self.table: DirectMappedTable[_Entry] = DirectMappedTable(
            self.config.entries
        )

    def _control_history(self) -> int:
        if self.config.history_mode == HISTORY_BRANCH:
            return self.ghr & mask(self.config.history_bits)
        # Path history: fold the recent call-site IPs together, shifting so
        # order matters (an a-c-u-a call pattern must differ from u-c-a-a).
        value = 0
        for ip in self.call_path:
            value = ((value << 3) ^ (ip >> 2)) & mask(30)
        return fold_xor(value, self.config.history_bits)

    def _index(self, ip: int) -> int:
        folded_ip = fold_xor(ip >> 2, self.table.index_bits)
        return folded_ip ^ self._control_history()

    def predict(self, ip: int, offset: int) -> Prediction:
        index = self._index(ip)
        entry = self.table.lookup(index)
        if entry is None or entry.address is None:
            return Prediction(source="gshare", ghr=self.ghr)
        return Prediction(
            address=entry.address,
            speculative=entry.confidence.confident,
            source="gshare",
            ghr=self.ghr,
            info={"index": index},
        )

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        # Re-derive the index the prediction used when available; otherwise
        # use the current control history (immediate-update equivalence).
        if prediction.info and "index" in prediction.info:
            index = prediction.info["index"]
        else:
            index = self._index(ip)
        entry, _ = self.table.get_or_insert(index, lambda: _Entry(self.config))
        if entry.address is not None:
            entry.confidence.update(entry.address == actual)
        entry.address = actual

    def predict_batch(self, batch):
        """Pure batch solver (see :mod:`repro.kernels.gshare`)."""
        from ..kernels.gshare import plan_gshare

        return plan_gshare(self, batch)

    def update_batch(self, batch, result) -> None:
        """Commit a batch result's end state into the live table."""
        from ..kernels.gshare import commit_gshare

        commit_gshare(self, batch, result)

    def reset(self) -> None:
        super().reset()
        self.table.clear()

    @property
    def name(self) -> str:
        mode = self.config.history_mode
        return "gshare-addr" if mode == HISTORY_BRANCH else "path-addr"
