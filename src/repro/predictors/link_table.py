"""The Link Table (LT): context -> next-address links (Sections 3.1–3.5).

The LT is indexed by the low bits of a load's history value.  Three paper
mechanisms live here:

* **LT tags** (Section 3.4): the history is made wider than the index and
  its high bits are stored as a tag; speculative accesses require a tag
  match.  Tags also enable a set-associative LT.
* **PF bits** (Section 3.5): a few bits (2..5) of the last value written.
  The link/tag fields are overwritten only when the incoming value's PF
  bits match the stored ones — i.e. a link must be seen twice in a row —
  which keeps non-recurring or over-long sequences from polluting the LT
  and adds hysteresis.
* **Decoupled PF table** (Section 3.5, after [Mora98]): optionally the PF
  bits move to a larger direct-mapped side table indexed by more history
  bits, giving finer granularity for the same LT size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..common.bitops import bits, mask

__all__ = ["LinkTableConfig", "LinkEntry", "LinkTable"]


@dataclass(frozen=True)
class LinkTableConfig:
    """Geometry and feature switches for a Link Table."""

    entries: int = 4096
    ways: int = 1
    tag_bits: int = 8
    pf_bits: int = 4
    pf_low_bit: int = 2
    pf_decoupled: bool = False
    pf_table_entries: int = 16384

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries & (self.entries - 1):
            raise ValueError("entries must be a positive power of two")
        if self.ways < 1 or self.entries % self.ways:
            raise ValueError("ways must divide entries")
        sets = self.entries // self.ways
        if sets & (sets - 1):
            raise ValueError("entries/ways must be a power of two")
        if self.ways > 1 and self.tag_bits == 0:
            raise ValueError("a set-associative LT requires tags (tag_bits > 0)")
        if self.tag_bits < 0 or self.pf_bits < 0:
            raise ValueError("bit widths must be non-negative")

    @property
    def index_bits(self) -> int:
        """Bits of history used for set selection."""
        return (self.entries // self.ways).bit_length() - 1

    @property
    def history_bits(self) -> int:
        """Total history width: index plus tag."""
        return self.index_bits + self.tag_bits


class LinkEntry:
    """One LT way."""

    __slots__ = ("link", "tag", "pf", "stamp")

    def __init__(self) -> None:
        self.link: Optional[int] = None  # predicted (base) address or delta
        self.tag: Optional[int] = None
        self.pf: Optional[int] = None
        self.stamp = 0                   # LRU / recency clock

    @property
    def valid(self) -> bool:
        return self.link is not None


class LinkTable:
    """History-indexed link storage with tags and PF-gated updates."""

    def __init__(self, config: LinkTableConfig | None = None) -> None:
        self.config = config or LinkTableConfig()
        cfg = self.config
        self.num_sets = cfg.entries // cfg.ways
        self._index_mask = mask(cfg.index_bits)
        self._sets: List[List[LinkEntry]] = [
            [LinkEntry() for _ in range(cfg.ways)] for _ in range(self.num_sets)
        ]
        self._clock = 0
        # Decoupled PF side table (optional).
        if cfg.pf_decoupled:
            if cfg.pf_table_entries & (cfg.pf_table_entries - 1):
                raise ValueError("pf_table_entries must be a power of two")
            self._pf_table: Optional[List[Optional[int]]] = (
                [None] * cfg.pf_table_entries
            )
            self._pf_index_mask = mask(cfg.pf_table_entries.bit_length() - 1)
        else:
            self._pf_table = None
            self._pf_index_mask = 0
        # Statistics.
        self.lookups = 0
        self.tag_mismatches = 0
        self.pf_rejections = 0
        self.link_writes = 0
        # Attribution sink (attached externally by the telemetry layer).
        self.probe: Optional[Any] = None

    # -- field extraction ----------------------------------------------------

    def _index(self, history: int) -> int:
        return history & self._index_mask

    def _tag(self, history: int) -> int:
        cfg = self.config
        if cfg.tag_bits == 0:
            return 0
        return (history >> cfg.index_bits) & mask(cfg.tag_bits)

    def _pf_of(self, value: int) -> int:
        cfg = self.config
        return bits(value, cfg.pf_low_bit, cfg.pf_low_bit + cfg.pf_bits)

    # -- prediction path ---------------------------------------------------------

    def lookup(self, history: int) -> Tuple[Optional[int], bool]:
        """Return ``(link, tag_ok)`` for this history context.

        ``link`` is the stored value of the best-matching way (``None`` when
        nothing useful is stored); ``tag_ok`` reports the Section 3.4 tag
        confidence check.  Without tags every valid link is ``tag_ok``.
        """
        self.lookups += 1
        ways = self._sets[self._index(history)]
        tag = self._tag(history)
        if self.config.tag_bits == 0:
            entry = ways[0]
            if entry.valid:
                return entry.link, True
            if self.probe is not None:
                self.probe.lt_miss()
            return None, False
        best: Optional[LinkEntry] = None
        for entry in ways:
            if entry.valid and entry.tag == tag:
                return entry.link, True
            if entry.valid and (best is None or entry.stamp > best.stamp):
                best = entry
        self.tag_mismatches += 1
        if self.probe is not None:
            # Attribution: a stored-but-mistagged link is a different cause
            # than an empty set (no link learned for this context at all).
            if best is not None:
                self.probe.lt_tag_mismatch()
            else:
                self.probe.lt_miss()
        # No tag match: the most recent link still gives a (low-confidence,
        # non-speculative) prediction, matching the paper's "a prediction is
        # always performed on a LB hit" wording.
        return (best.link, False) if best is not None else (None, False)

    # -- training path ----------------------------------------------------------

    def _pf_allows(self, history: int, entry: LinkEntry, value: int) -> bool:
        """Apply the PF filter; returns whether link/tag may be written.

        Always updates the stored PF bits themselves.
        """
        cfg = self.config
        if cfg.pf_bits == 0:
            return True
        pf_new = self._pf_of(value)
        if self._pf_table is not None:
            slot = history & self._pf_index_mask
            previous = self._pf_table[slot]
            self._pf_table[slot] = pf_new
        else:
            previous = entry.pf
            entry.pf = pf_new
        if previous == pf_new:
            return True
        self.pf_rejections += 1
        if self.probe is not None:
            self.probe.pf_rejection()
        return False

    def update(self, history: int, value: int) -> bool:
        """Record that context ``history`` was followed by ``value``.

        Returns True when the link was actually written (PF permitting).
        """
        ways = self._sets[self._index(history)]
        tag = self._tag(history)
        self._clock += 1

        # Choose the way: tag match first, then invalid, then LRU victim.
        target: Optional[LinkEntry] = None
        for entry in ways:
            if entry.valid and entry.tag == tag:
                target = entry
                break
        if target is None:
            for entry in ways:
                if not entry.valid:
                    target = entry
                    break
        if target is None:
            target = min(ways, key=lambda e: e.stamp)

        if not self._pf_allows(history, target, value):
            return False
        target.link = value
        target.tag = tag
        target.stamp = self._clock
        self.link_writes += 1
        return True

    # -- housekeeping ----------------------------------------------------------

    def clear(self) -> None:
        """Invalidate every entry and reset statistics."""
        for ways in self._sets:
            for entry in ways:
                entry.link = None
                entry.tag = None
                entry.pf = None
                entry.stamp = 0
        if self._pf_table is not None:
            self._pf_table = [None] * self.config.pf_table_entries
        self._clock = 0
        self.lookups = 0
        self.tag_mismatches = 0
        self.pf_rejections = 0
        self.link_writes = 0

    def occupancy(self) -> int:
        """Number of valid links stored."""
        return sum(1 for ways in self._sets for e in ways if e.valid)

    def dump(self) -> List[Tuple[int, int, int, Optional[int], Optional[int]]]:
        """Architectural contents: ``(set, way, link, tag, pf)`` per valid way.

        Recency stamps and statistics are excluded on purpose — two tables
        that store the same links are architecturally equal no matter how
        they got there.  The differential verification harness diffs this
        against the spec oracle's Link Table.
        """
        return [
            (set_index, way_index, entry.link, entry.tag, entry.pf)
            for set_index, ways in enumerate(self._sets)
            for way_index, entry in enumerate(ways)
            if entry.valid
        ]
