"""Profile-assisted address prediction (the paper's Section 6 future work).

    "Profile feedback/Software assist: to ease the hardware work by
    letting the compiler/profiler classify loads according to the expected
    address pattern: last value, stride, context based, unknown...  This
    reduces warm-up time, helps reducing predictor size, and eliminates
    prediction table pollution."

:func:`build_profile` runs the Section 2 analysis over a profiling trace
and produces a per-static-load classification.  The
:class:`ProfileGuidedPredictor` then routes each load to the component its
class calls for — constant/stride loads never touch the Link Table,
irregular loads never touch any table — so the same prediction quality
needs smaller structures and no PF-style pollution defence.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.patterns import (
    CLASS_CONSTANT,
    CLASS_CONTEXT,
    CLASS_IRREGULAR,
    CLASS_STRIDE,
    analyze_trace,
)
from ..trace.trace import Trace
from .base import AddressPredictor, Prediction
from .cap import CAPConfig, CAPPredictor
from .stride import StrideConfig, StridePredictor

__all__ = ["build_profile", "ProfileGuidedPredictor"]


def build_profile(trace: Trace, min_samples: int = 8) -> Dict[int, str]:
    """Profile a trace into ``{load IP: pattern class}``.

    This models the compiler/profiler pass: it may run on a different
    (training) input than the evaluation trace, just like real
    profile-guided optimisation.
    """
    analysis = analyze_trace(trace, min_samples=min_samples)
    return {profile.ip: profile.classification for profile in analysis.profiles}


class ProfileGuidedPredictor(AddressPredictor):
    """Route loads to components by their profiled pattern class.

    * ``constant`` / ``stride`` -> the stride component (a stride predictor
      with delta 0 *is* a last-address predictor), keeping the Link Table
      untouched;
    * ``context`` -> the CAP component;
    * ``irregular`` -> no table is allocated, trained or polluted;
    * unprofiled loads fall back to a configurable default class.
    """

    def __init__(
        self,
        profile: Dict[int, str],
        stride_config: Optional[StrideConfig] = None,
        cap_config: Optional[CAPConfig] = None,
        default_class: str = CLASS_STRIDE,
    ) -> None:
        super().__init__()
        if default_class not in (
            CLASS_CONSTANT, CLASS_STRIDE, CLASS_CONTEXT, CLASS_IRREGULAR,
        ):
            raise ValueError(f"unknown default class {default_class!r}")
        self.profile = dict(profile)
        self.default_class = default_class
        self.stride = StridePredictor(stride_config)
        self.cap = CAPPredictor(cap_config)
        self.speculative_mode = False
        # Statistics: how much table traffic the profile suppressed.
        self.suppressed_loads = 0

    def _route(self, ip: int) -> str:
        return self.profile.get(ip, self.default_class)

    def _sync_modes(self) -> None:
        self.stride.speculative_mode = self.speculative_mode
        self.cap.speculative_mode = self.speculative_mode

    # -- predictor interface ----------------------------------------------

    def predict(self, ip: int, offset: int) -> Prediction:
        self._sync_modes()
        route = self._route(ip)
        if route == CLASS_IRREGULAR:
            self.suppressed_loads += 1
            return Prediction(source="suppressed", ghr=self.ghr)
        if route == CLASS_CONTEXT:
            return self.cap.predict(ip, offset)
        return self.stride.predict(ip, offset)

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        route = self._route(ip)
        if route == CLASS_IRREGULAR:
            return  # pollution eliminated: no table is ever written
        if route == CLASS_CONTEXT:
            self.cap.update(ip, offset, actual, prediction)
        else:
            self.stride.update(ip, offset, actual, prediction)

    def on_branch(self, ip: int, taken: bool) -> None:
        super().on_branch(ip, taken)
        self.stride.on_branch(ip, taken)
        self.cap.on_branch(ip, taken)

    def reset(self) -> None:
        super().reset()
        self.stride.reset()
        self.cap.reset()
        self.suppressed_loads = 0

    @property
    def name(self) -> str:
        return "profile-guided"
