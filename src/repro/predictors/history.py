"""The shift(m)-xor history compaction scheme (paper Section 3.2).

A load's context is the ordered sequence of its recent (base) addresses.
Since concatenating whole addresses is far too wide to index the Link
Table, the paper compresses the sequence into a small *history value*:

    new_history = truncate((history << m) ^ subset(address))

where ``subset(address)`` drops the two LSBs (which only matter for
unaligned accesses) and keeps the least-significant remaining bits.  The
left shift ages older addresses out after ``ceil(width / m)`` updates, so
the *effective history length* L (number of addresses that still influence
the value) is set by choosing ``m = ceil(width / L)``.
"""

from __future__ import annotations

import math

from ..common.bitops import fold_xor, mask

__all__ = ["HistoryFunction", "shift_for_length"]


def shift_for_length(width: int, length: int) -> int:
    """Shift amount ``m`` giving an effective history of ``length`` addresses.

    An address contributes to the history value for exactly
    ``ceil(width / m)`` updates before the left shifts push its last bit
    out, so ``m = ceil(width / length)``.
    """
    if width <= 0 or length <= 0:
        raise ValueError("width and length must be positive")
    return max(1, math.ceil(width / length))


class HistoryFunction:
    """Pure function object computing shift(m)-xor history updates.

    Parameters
    ----------
    width:
        Total history width in bits — LT index bits plus LT tag bits.
    length:
        Effective history length (number of past addresses).  The paper's
        default configuration uses 4 (Section 4.5, Figure 9).
    drop_low_bits:
        Address LSBs excluded from the hash (2 in the paper: they only
        matter on unaligned accesses).
    hash_bits:
        How many address bits (after dropping the low ones) feed each
        update; defaults to the history width.
    """

    def __init__(
        self,
        width: int,
        length: int = 4,
        drop_low_bits: int = 2,
        hash_bits: int | None = None,
    ) -> None:
        if width <= 0:
            raise ValueError(f"history width must be positive, got {width}")
        if drop_low_bits < 0:
            raise ValueError("drop_low_bits must be non-negative")
        self.width = width
        self.length = length
        self.shift = shift_for_length(width, length)
        self.drop_low_bits = drop_low_bits
        self.hash_bits = width if hash_bits is None else hash_bits
        self._mask = mask(width)
        self._hash_mask = mask(self.hash_bits)

    def update(self, history: int, address: int) -> int:
        """Fold ``address`` into ``history`` and return the new value.

        The address subset drops the two LSBs and then xor-folds *all*
        remaining bits down to ``hash_bits`` — so the address-space
        segment (its MSBs) still influences the history.  A plain
        truncation would make every segment's small offsets collide in
        history space, and a systematic collision freezes a stale link
        behind the PF filter forever.
        """
        subset = fold_xor(address >> self.drop_low_bits, self.hash_bits)
        return ((history << self.shift) ^ subset) & self._mask

    def fold_sequence(self, addresses) -> int:
        """History value after observing ``addresses`` from a zero start."""
        history = 0
        for address in addresses:
            history = self.update(history, address)
        return history

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HistoryFunction(width={self.width}, length={self.length},"
            f" shift={self.shift})"
        )
