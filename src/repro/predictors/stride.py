"""Stride-based address prediction: A(N+1) = A(N) + (A(N) - A(N-1)).

Two flavours appear in the paper:

* the **basic** two-delta stride predictor (the prior art of [Eick93],
  [Gonz97]), and
* the **enhanced** stride predictor of Sections 4–5, which adds the
  control-flow-indication confidence filter and the *interval* technique —
  learning the length of an array traversal and withholding speculation
  once the learned length is reached, trading mispredictions at array ends
  for no-predictions.

The per-load state and the prediction/training logic are split into
:class:`StrideState` / :class:`StrideLogic` so the hybrid predictor
(Section 3.7) can embed the same stride component inside its shared Load
Buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..common.bitops import mask
from ..common.sat_counter import SaturatingCounter
from ..common.tables import SetAssociativeTable
from .base import AddressPredictor, Prediction, lb_key
from .confidence import CFI_LAST, CFI_OFF, ControlFlowIndication

__all__ = ["StrideConfig", "StrideState", "StrideLogic", "StridePredictor"]

_MASK32 = mask(32)


@dataclass(frozen=True)
class StrideConfig:
    """Stride component parameters.

    The defaults describe the paper's *enhanced* stride predictor; set
    ``cfi_mode="off"`` and ``use_interval=False`` for the basic two-delta
    predictor.
    """

    entries: int = 4096
    ways: int = 2
    confidence_threshold: int = 2
    confidence_max: Optional[int] = None
    hysteresis: bool = False
    two_delta: bool = True
    cfi_mode: str = CFI_LAST
    cfi_bits: int = 4
    use_interval: bool = True

    @classmethod
    def basic(cls, **overrides) -> "StrideConfig":
        """The plain two-delta stride predictor of the prior art."""
        params = dict(cfi_mode=CFI_OFF, use_interval=False)
        params.update(overrides)
        return cls(**params)


class StrideState:
    """Per-static-load stride fields (lives in a Load Buffer entry).

    The ``spec_last_addr``/``pending``/``suppress`` fields implement the
    Section 5 pipelined model: predictions between issue and verification
    advance a *speculative* last address, a misprediction triggers the
    catch-up extrapolation, and speculation is withheld while the wrong-
    path instances drain.
    """

    __slots__ = (
        "last_addr", "stride", "last_delta", "confidence", "cfi",
        "run_length", "interval", "spec_last_addr", "pending", "suppress",
    )

    def __init__(self, config: StrideConfig) -> None:
        self.last_addr: Optional[int] = None
        self.stride = 0
        self.last_delta: Optional[int] = None
        self.confidence = SaturatingCounter(
            threshold=config.confidence_threshold,
            maximum=config.confidence_max,
            hysteresis=config.hysteresis,
        )
        self.cfi = ControlFlowIndication(config.cfi_mode, config.cfi_bits)
        self.run_length = 0      # consecutive correct stride predictions
        self.interval = 0        # learned traversal length (0 = unknown)
        # Pipelined (speculative) state.
        self.spec_last_addr: Optional[int] = None
        self.pending = 0         # predictions awaiting verification
        self.suppress = 0        # wrong-path instances still draining


class StrideLogic:
    """Stateless prediction/training rules over a :class:`StrideState`."""

    def __init__(self, config: StrideConfig) -> None:
        self.config = config
        # Attribution sink (attached externally by the telemetry layer).
        self.probe: Optional[Any] = None

    def predict(
        self,
        state: StrideState,
        ghr: int,
        speculative_mode: bool = False,
    ) -> Prediction:
        """Produce the stride component's prediction.

        In ``speculative_mode`` (the Section 5 pipelined model) the
        prediction extends the *speculative* last address — the chain of
        still-unverified predictions — and speculation is additionally
        withheld while a detected misprediction's wrong-path instances
        drain.
        """
        base = state.spec_last_addr if speculative_mode else state.last_addr
        if speculative_mode:
            state.pending += 1
        if base is None:
            return Prediction(source="stride")
        address = (base + state.stride) & _MASK32
        speculative = state.confidence.confident and state.cfi.allows(ghr)
        if speculative_mode and state.suppress > 0:
            speculative = False
        if (
            speculative
            and self.config.use_interval
            and state.interval
            and state.run_length >= state.interval
        ):
            # The learned traversal length is exhausted: expect the pattern
            # to break here, so trade a likely misprediction for silence.
            speculative = False
        if self.probe is not None and not speculative:
            # Attribute the veto to the first mechanism in the cascade above
            # that withheld speculation; ``confident``/``allows`` are pure
            # reads, so re-evaluating them here is side-effect free.
            if not state.confidence.confident:
                self.probe.confidence_veto()
            elif not state.cfi.allows(ghr):
                self.probe.cfi_veto()
            elif speculative_mode and state.suppress > 0:
                self.probe.drain_suppression()
            else:
                self.probe.interval_stop()
        if speculative_mode:
            state.spec_last_addr = address
        return Prediction(address=address, speculative=speculative, source="stride")

    def component_correct(self, state: StrideState, actual: int) -> Optional[bool]:
        """Would the stride component have been right about ``actual``?

        ``None`` when the component had no basis for a prediction yet.
        Only meaningful in the immediate model, where the in-flight
        prediction equals ``last_addr + stride``.
        """
        if state.last_addr is None:
            return None
        return ((state.last_addr + state.stride) & _MASK32) == actual

    def train(
        self,
        state: StrideState,
        actual: int,
        ghr_at_predict: int,
        speculated: bool,
        predicted_addr: Optional[int] = None,
        had_prediction: bool = False,
        speculative_mode: bool = False,
    ) -> None:
        """Train the stride fields on a resolved address.

        ``predicted_addr`` is what this component predicted for the
        instance now resolving (``None`` with ``had_prediction=False`` when
        the caller did not capture it — then the immediate-model value is
        recomputed); ``speculated`` says whether that prediction drove a
        speculative access (for CFI training).
        """
        if not had_prediction and predicted_addr is None:
            if state.last_addr is not None:
                predicted_addr = (state.last_addr + state.stride) & _MASK32
        correct = predicted_addr == actual if predicted_addr is not None else None
        if correct is not None:
            state.confidence.update(correct)
            bad_pattern = state.cfi.record(ghr_at_predict, correct, speculated)
            if bad_pattern and self.probe is not None:
                self.probe.cfi_bad_pattern()
            if self.config.use_interval:
                if correct:
                    state.run_length += 1
                else:
                    if state.run_length:
                        state.interval = state.run_length
                    state.run_length = 0
        if state.last_addr is not None:
            # Delta training against the architecturally previous address.
            delta = (actual - state.last_addr) & _MASK32
            if self.config.two_delta:
                if state.last_delta is not None and delta == state.last_delta:
                    state.stride = delta
                state.last_delta = delta
            else:
                state.stride = delta
        state.last_addr = actual

        if speculative_mode:
            state.pending = max(0, state.pending - 1)
            if state.suppress > 0:
                state.suppress -= 1
            if not correct:
                # Catch-up (Section 5.2): extrapolate over the still-pending
                # instances so new predictions are right immediately, and
                # stop speculating while the wrong-path ones drain.
                state.spec_last_addr = (
                    actual + state.stride * state.pending
                ) & _MASK32
                state.suppress = state.pending
                if self.probe is not None:
                    self.probe.catchup_fired()
        else:
            state.spec_last_addr = actual
            state.pending = 0
            state.suppress = 0


class StridePredictor(AddressPredictor):
    """Stand-alone stride predictor over its own Load Buffer.

    ``speculative_mode`` switches on the Section 5 pipelined semantics; it
    is normally set by :class:`repro.pipeline.PipelinedPredictor` rather
    than by hand.
    """

    #: Batch-kernel capability flag (see :mod:`repro.kernels`); the
    #: dispatcher additionally declines when ``speculative_mode`` is set.
    supports_batch = True

    def __init__(self, config: StrideConfig | None = None) -> None:
        super().__init__()
        self.config = config or StrideConfig()
        self.logic = StrideLogic(self.config)
        self.table: SetAssociativeTable[StrideState] = SetAssociativeTable(
            self.config.entries, self.config.ways
        )
        self.speculative_mode = False

    def predict(self, ip: int, offset: int) -> Prediction:
        state = self.table.lookup(lb_key(ip))
        if state is None:
            if self.probe is not None:
                self.probe.lb_miss()
            state = StrideState(self.config)
            if self.speculative_mode:
                # This very instance is now in flight.
                state.pending = 1
            self.table.insert(lb_key(ip), state)
            return Prediction(source="stride")
        prediction = self.logic.predict(
            state, self.ghr, speculative_mode=self.speculative_mode
        )
        prediction.ghr = self.ghr
        return prediction

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        state = self.table.lookup(lb_key(ip))
        if state is None:
            state = StrideState(self.config)
            self.table.insert(lb_key(ip), state)
        self.logic.train(
            state,
            actual,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative,
            predicted_addr=prediction.address,
            had_prediction=True,
            speculative_mode=self.speculative_mode,
        )

    def predict_batch(self, batch):
        """Pure batch solver (see :mod:`repro.kernels.stride`)."""
        from ..kernels.stride import plan_stride

        return plan_stride(self, batch)

    def update_batch(self, batch, result) -> None:
        """Commit a batch result's end state into the live tables."""
        from ..kernels.stride import commit_stride

        commit_stride(self, batch, result)

    def reset(self) -> None:
        super().reset()
        self.table.clear()

    @property
    def name(self) -> str:
        if self.config.cfi_mode == CFI_OFF and not self.config.use_interval:
            return "stride"
        return "enhanced-stride"
