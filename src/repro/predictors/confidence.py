"""Confidence mechanisms beyond plain saturating counters (Section 3.4).

Implements the **control-flow indication** (CFI) scheme: when a speculative
access turns out wrong, the ``n`` LSBs of the global branch-history
register are recorded; later predictions whose current GHR matches the
recorded pattern are not speculated.  The "advanced" variant keeps a
``2**n``-bit correctness bitmap — one bit per control-flow path — instead
of just the last offending pattern.
"""

from __future__ import annotations

from ..common.bitops import mask

__all__ = ["ControlFlowIndication", "CFI_OFF", "CFI_LAST", "CFI_PATHS"]

CFI_OFF = "off"
CFI_LAST = "last"
CFI_PATHS = "paths"


class ControlFlowIndication:
    """Per-load control-flow confidence filter.

    Parameters
    ----------
    mode:
        ``"off"`` — never blocks;
        ``"last"`` — blocks when the GHR matches the pattern recorded at the
        last misprediction (the paper's basic scheme);
        ``"paths"`` — one correctness bit per GHR pattern, blocking on the
        paths whose most recent speculative access missed (the paper's
        advanced scheme).
    bits:
        Number of GHR LSBs considered (1 to 4 in the paper).
    """

    __slots__ = ("mode", "bits", "_mask", "_bad_pattern", "_path_bad")

    def __init__(self, mode: str = CFI_LAST, bits: int = 4) -> None:
        if mode not in (CFI_OFF, CFI_LAST, CFI_PATHS):
            raise ValueError(f"unknown CFI mode {mode!r}")
        if not 1 <= bits <= 16:
            raise ValueError(f"CFI bits must be in [1, 16], got {bits}")
        self.mode = mode
        self.bits = bits
        self._mask = mask(bits)
        self._bad_pattern: int | None = None
        self._path_bad = 0  # bitmap: bit p set => path p missed last time

    def allows(self, ghr: int) -> bool:
        """Whether a speculative access may proceed under this GHR."""
        if self.mode == CFI_OFF:
            return True
        pattern = ghr & self._mask
        if self.mode == CFI_LAST:
            return pattern != self._bad_pattern
        return not (self._path_bad >> pattern) & 1

    def record(self, ghr: int, correct: bool, speculated: bool = True) -> bool:
        """Train on a verified prediction made under ``ghr``.

        A *bad* pattern is recorded only when a speculative access was
        actually wrong (the paper's rule).  A correct prediction clears the
        pattern even when it was not speculated: predictions are verified
        at address generation regardless, and without this redemption a
        blocked path could never unblock itself (the speculation needed to
        re-test it is exactly what the filter suppresses).

        Returns True when a bad pattern was recorded (callers surface this
        as the ``cfi_bad_patterns`` attribution event).
        """
        if self.mode == CFI_OFF:
            return False
        pattern = ghr & self._mask
        if self.mode == CFI_LAST:
            if not correct and speculated:
                self._bad_pattern = pattern
                return True
            if correct and self._bad_pattern == pattern:
                self._bad_pattern = None
        else:
            if correct:
                self._path_bad &= ~(1 << pattern)
            elif speculated:
                self._path_bad |= 1 << pattern
                return True
        return False

    def reset(self) -> None:
        """Forget all recorded patterns."""
        self._bad_pattern = None
        self._path_bad = 0
