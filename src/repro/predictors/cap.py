"""The correlated Context-based Address Predictor (CAP) — Section 3.

Two-level organisation (Figure 3):

* **Load Buffer (LB)** — per-static-load, set-associative, indexed/tagged
  by the load IP.  Each entry keeps the (truncated) immediate offset, the
  shift-xor compressed history of recent *base* addresses, a saturating
  confidence counter, and the control-flow-indication field.
* **Link Table (LT)** — indexed by the history's low bits; stores the
  predicted base address, an optional tag (high history bits) and the PF
  anti-pollution bits.

Global correlation (Section 3.3): the LB records only the 8 LSBs of the
load's immediate offset; histories and links are formed over *base
addresses* ``base = addr - (offset & 0xFF)`` with the address MSBs kept
intact.  The predicted address is reconstructed with a truncated 8-bit
adder (no carry past bit 7), exactly as the paper's hardware does.

The prediction/training rules live in :class:`CAPComponent`, operating on
a :class:`CAPState`, so the hybrid predictor (Section 3.7) can embed the
same component over its shared Load Buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..common.bitops import mask
from ..common.sat_counter import SaturatingCounter
from ..common.tables import SetAssociativeTable
from .base import AddressPredictor, Prediction, lb_key
from .confidence import CFI_LAST, ControlFlowIndication
from .history import HistoryFunction
from .link_table import LinkTable, LinkTableConfig

__all__ = [
    "CORRELATION_BASE",
    "CORRELATION_REAL",
    "CORRELATION_DELTA",
    "CAPConfig",
    "CAPState",
    "CAPComponent",
    "CAPPredictor",
]

_MASK32 = mask(32)

#: Histories/links over base addresses — the paper's global-correlation
#: scheme (default).
CORRELATION_BASE = "base"
#: Histories/links over raw effective addresses — no global correlation
#: (Figure 9's comparison point).
CORRELATION_REAL = "real"
#: Histories/links over deltas between successive accesses — the
#: alternative Section 3.3 mentions and rejects for aliasing reasons.
CORRELATION_DELTA = "delta"


@dataclass(frozen=True)
class CAPConfig:
    """Full parameterisation of a CAP predictor.

    Defaults are the paper's baseline (Section 4.2): 4K-entry 2-way LB,
    4K-entry direct-mapped LT, base-address correlation, 8-bit LT tags,
    PF bits, control-flow indications, history length 4.
    """

    lb_entries: int = 4096
    lb_ways: int = 2
    lt: LinkTableConfig = field(default_factory=LinkTableConfig)
    history_length: int = 4
    offset_bits: int = 8
    correlation: str = CORRELATION_BASE
    confidence_threshold: int = 2
    confidence_max: Optional[int] = None
    hysteresis: bool = False
    cfi_mode: str = CFI_LAST
    cfi_bits: int = 4
    drop_low_bits: int = 2

    def __post_init__(self) -> None:
        if self.correlation not in (
            CORRELATION_BASE, CORRELATION_REAL, CORRELATION_DELTA,
        ):
            raise ValueError(f"unknown correlation mode {self.correlation!r}")
        if not 0 < self.offset_bits <= 32:
            raise ValueError("offset_bits must be in (0, 32]")
        if self.history_length < 1:
            raise ValueError("history_length must be >= 1")

    def with_lt(self, **overrides) -> "CAPConfig":
        """Copy of this config with Link-Table fields overridden."""
        return replace(self, lt=replace(self.lt, **overrides))

    @property
    def history_bits(self) -> int:
        """Total history width (LT index + tag bits)."""
        return self.lt.history_bits


class CAPState:
    """Per-static-load CAP fields (lives in a Load Buffer entry).

    ``spec_history``/``pending``/``suppress`` carry the Section 5 pipelined
    model: between prediction and verification the history advances
    *speculatively* with the predicted links (so pointer chains keep
    predicting down the pipe), and a verified misprediction repairs the
    speculative history and withholds speculation while the wrong-path
    instances drain — the "domino effect" of Section 5.2.
    """

    __slots__ = (
        "offset", "history", "confidence", "cfi", "last_addr",
        "spec_history", "pending", "suppress",
    )

    def __init__(self, config: CAPConfig, offset: int) -> None:
        # Only the offset's LSBs are recorded (Section 3.3) — this is both
        # the space saving and what prevents LT aliasing between different
        # structures (the MSBs of the address stay in the base).
        self.offset = offset & mask(config.offset_bits)
        self.history = 0
        self.confidence = SaturatingCounter(
            threshold=config.confidence_threshold,
            maximum=config.confidence_max,
            hysteresis=config.hysteresis,
        )
        self.cfi = ControlFlowIndication(config.cfi_mode, config.cfi_bits)
        self.last_addr: Optional[int] = None  # used by the delta mode
        # Pipelined (speculative) state.
        self.spec_history = 0
        self.pending = 0
        self.suppress = 0


class CAPComponent:
    """CAP prediction/training logic plus the Link Table it owns."""

    def __init__(self, config: CAPConfig | None = None) -> None:
        self.config = config or CAPConfig()
        self.link_table = LinkTable(self.config.lt)
        self.history_fn = HistoryFunction(
            width=self.config.history_bits,
            length=self.config.history_length,
            drop_low_bits=self.config.drop_low_bits,
        )
        self._offset_mask = mask(self.config.offset_bits)
        # Attribution sink (attached externally by the telemetry layer).
        self.probe: Optional[Any] = None

    # -- base-address arithmetic (truncated adders, Section 3.3) -----------

    def base_of(self, addr: int, offset: int) -> int:
        """Base address: subtract the offset LSBs, keep the address MSBs."""
        om = self._offset_mask
        return (addr & ~om) | ((addr - (offset & om)) & om)

    def addr_of(self, base: int, offset: int) -> int:
        """Rebuild the effective address with no carry past the offset bits."""
        om = self._offset_mask
        return (base & ~om) | ((base + (offset & om)) & om)

    def _link_value(self, state: CAPState, actual: int) -> Optional[int]:
        """The value recorded in histories and the LT for this resolution."""
        mode = self.config.correlation
        if mode == CORRELATION_BASE:
            return self.base_of(actual, state.offset)
        if mode == CORRELATION_REAL:
            return actual
        # Delta mode: needs a previous address.
        if state.last_addr is None:
            return None
        return (actual - state.last_addr) & _MASK32

    def _predicted_addr(self, state: CAPState, link: int) -> Optional[int]:
        """Effective address implied by a stored link for this load."""
        mode = self.config.correlation
        if mode == CORRELATION_BASE:
            return self.addr_of(link, state.offset)
        if mode == CORRELATION_REAL:
            return link
        if state.last_addr is None:
            return None
        return (state.last_addr + link) & _MASK32

    # -- prediction -----------------------------------------------------------

    def predict(
        self,
        state: CAPState,
        ghr: int,
        speculative_mode: bool = False,
    ) -> Prediction:
        """CAP's prediction for a load whose LB entry is ``state``.

        In ``speculative_mode`` the lookup uses (and advances) the
        speculative history, so a chain of in-flight predictions for the
        same static load walks the Link Table links forward before any of
        them verifies.
        """
        history = state.spec_history if speculative_mode else state.history
        if speculative_mode:
            state.pending += 1
        link, tag_ok = self.link_table.lookup(history)
        if link is None:
            return Prediction(source="cap", ghr=ghr)
        address = self._predicted_addr(state, link)
        if address is None:
            return Prediction(source="cap", ghr=ghr)
        if speculative_mode:
            # Advance the speculative context with the *predicted* link.
            state.spec_history = self.history_fn.update(state.spec_history, link)
        speculative = (
            tag_ok
            and state.confidence.confident
            and state.cfi.allows(ghr)
            and not (speculative_mode and state.suppress > 0)
        )
        if self.probe is not None and not speculative:
            # Attribute the veto to the first mechanism in the confidence
            # cascade that withheld speculation, mirroring the short-circuit
            # order above.  A tag mismatch was already emitted by the Link
            # Table lookup itself; ``confident``/``allows`` are pure reads,
            # so re-evaluating them here cannot perturb predictor state.
            if tag_ok:
                if not state.confidence.confident:
                    self.probe.confidence_veto()
                elif not state.cfi.allows(ghr):
                    self.probe.cfi_veto()
                else:
                    self.probe.drain_suppression()
        return Prediction(
            address=address, speculative=speculative, source="cap", ghr=ghr,
        )

    # -- training ---------------------------------------------------------------

    def train(
        self,
        state: CAPState,
        actual: int,
        predicted_addr: Optional[int],
        ghr_at_predict: int,
        speculated: bool,
        update_lt: bool = True,
        speculative_mode: bool = False,
    ) -> None:
        """Train on a resolved load.

        ``predicted_addr`` is what this component predicted for the very
        instance now resolving (``None`` when it had no prediction);
        ``speculated`` says whether that prediction drove a speculative
        access (for CFI training); ``update_lt`` implements the hybrid's
        selective LT update policies (Section 4.3).
        """
        correct: Optional[bool] = None
        if predicted_addr is not None:
            correct = predicted_addr == actual
            state.confidence.update(correct)
            bad_pattern = state.cfi.record(ghr_at_predict, correct, speculated)
            if bad_pattern and self.probe is not None:
                self.probe.cfi_bad_pattern()

        value = self._link_value(state, actual)
        if value is not None:
            if update_lt:
                # The pre-update history is the context that led here.
                self.link_table.update(state.history, value)
            state.history = self.history_fn.update(state.history, value)
        state.last_addr = actual

        if speculative_mode:
            state.pending = max(0, state.pending - 1)
            if state.suppress > 0:
                state.suppress -= 1
            if not correct:
                # The speculative context diverged (wrong link, or no
                # prediction was made so it never advanced): repair it from
                # the architectural history and stop speculating until the
                # wrong-path instances have drained.  There is no catch-up
                # for context predictors (Section 5.2).
                state.spec_history = state.history
                state.suppress = state.pending
                if self.probe is not None:
                    self.probe.spec_rollback()
        else:
            state.spec_history = state.history
            state.pending = 0
            state.suppress = 0

    # HistoryFunction is a pure function object (update() computes a new
    # history value without touching self), so reset() has nothing to clear
    # on it; the linter cannot see through the call and assumes mutation.
    def reset(self) -> None:  # repro-lint: disable=R001
        """Clear the Link Table (LB entries are owned by the caller)."""
        self.link_table.clear()


class CAPPredictor(AddressPredictor):
    """Stand-alone CAP: its own Load Buffer plus a :class:`CAPComponent`."""

    #: Batch-kernel capability flag (see :mod:`repro.kernels`); the
    #: dispatcher additionally declines when ``speculative_mode`` is set.
    supports_batch = True

    def __init__(self, config: CAPConfig | None = None) -> None:
        super().__init__()
        self.config = config or CAPConfig()
        self.component = CAPComponent(self.config)
        self.load_buffer: SetAssociativeTable[CAPState] = SetAssociativeTable(
            self.config.lb_entries, self.config.lb_ways
        )
        self.speculative_mode = False

    def predict(self, ip: int, offset: int) -> Prediction:
        state = self.load_buffer.lookup(lb_key(ip))
        if state is None:
            if self.probe is not None:
                self.probe.lb_miss()
            state = CAPState(self.config, offset)
            if self.speculative_mode:
                # This very instance is now in flight.
                state.pending = 1
            self.load_buffer.insert(lb_key(ip), state)
            return Prediction(source="cap", ghr=self.ghr)
        return self.component.predict(
            state, self.ghr, speculative_mode=self.speculative_mode
        )

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        state = self.load_buffer.lookup(lb_key(ip))
        if state is None:
            state = CAPState(self.config, offset)
            self.load_buffer.insert(lb_key(ip), state)
        self.component.train(
            state,
            actual,
            predicted_addr=prediction.address,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative,
            speculative_mode=self.speculative_mode,
        )

    def predict_batch(self, batch):
        """Pure batch solver (see :mod:`repro.kernels.cap`)."""
        from ..kernels.cap import plan_cap

        return plan_cap(self, batch)

    def update_batch(self, batch, result) -> None:
        """Commit a batch result's end state into the live tables."""
        from ..kernels.cap import commit_cap

        commit_cap(self, batch, result)

    def reset(self) -> None:
        super().reset()
        self.load_buffer.clear()
        self.component.reset()

    @property
    def name(self) -> str:
        return "cap"
