"""Load-address predictors: the paper's contribution.

* :class:`LastAddressPredictor` — A(N+1) = A(N) baseline.
* :class:`StridePredictor` — two-delta stride; enhanced variant adds
  control-flow indications and the interval technique.
* :class:`CAPPredictor` — the correlated context-based address predictor
  (Load Buffer + Link Table, base-address global correlation, LT tags,
  PF bits).
* :class:`HybridPredictor` — shared-LB hybrid CAP/stride with a dynamic
  2-bit selector: the paper's headline configuration.
* :class:`GShareAddressPredictor` — the control-based alternative the
  paper evaluates and rejects (Section 3.6).
"""

from .adaptive import VariableHistoryCAP, VariableHistoryConfig
from .base import AddressPredictor, Prediction, lb_key
from .cap import (
    CORRELATION_BASE,
    CORRELATION_DELTA,
    CORRELATION_REAL,
    CAPComponent,
    CAPConfig,
    CAPPredictor,
    CAPState,
)
from .confidence import CFI_LAST, CFI_OFF, CFI_PATHS, ControlFlowIndication
from .ideal import IdealContextConfig, IdealContextPredictor
from .gshare_address import (
    HISTORY_BRANCH,
    HISTORY_CALL_PATH,
    GShareAddressConfig,
    GShareAddressPredictor,
)
from .history import HistoryFunction, shift_for_length
from .hybrid import (
    UPDATE_ALWAYS,
    UPDATE_UNLESS_STRIDE_CORRECT,
    UPDATE_UNLESS_STRIDE_SELECTED,
    HybridConfig,
    HybridEntry,
    HybridPredictor,
    SelectorStats,
)
from .last_address import LastAddressConfig, LastAddressPredictor
from .profile_guided import ProfileGuidedPredictor, build_profile
from .link_table import LinkEntry, LinkTable, LinkTableConfig
from .stride import StrideConfig, StrideLogic, StridePredictor, StrideState
from .value_prediction import (
    LastValuePredictor,
    StrideValuePredictor,
    ValueMetrics,
    ValuePredictorConfig,
    run_value_predictor,
)

__all__ = [
    "AddressPredictor",
    "Prediction",
    "lb_key",
    "VariableHistoryCAP",
    "VariableHistoryConfig",
    "ProfileGuidedPredictor",
    "build_profile",
    "LastValuePredictor",
    "StrideValuePredictor",
    "ValueMetrics",
    "ValuePredictorConfig",
    "run_value_predictor",
    "IdealContextConfig",
    "IdealContextPredictor",
    "CORRELATION_BASE",
    "CORRELATION_DELTA",
    "CORRELATION_REAL",
    "CAPComponent",
    "CAPConfig",
    "CAPPredictor",
    "CAPState",
    "CFI_LAST",
    "CFI_OFF",
    "CFI_PATHS",
    "ControlFlowIndication",
    "HISTORY_BRANCH",
    "HISTORY_CALL_PATH",
    "GShareAddressConfig",
    "GShareAddressPredictor",
    "HistoryFunction",
    "shift_for_length",
    "UPDATE_ALWAYS",
    "UPDATE_UNLESS_STRIDE_CORRECT",
    "UPDATE_UNLESS_STRIDE_SELECTED",
    "HybridConfig",
    "HybridEntry",
    "HybridPredictor",
    "SelectorStats",
    "LastAddressConfig",
    "LastAddressPredictor",
    "LinkEntry",
    "LinkTable",
    "LinkTableConfig",
    "StrideConfig",
    "StrideLogic",
    "StridePredictor",
    "StrideState",
]
