"""Ideal (unbounded) context predictor — the [Saze97] upper bound.

The paper builds on Sazeides & Smith's definition of context-based
prediction and their study of *ideal* context predictors.  This module
implements that reference model: an order-``k`` Markov predictor with
unbounded storage and no hashing, confidence, or replacement — every
context maps exactly to the value that followed it last time.

It is not implementable hardware; it answers "how much of the remaining
predictability does the finite CAP actually capture?" (see
``benchmarks/test_ideal_gap.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from .base import AddressPredictor, Prediction

__all__ = ["IdealContextConfig", "IdealContextPredictor"]


@dataclass(frozen=True)
class IdealContextConfig:
    """Order and scope of the ideal model."""

    order: int = 4
    #: Share contexts across static loads (the ideal analogue of the
    #: paper's global correlation) or keep them per-load.
    shared: bool = False

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("order must be >= 1")


class _LoadContext:
    __slots__ = ("history",)

    def __init__(self, order: int) -> None:
        self.history: Deque[int] = deque(maxlen=order)


class IdealContextPredictor(AddressPredictor):
    """Unbounded order-k Markov model over per-load address streams."""

    def __init__(self, config: IdealContextConfig | None = None) -> None:
        super().__init__()
        self.config = config or IdealContextConfig()
        self._contexts: Dict[int, _LoadContext] = {}
        # (scope key, context tuple) -> next address
        self._links: Dict[Tuple, int] = {}

    def _scope(self, ip: int) -> Optional[int]:
        return None if self.config.shared else ip

    def _state(self, ip: int) -> _LoadContext:
        state = self._contexts.get(ip)
        if state is None:
            state = _LoadContext(self.config.order)
            self._contexts[ip] = state
        return state

    def predict(self, ip: int, offset: int) -> Prediction:
        state = self._state(ip)
        if len(state.history) < self.config.order:
            return Prediction(source="ideal", ghr=self.ghr)
        key = (self._scope(ip), tuple(state.history))
        address = self._links.get(key)
        if address is None:
            return Prediction(source="ideal", ghr=self.ghr)
        # The ideal model is always "confident": it reports exactly what
        # followed this context before.
        return Prediction(
            address=address, speculative=True, source="ideal", ghr=self.ghr,
        )

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        state = self._state(ip)
        if len(state.history) == self.config.order:
            key = (self._scope(ip), tuple(state.history))
            self._links[key] = actual
        state.history.append(actual)

    def reset(self) -> None:
        super().reset()
        self._contexts.clear()
        self._links.clear()

    @property
    def table_size(self) -> int:
        """Number of distinct contexts stored (unbounded by design)."""
        return len(self._links)

    @property
    def name(self) -> str:
        scope = "shared" if self.config.shared else "per-load"
        return f"ideal-o{self.config.order}-{scope}"
