"""Variable-history-length CAP (the paper's Section 6 future work).

    "Improving the predictor by applying novel ideas like variable history
    length, history correlation, etc.  These ideas were tried on branch
    prediction and they seem promising."

Figure 9 shows the tension: short histories train fast and suit simple
RDS fields; long histories disambiguate control-correlated repetitions.
:class:`VariableHistoryCAP` runs a short-history and a long-history CAP
component side by side (each with its own half-sized Link Table) and picks
per static load with a 2-bit chooser — the same tournament idea the
hybrid uses between stride and CAP.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..common.sat_counter import UpDownCounter
from ..common.tables import SetAssociativeTable
from .base import AddressPredictor, Prediction, lb_key
from .cap import CAPComponent, CAPConfig, CAPState

__all__ = ["VariableHistoryConfig", "VariableHistoryCAP"]


@dataclass(frozen=True)
class VariableHistoryConfig:
    """Two history lengths sharing one storage budget."""

    base: CAPConfig = CAPConfig()
    short_length: int = 2
    long_length: int = 6
    chooser_bits: int = 2
    chooser_init: int = 2  # weakly favour the long history

    def __post_init__(self) -> None:
        if not 1 <= self.short_length < self.long_length:
            raise ValueError("need 1 <= short_length < long_length")

    def component_config(self, length: int) -> CAPConfig:
        """Halve the LT so the pair costs what one baseline CAP costs."""
        lt = replace(self.base.lt, entries=max(2, self.base.lt.entries // 2))
        return replace(self.base, history_length=length, lt=lt)


class _Entry:
    __slots__ = ("short", "long", "chooser")

    def __init__(self, config: VariableHistoryConfig, offset: int) -> None:
        self.short = CAPState(config.component_config(config.short_length), offset)
        self.long = CAPState(config.component_config(config.long_length), offset)
        self.chooser = UpDownCounter(
            width=config.chooser_bits, initial=config.chooser_init
        )


class VariableHistoryCAP(AddressPredictor):
    """Tournament of a short-history and a long-history CAP."""

    def __init__(self, config: VariableHistoryConfig | None = None) -> None:
        super().__init__()
        self.config = config or VariableHistoryConfig()
        self.short = CAPComponent(
            self.config.component_config(self.config.short_length)
        )
        self.long = CAPComponent(
            self.config.component_config(self.config.long_length)
        )
        self.load_buffer: SetAssociativeTable[_Entry] = SetAssociativeTable(
            self.config.base.lb_entries, self.config.base.lb_ways
        )
        self.speculative_mode = False

    def predict(self, ip: int, offset: int) -> Prediction:
        entry = self.load_buffer.lookup(lb_key(ip))
        if entry is None:
            entry = _Entry(self.config, offset)
            if self.speculative_mode:
                entry.short.pending = 1
                entry.long.pending = 1
            self.load_buffer.insert(lb_key(ip), entry)
            return Prediction(source="vh-cap", ghr=self.ghr)

        ghr = self.ghr
        short_pred = self.short.predict(
            entry.short, ghr, speculative_mode=self.speculative_mode
        )
        long_pred = self.long.predict(
            entry.long, ghr, speculative_mode=self.speculative_mode
        )

        if long_pred.speculative and short_pred.speculative:
            chosen = long_pred if entry.chooser.favors_high else short_pred
        elif long_pred.speculative:
            chosen = long_pred
        elif short_pred.speculative:
            chosen = short_pred
        elif long_pred.made:
            chosen = long_pred
        else:
            chosen = short_pred

        return Prediction(
            address=chosen.address,
            speculative=chosen.speculative,
            source="vh-cap",
            ghr=ghr,
            info={"short": short_pred, "long": long_pred},
        )

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        entry = self.load_buffer.lookup(lb_key(ip))
        if entry is None:
            entry = _Entry(self.config, offset)
            self.load_buffer.insert(lb_key(ip), entry)

        info = prediction.info or {}
        short_pred = info.get("short")
        long_pred = info.get("long")
        short_addr = short_pred.address if short_pred else None
        long_addr = long_pred.address if long_pred else None

        self.short.train(
            entry.short, actual,
            predicted_addr=short_addr,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative,
            speculative_mode=self.speculative_mode,
        )
        self.long.train(
            entry.long, actual,
            predicted_addr=long_addr,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative,
            speculative_mode=self.speculative_mode,
        )

        if short_addr is not None and long_addr is not None:
            short_ok = short_addr == actual
            long_ok = long_addr == actual
            if long_ok and not short_ok:
                entry.chooser.up()
            elif short_ok and not long_ok:
                entry.chooser.down()

    def reset(self) -> None:
        super().reset()
        self.load_buffer.clear()
        self.short.reset()
        self.long.reset()

    @property
    def name(self) -> str:
        return "variable-history-cap"
