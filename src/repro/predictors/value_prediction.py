"""Load-*value* predictors, for the Section 1 comparison.

The paper positions address prediction against load-value prediction
([Lipa96a]): "However, its lower predictability makes this option less
attractive."  To reproduce that claim we implement the standard last-value
and stride-value predictors over the *data* a load returns and measure
their predictability side by side with the address predictors
(``benchmarks/test_value_vs_address.py``).

Value predictors consume ``(ip, loaded_value)`` pairs from
:meth:`repro.trace.Trace.value_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..common.bitops import mask
from ..common.sat_counter import SaturatingCounter
from ..common.tables import SetAssociativeTable
from .base import lb_key

__all__ = [
    "ValuePredictorConfig",
    "LastValuePredictor",
    "StrideValuePredictor",
    "ValueMetrics",
    "run_value_predictor",
]

_MASK32 = mask(32)


@dataclass(frozen=True)
class ValuePredictorConfig:
    """Table geometry and confidence for the value predictors."""

    entries: int = 4096
    ways: int = 2
    confidence_threshold: int = 2


@dataclass
class ValueMetrics:
    """Predictability counters over dynamic loads."""

    loads: int = 0
    predictions: int = 0
    speculative: int = 0
    correct_speculative: int = 0
    correct_predictions: int = 0

    @property
    def prediction_rate(self) -> float:
        """Confident predictions / all loads."""
        return self.speculative / self.loads if self.loads else 0.0

    @property
    def accuracy(self) -> float:
        """Correct / confident predictions."""
        if not self.speculative:
            return 0.0
        return self.correct_speculative / self.speculative

    @property
    def predictability(self) -> float:
        """Correct raw predictions / all loads (confidence-free ceiling)."""
        return self.correct_predictions / self.loads if self.loads else 0.0

    def add(self, other: "ValueMetrics") -> None:
        """Accumulate another metrics object into this one."""
        self.loads += other.loads
        self.predictions += other.predictions
        self.speculative += other.speculative
        self.correct_speculative += other.correct_speculative
        self.correct_predictions += other.correct_predictions


class _LastValueEntry:
    __slots__ = ("value", "confidence")

    def __init__(self, config: ValuePredictorConfig) -> None:
        self.value: Optional[int] = None
        self.confidence = SaturatingCounter(config.confidence_threshold)


class LastValuePredictor:
    """V(N+1) = V(N), the [Lipa96a] baseline."""

    name = "last-value"

    def __init__(self, config: ValuePredictorConfig | None = None) -> None:
        self.config = config or ValuePredictorConfig()
        self.table: SetAssociativeTable[_LastValueEntry] = SetAssociativeTable(
            self.config.entries, self.config.ways
        )

    def predict(self, ip: int) -> Tuple[Optional[int], bool]:
        """Return ``(predicted_value, confident)``."""
        entry = self.table.lookup(lb_key(ip))
        if entry is None or entry.value is None:
            return None, False
        return entry.value, entry.confidence.confident

    def update(self, ip: int, actual: int) -> None:
        """Train on the observed loaded value."""
        entry, _ = self.table.get_or_insert(
            lb_key(ip), lambda: _LastValueEntry(self.config)
        )
        if entry.value is not None:
            entry.confidence.update(entry.value == actual)
        entry.value = actual

    def reset(self) -> None:
        """Forget every learned value and confidence."""
        self.table.clear()


class _StrideValueEntry:
    __slots__ = ("last", "stride", "last_delta", "confidence")

    def __init__(self, config: ValuePredictorConfig) -> None:
        self.last: Optional[int] = None
        self.stride = 0
        self.last_delta: Optional[int] = None
        self.confidence = SaturatingCounter(config.confidence_threshold)


class StrideValuePredictor:
    """V(N+1) = V(N) + (V(N) - V(N-1)) with two-delta filtering."""

    name = "stride-value"

    def __init__(self, config: ValuePredictorConfig | None = None) -> None:
        self.config = config or ValuePredictorConfig()
        self.table: SetAssociativeTable[_StrideValueEntry] = SetAssociativeTable(
            self.config.entries, self.config.ways
        )

    def predict(self, ip: int) -> Tuple[Optional[int], bool]:
        """Return ``(predicted_value, confident)``."""
        entry = self.table.lookup(lb_key(ip))
        if entry is None or entry.last is None:
            return None, False
        return (entry.last + entry.stride) & _MASK32, entry.confidence.confident

    def update(self, ip: int, actual: int) -> None:
        """Train on the observed loaded value."""
        entry, _ = self.table.get_or_insert(
            lb_key(ip), lambda: _StrideValueEntry(self.config)
        )
        if entry.last is not None:
            predicted = (entry.last + entry.stride) & _MASK32
            entry.confidence.update(predicted == actual)
            delta = (actual - entry.last) & _MASK32
            if entry.last_delta is not None and delta == entry.last_delta:
                entry.stride = delta
            entry.last_delta = delta
        entry.last = actual

    def reset(self) -> None:
        """Forget every learned value stride and confidence."""
        self.table.clear()


def run_value_predictor(
    predictor, pairs: Iterable[Tuple[int, int]]
) -> ValueMetrics:
    """Evaluate a value predictor over ``(ip, value)`` pairs."""
    metrics = ValueMetrics()
    for ip, value in pairs:
        predicted, confident = predictor.predict(ip)
        metrics.loads += 1
        if predicted is not None:
            metrics.predictions += 1
            if predicted == value:
                metrics.correct_predictions += 1
            if confident:
                metrics.speculative += 1
                if predicted == value:
                    metrics.correct_speculative += 1
        predictor.update(ip, value)
    return metrics
