"""Last-address predictor: A(N+1) = A(N).

The simplest scheme in the paper's taxonomy (Section 1): it speculates that
a static load keeps accessing the address it accessed last time.  The paper
reports it "surprisingly" covers about 40% of all loads (global scalars,
read-only constants, recurring stack references).  Reproduced here both as
a baseline for the Section 1 coverage claims and as a component other
studies hybridise with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.sat_counter import SaturatingCounter
from ..common.tables import SetAssociativeTable
from .base import AddressPredictor, Prediction, lb_key

__all__ = ["LastAddressConfig", "LastAddressPredictor"]


@dataclass(frozen=True)
class LastAddressConfig:
    """Table geometry and confidence parameters."""

    entries: int = 4096
    ways: int = 2
    confidence_threshold: int = 2
    confidence_max: Optional[int] = None
    hysteresis: bool = False


class _Entry:
    __slots__ = ("last_addr", "confidence")

    def __init__(self, config: LastAddressConfig) -> None:
        self.last_addr: Optional[int] = None
        self.confidence = SaturatingCounter(
            threshold=config.confidence_threshold,
            maximum=config.confidence_max,
            hysteresis=config.hysteresis,
        )


class LastAddressPredictor(AddressPredictor):
    """Per-static-load last-address table with a saturating confidence counter."""

    #: Batch-kernel capability flag (see :mod:`repro.kernels`).
    supports_batch = True

    def __init__(self, config: LastAddressConfig | None = None) -> None:
        super().__init__()
        self.config = config or LastAddressConfig()
        self.table: SetAssociativeTable[_Entry] = SetAssociativeTable(
            self.config.entries, self.config.ways
        )

    def predict(self, ip: int, offset: int) -> Prediction:
        entry = self.table.lookup(lb_key(ip))
        if entry is None:
            self.table.insert(lb_key(ip), _Entry(self.config))
            return Prediction()
        if entry.last_addr is None:
            return Prediction()
        return Prediction(
            address=entry.last_addr,
            speculative=entry.confidence.confident,
            source="last",
        )

    def update(self, ip: int, offset: int, actual: int, prediction: Prediction) -> None:
        entry = self.table.lookup(lb_key(ip))
        if entry is None:
            entry = _Entry(self.config)
            self.table.insert(lb_key(ip), entry)
        if entry.last_addr is not None:
            entry.confidence.update(entry.last_addr == actual)
        entry.last_addr = actual

    def predict_batch(self, batch):
        """Pure batch solver (see :mod:`repro.kernels.last_address`)."""
        from ..kernels.last_address import plan_last_address

        return plan_last_address(self, batch)

    def update_batch(self, batch, result) -> None:
        """Commit a batch result's end state into the live tables."""
        from ..kernels.last_address import commit_last_address

        commit_last_address(self, batch, result)

    def reset(self) -> None:
        super().reset()
        self.table.clear()

    @property
    def name(self) -> str:
        return "last-address"
