"""Batch kernel for :class:`repro.predictors.cap.CAPPredictor`.

Decomposition mirroring the scalar component structure:

* per-key history trajectories — the shift-xor history is linear over
  XOR, so the value at any point is the XOR of the last ``ceil(width /
  shift)`` folded link values, each shifted by its age
  (:func:`history_trajectory`);
* the Link Table timeline — lookups and PF-gated updates interleaved in
  program order (:mod:`repro.kernels.link_table`);
* confidence and CFI — the same segmented counter/filter solvers the
  stride kernel uses.

``delta`` correlation records no link value on a key's first load, so
its value-event subsequence is offset by one from ``base``/``real``;
everything downstream works on the value-event layout and is agnostic.

The row solver is shared with the hybrid kernel via :func:`cap_rows`
(CFI resolution stays with the caller, as in the stride kernel).
"""

from __future__ import annotations

import math

import numpy as np

from ..predictors.cap import CORRELATION_BASE, CORRELATION_DELTA
from ..predictors.confidence import CFI_LAST, CFI_OFF
from .api import BatchResult
from .batch import EventBatch
from .control_flow import resolve_cfi, sat_counter_trajectory
from .lb import lb_commit
from .link_table import commit_link_table, solve_link_table
from .segops import seg_exclusive_cumsum, seg_last_index_where, seg_shift

__all__ = ["history_trajectory", "cap_rows", "plan_cap", "commit_cap"]

_SOURCES = ("cap",)
_MASK32 = np.int64(0xFFFFFFFF)


def history_trajectory(
    history_fn, values: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Post-update history value at every value event (segmented layout).

    ``h_after[t] = XOR_d (u[t-d] << (shift*d)) & mask`` over the last
    ``ceil(width / shift)`` events of the same segment — the shift-xor
    update is linear, so older contributions simply age out.
    """
    from .segops import fold_xor_array

    width = history_fn.width
    shift = history_fn.shift
    terms = math.ceil(width / shift)
    u = fold_xor_array(values >> history_fn.drop_low_bits, history_fn.hash_bits)
    h_after = np.zeros(len(u), dtype=np.int64)
    cur = u
    for d in range(terms):
        if d:
            cur = seg_shift(cur, starts, 0)
        h_after ^= cur << (shift * d)
    return h_after & np.int64((1 << width) - 1)


def cap_rows(
    component,
    batch: EventBatch,
    a_s: np.ndarray,
    b_s: np.ndarray,
    starts: np.ndarray,
    order: np.ndarray,
    update_lt_s,
) -> dict:
    """CAP state evolution in the segmented (per-key) layout.

    ``update_lt_s`` is ``None`` (always update — the stand-alone
    predictor) or a boolean mask implementing a hybrid selective-update
    policy.  Returns per-row prediction arrays plus per-key end state;
    CFI resolution is left to the caller.
    """
    cfg = component.config
    n = len(a_s)
    om = np.int64(component._offset_mask)
    seg_of = np.cumsum(starts) - 1 if n else np.zeros(0, dtype=np.int64)
    off_first = (b_s[starts] & om) if n else np.zeros(0, dtype=np.int64)
    off = off_first[seg_of] if n else np.zeros(0, dtype=np.int64)
    prev_a = seg_shift(a_s, starts, 0)
    made_lb = ~starts  # LB hit -> the component ran predict

    # Link values per training row (the value-event subsequence).
    mode = cfg.correlation
    if mode == CORRELATION_BASE:
        value = (a_s & ~om) | ((a_s - off) & om)
        val_mask = np.ones(n, dtype=bool)
    elif mode == CORRELATION_DELTA:
        value = (a_s - prev_a) & _MASK32
        val_mask = made_lb
    else:
        value = a_s
        val_mask = np.ones(n, dtype=bool)

    sub_starts_v = _sub_starts(val_mask, starts)
    h_after_v = history_trajectory(
        component.history_fn, value[val_mask], sub_starts_v
    )
    h_before_v = seg_shift(h_after_v, sub_starts_v, 0)
    hist = np.zeros(n, dtype=np.int64)
    hist[val_mask] = h_before_v
    # The lookup at a key's load j uses the history advanced by every
    # earlier train; for delta mode load 1's lookup still sees 0 and the
    # scatter above already leaves hist[row 1] = h_before of its first
    # value event, which is exactly that 0.

    # Link Table timeline.  Lookups on LB hits at time 2i, updates at
    # 2i+1 (i = original load index), so a load's update follows its own
    # lookup and precedes everything later.
    times = order.astype(np.int64) * 2
    upd_mask = val_mask if update_lt_s is None else (val_mask & update_lt_s)
    solved = solve_link_table(
        cfg.lt,
        times[made_lb],
        hist[made_lb],
        times[upd_mask] + 1,
        hist[upd_mask],
        value[upd_mask],
    )
    valid = np.zeros(n, dtype=bool)
    link = np.zeros(n, dtype=np.int64)
    tag_ok = np.zeros(n, dtype=bool)
    valid[made_lb] = solved["valid"]
    link[made_lb] = solved["link"]
    tag_ok[made_lb] = solved["tag_ok"]

    # Predicted address per row with a stored link.
    if mode == CORRELATION_BASE:
        address = (link & ~om) | ((link + off) & om)
    elif mode == CORRELATION_DELTA:
        address = (prev_a + link) & _MASK32
    else:
        address = link
    made = made_lb & valid  # last_addr is always set past a key's first load
    corr = made & (address == a_s)

    # Confidence trains exactly on the made rows.
    sub_starts_m = _sub_starts(made, starts)
    maximum = (
        cfg.confidence_threshold
        if cfg.confidence_max is None else cfg.confidence_max
    )
    conf_after_m = sat_counter_trajectory(
        corr[made], sub_starts_m, maximum, cfg.hysteresis
    )
    conf_before_m = seg_shift(conf_after_m, sub_starts_m, 0)
    conf_before = np.zeros(n, dtype=np.int64)
    conf_after = np.zeros(n, dtype=np.int64)
    conf_before[made] = conf_before_m
    conf_after[made] = conf_after_m
    conf_ok = made & (conf_before >= cfg.confidence_threshold)

    # Per-key end state.
    ends = np.empty(n, dtype=bool)
    if n:
        ends[:-1] = starts[1:]
        ends[-1] = True
    h_scatter = np.zeros(n, dtype=np.int64)
    h_scatter[val_mask] = h_after_v
    val_idx = seg_last_index_where(val_mask, starts)
    final_hist = np.where(
        val_idx >= 0, h_scatter[np.maximum(val_idx, 0)], 0
    )[ends] if n else np.zeros(0, dtype=np.int64)
    conf_idx = seg_last_index_where(made, starts)
    final_conf = np.where(
        conf_idx >= 0, conf_after[np.maximum(conf_idx, 0)], 0
    )[ends] if n else np.zeros(0, dtype=np.int64)

    return {
        "made": made,
        "address": address,
        "corr": corr,
        "tag_ok": tag_ok,
        "conf_ok": conf_ok,
        "eligible": made & tag_ok & conf_ok,
        "sub_starts_made": sub_starts_m,
        "solved_lt": solved,
        "offsets": off_first,
        "final_hist": final_hist,
        "final_conf": final_conf,
        "ends": ends,
    }


def _sub_starts(mask: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Segment-head marker of the ``mask`` subsequence."""
    before = seg_exclusive_cumsum(mask.astype(np.int64), starts)
    return before[mask] == 0


def plan_cap(predictor, batch: EventBatch) -> BatchResult:
    cfg = predictor.config
    lb = batch.lb_groups(predictor.load_buffer)
    order, starts = lb["order"], lb["starts"]
    _, actual, offsets = batch.load_columns()
    n = batch.n_loads

    a_s = actual[order]
    b_s = offsets[order]
    rows = cap_rows(predictor.component, batch, a_s, b_s, starts, order, None)
    made_s = rows["made"]

    if cfg.cfi_mode == CFI_OFF:
        ghr_m = np.zeros(int(made_s.sum()), dtype=np.int64)
    else:
        ghr_m = batch.ghr_at_load[order][made_s]
    pattern_m = ghr_m & np.int64((1 << cfg.cfi_bits) - 1)
    allows_m, cfi_final = resolve_cfi(
        cfg.cfi_mode, rows["sub_starts_made"], pattern_m,
        rows["corr"][made_s], rows["eligible"][made_s],
    )
    allows = np.ones(n, dtype=bool)
    allows[made_s] = allows_m
    spec_s = rows["eligible"] & allows
    corr_s = rows["corr"]
    tag_ok = rows["tag_ok"]
    conf_ok = rows["conf_ok"]

    address = np.empty(n, dtype=np.int64)
    made = np.empty(n, dtype=bool)
    speculative = np.empty(n, dtype=bool)
    correct = np.empty(n, dtype=bool)
    address[order] = rows["address"]
    made[order] = made_s
    speculative[order] = spec_s
    correct[order] = corr_s

    ends = rows["ends"]
    # Groups with at least one made row, in group order, keyed by the
    # made-subsequence segment index (for final CFI machine states).
    counts = np.add.reduceat(
        made_s.astype(np.int64), np.flatnonzero(starts)
    ) if n else np.zeros(0, dtype=np.int64)
    made_keys = np.flatnonzero(counts > 0)
    cfi_states = {
        int(made_keys[si]): machine for si, machine in cfi_final.items()
    }
    empty = np.empty(0, dtype=np.int64)
    state = {
        "lb": lb,
        "last_addr": a_s[ends] if n else empty,
        "offsets": rows["offsets"],
        "history": rows["final_hist"],
        "conf": rows["final_conf"],
        "cfi_states": cfi_states,
        "solved_lt": rows["solved_lt"],
        "probe": {
            "lb_misses": int(starts.sum()),
            "confidence_vetoes": int((made_s & tag_ok & ~conf_ok).sum()),
            "cfi_vetoes": int((made_s & tag_ok & conf_ok & ~allows).sum()),
            "cfi_bad_patterns": (
                0 if cfg.cfi_mode == CFI_OFF
                else int((~corr_s & spec_s & made_s).sum())
            ),
        },
    }
    return BatchResult(
        address, made, speculative, correct,
        np.zeros(n, dtype=np.int8), _SOURCES, state,
    )


def commit_cap(predictor, batch: EventBatch, result: BatchResult) -> None:
    from ..predictors.cap import CAPState

    cfg = predictor.config
    state = result.state
    cfi_states = state["cfi_states"]
    entries = []
    rows = zip(
        state["last_addr"].tolist(),
        state["offsets"].tolist(),
        state["history"].tolist(),
        state["conf"].tolist(),
    )
    for i, (addr, offset, history, conf) in enumerate(rows):
        entry = CAPState(cfg, offset)
        entry.last_addr = addr
        entry.history = history
        entry.spec_history = history
        entry.confidence.value = conf
        machine = cfi_states.get(i)
        if machine is not None:
            if cfg.cfi_mode == CFI_LAST:
                entry.cfi._bad_pattern = machine
            else:
                entry.cfi._path_bad = machine
        entries.append(entry)
    lb_commit(predictor.load_buffer, state["lb"], entries, batch.n_loads)
    commit_link_table(predictor.component.link_table, state["solved_lt"])
    batch.commit_control_flow(predictor)

    counts = state["probe"]
    if predictor.probe is not None:
        predictor.probe.lb_misses += counts["lb_misses"]
    component_probe = predictor.component.probe
    if component_probe is not None:
        component_probe.confidence_vetoes += counts["confidence_vetoes"]
        component_probe.cfi_vetoes += counts["cfi_vetoes"]
        component_probe.cfi_bad_patterns += counts["cfi_bad_patterns"]
