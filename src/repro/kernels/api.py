"""Batch kernel API: results, fallback signalling, backend selection.

A *batch kernel* evaluates a predictor over a whole columnar event stream
in two phases mirroring the scalar ``predict``/``update`` contract:

* ``predict_batch(batch)`` — a pure solver.  Reads the predictor's
  configuration (never its mutable state: kernels only run on untrained
  predictors driven from the start of a stream) and returns a
  :class:`BatchResult` holding the per-load outcome arrays plus whatever
  intermediate state the commit phase needs.  Must not mutate anything;
  raises :class:`BatchFallback` for configurations it cannot vectorise.
* ``update_batch(batch, result)`` — commits the end-of-stream
  architectural state (tables, counters, statistics, probe counts) into
  the live predictor objects, leaving the predictor indistinguishable
  from one trained by the scalar path.

Backends: ``python`` is the always-available scalar reference (the kernel
layer simply declines to run); ``numpy`` is the vectorised path.  The
default is feature-detected and can be forced with ``REPRO_BACKEND`` (the
CLI's ``--backend`` flag sets the same variable).
"""

from __future__ import annotations

import importlib.util
from typing import Optional, Tuple

__all__ = [
    "BACKEND_ENV",
    "BACKEND_PYTHON",
    "BACKEND_NUMPY",
    "BatchFallback",
    "BatchResult",
    "available_backends",
    "record_dispatch",
    "resolve_backend",
]

BACKEND_ENV = "REPRO_BACKEND"
BACKEND_PYTHON = "python"
BACKEND_NUMPY = "numpy"


class BatchFallback(Exception):
    """Raised by a kernel that cannot vectorise this configuration.

    The dispatcher catches it and runs the scalar reference path instead;
    the exception carries a short reason for diagnostics.
    """


class BatchResult:
    """Per-load outcome arrays plus the kernel's commit payload.

    ``address`` is only meaningful where ``made`` is set; ``correct``
    is ``made & (address == actual)`` (exactly the scalar runner's
    ``prediction.address == a`` — a no-prediction never compares equal).
    ``source_code`` indexes ``source_names`` per load, reproducing each
    scalar ``Prediction.source`` string for the differential harness.
    ``state`` is an opaque payload handed to the kernel's commit phase.
    """

    __slots__ = (
        "address", "made", "speculative", "correct",
        "source_code", "source_names", "state",
    )

    def __init__(
        self,
        address,
        made,
        speculative,
        correct,
        source_code,
        source_names: Tuple[str, ...],
        state=None,
    ) -> None:
        self.address = address
        self.made = made
        self.speculative = speculative
        self.correct = correct
        self.source_code = source_code
        self.source_names = source_names
        self.state = state


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this environment (``python`` always is)."""
    if importlib.util.find_spec("numpy") is not None:
        return (BACKEND_PYTHON, BACKEND_NUMPY)
    return (BACKEND_PYTHON,)


def record_dispatch(predictor, outcome: str) -> None:
    """Tally one dispatch decision for a predictor's kernel.

    ``outcome`` is ``dispatched`` (the batch kernel ran), ``fallback``
    (the kernel raised :class:`BatchFallback` and the scalar reference
    ran) or ``declined`` (the dispatcher never tried: wrong backend, no
    batch support, or a per-access observer attached).  One counter
    increment per *run* — far off the per-event hot path — recorded in
    the process-wide :func:`repro.obs.metrics.global_registry`, so the
    serving admin endpoint and run manifests can report which kernels
    actually carried the load.
    """
    from ..obs.metrics import global_registry

    global_registry().counter(
        f"kernels.{type(predictor).__name__}.{outcome}"
    ).inc()


def resolve_backend(override: Optional[str] = None) -> str:
    """Effective backend name.

    Precedence: explicit ``override`` argument, then the ``REPRO_BACKEND``
    environment variable, then feature detection (numpy when importable).
    The resolution itself lives in :mod:`repro.eval.config` — the single
    sanctioned environment-reading module — and is imported lazily here so
    the kernel layer stays importable on its own.
    """
    from ..eval.config import resolve_backend as _resolve

    return _resolve(override)
