"""Confidence and control-flow-indication solvers for the batch kernels.

Two families:

* :func:`sat_counter_trajectory` — closed-form evolution of the
  reset-on-miss saturating counter (and its hysteresis variant) over a
  segmented correctness stream.
* :func:`resolve_cfi` / :func:`resolve_cfi_hybrid` — the control-flow
  indication filter (:class:`repro.predictors.confidence.
  ControlFlowIndication`).  CFI state is *almost always* clean: a bad
  pattern is only recorded when a speculative access misses, and the
  accuracies the paper reports sit above 99%.  The resolvers exploit this:
  while a key's CFI state is clean every ``allows`` is True and the state
  can only change at a precomputed *set candidate* (an eligible
  misprediction), so the solver vector-jumps between candidates and only
  falls back to a per-event Python loop for the short dirty stretches
  after a set.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..predictors.confidence import CFI_LAST, CFI_OFF, CFI_PATHS
from .segops import seg_clamped_walk, seg_streak_before

__all__ = [
    "sat_counter_trajectory",
    "resolve_cfi",
    "resolve_cfi_hybrid",
]


def sat_counter_trajectory(
    correct: np.ndarray,
    starts: np.ndarray,
    maximum: int,
    hysteresis: bool,
) -> np.ndarray:
    """Post-update :class:`~repro.common.sat_counter.SaturatingCounter`
    value at every update event.

    ``correct`` holds the update stream in segmented (per-key) layout; the
    counter starts at 0 at each segment head.  Without hysteresis the
    counter is a capped correct-streak counter; with hysteresis it is a
    clamped ±1 walk.
    """
    if hysteresis:
        delta = np.where(correct, 1, -1).astype(np.int64)
        return seg_clamped_walk(delta, starts, 0, maximum, 0)
    streak = seg_streak_before(correct, starts)
    return np.where(correct, np.minimum(maximum, streak + 1), 0)


def _segment_bounds(starts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-position segment id and per-segment end position."""
    seg_of = np.cumsum(starts) - 1
    heads = np.flatnonzero(starts)
    ends = np.append(heads[1:], len(starts))
    return seg_of, ends


def resolve_cfi(
    mode: str,
    starts: np.ndarray,
    pattern: np.ndarray,
    correct: np.ndarray,
    eligible: np.ndarray,
) -> Tuple[np.ndarray, dict]:
    """``(allows, final)`` for a single CFI machine over segmented rows.

    One row per load that both reads the filter and trains it (for every
    predictor these coincide: a load consults ``allows`` iff its update
    later calls ``record``).  ``pattern`` is the masked GHR,
    ``correct`` the verified outcome, ``eligible`` whether the load would
    speculate if the filter allowed it (all other confidence gates).

    ``final`` maps segment index -> machine state at segment end for the
    segments that end *dirty* (``_bad_pattern`` for "last", the
    ``_path_bad`` bitmap for "paths"); segments absent from it end clean.
    """
    n = len(pattern)
    allows = np.ones(n, dtype=bool)
    final: dict = {}
    if mode == CFI_OFF or not n:
        return allows, final
    candidates = np.flatnonzero(~correct & eligible)
    if not len(candidates):
        return allows, final
    seg_of, ends = _segment_bounds(starts)
    pat = pattern.tolist()
    cor = correct.tolist()
    eli = eligible.tolist()
    is_last = mode == CFI_LAST
    if not is_last and mode != CFI_PATHS:  # pragma: no cover - config guard
        raise ValueError(f"unknown CFI mode {mode!r}")
    ci = 0
    nc = len(candidates)
    while ci < nc:
        i = int(candidates[ci])
        end = int(ends[seg_of[i]])
        # Clean state at a set candidate: allows is True, so the eligible
        # miss records its pattern and the machine goes dirty.
        j = i + 1
        if is_last:
            bad = pat[i]
            while j < end and bad is not None:
                p = pat[j]
                a = p != bad
                allows[j] = a
                if cor[j]:
                    if bad == p:
                        bad = None
                elif eli[j] and a:
                    bad = p
                j += 1
            if j == end and bad is not None:
                final[int(seg_of[i])] = bad
        else:
            bitmap = 1 << pat[i]
            while j < end and bitmap:
                p = pat[j]
                a = not (bitmap >> p) & 1
                allows[j] = a
                if cor[j]:
                    bitmap &= ~(1 << p)
                elif eli[j] and a:
                    bitmap |= 1 << p
                j += 1
            if j == end and bitmap:
                final[int(seg_of[i])] = bitmap
        while ci < nc and candidates[ci] < j:
            ci += 1
    return allows, final


def resolve_cfi_hybrid(
    cap_mode: str,
    cap_bits: int,
    stride_mode: str,
    stride_bits: int,
    starts: np.ndarray,
    ghr: np.ndarray,
    cap_trains: np.ndarray,
    cap_correct: np.ndarray,
    cap_eligible: np.ndarray,
    stride_correct: np.ndarray,
    stride_eligible: np.ndarray,
    prefer_cap: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, dict]:
    """``(allows_cap, allows_stride, final)`` for the hybrid's CFI machines.

    The machines are coupled through arbitration: each component's
    ``record`` receives ``speculated = final_speculative and selected ==
    component``, and which component is *selected* depends on both
    machines' ``allows``.  That coupling is why the hybrid gets its own
    resolver instead of two independent single-machine passes.

    ``cap_trains`` marks rows where the CAP component made a prediction
    (only those train its machine); the stride component trains on every
    row.  ``prefer_cap`` is the selector's arbitration when both
    components speculate.  ``final`` maps segment index -> the pair of
    end-of-segment machine states (see :func:`resolve_cfi`) for segments
    ending dirty; each element is ``None``/``0`` when that machine is
    clean.
    """
    n = len(ghr)
    allows_c = np.ones(n, dtype=bool)
    allows_s = np.ones(n, dtype=bool)
    final: dict = {}
    cap_on = cap_mode != CFI_OFF
    stride_on = stride_mode != CFI_OFF
    if not n or not (cap_on or stride_on):
        return allows_c, allows_s, final
    # Set candidates under clean state (both machines allow): a machine can
    # only record a bad pattern when its component is selected-speculative
    # and wrong.
    clean_sel_cap = cap_eligible & (prefer_cap | ~stride_eligible)
    cap_cand = cap_on & cap_trains & ~cap_correct & cap_eligible & clean_sel_cap
    stride_cand = (
        stride_on & ~stride_correct & stride_eligible & ~clean_sel_cap
    )
    candidates = np.flatnonzero(cap_cand | stride_cand)
    if not len(candidates):
        return allows_c, allows_s, final
    seg_of, ends = _segment_bounds(starts)
    pat_c = (ghr & ((1 << cap_bits) - 1)).tolist()
    pat_s = (ghr & ((1 << stride_bits) - 1)).tolist()
    c_tr = cap_trains.tolist()
    c_cor = cap_correct.tolist()
    c_eli = cap_eligible.tolist()
    s_cor = stride_correct.tolist()
    s_eli = stride_eligible.tolist()
    pref = prefer_cap.tolist()
    cap_paths = cap_mode == CFI_PATHS
    stride_paths = stride_mode == CFI_PATHS
    ci = 0
    nc = len(candidates)
    while ci < nc:
        j = int(candidates[ci])
        end = int(ends[seg_of[j]])
        # Machine state: "last" keeps an Optional pattern, "paths" a bitmap.
        bad_c: "int | None" = None
        map_c = 0
        bad_s: "int | None" = None
        map_s = 0
        while j < end:
            pc = pat_c[j]
            ps = pat_s[j]
            a_c = not (map_c >> pc) & 1 if cap_paths else pc != bad_c
            a_s = not (map_s >> ps) & 1 if stride_paths else ps != bad_s
            allows_c[j] = a_c
            allows_s[j] = a_s
            spec_c = c_eli[j] and a_c
            spec_s = s_eli[j] and a_s
            if spec_c and spec_s:
                sel_cap = pref[j]
            elif spec_c or spec_s:
                sel_cap = spec_c
            else:
                sel_cap = False
            spec_fin = spec_c or spec_s
            if cap_on and c_tr[j]:
                speculated = spec_fin and sel_cap
                if c_cor[j]:
                    if cap_paths:
                        map_c &= ~(1 << pc)
                    elif bad_c == pc:
                        bad_c = None
                elif speculated:
                    if cap_paths:
                        map_c |= 1 << pc
                    else:
                        bad_c = pc
            if stride_on:
                speculated = spec_fin and not sel_cap
                if s_cor[j]:
                    if stride_paths:
                        map_s &= ~(1 << ps)
                    elif bad_s == ps:
                        bad_s = None
                elif speculated:
                    if stride_paths:
                        map_s |= 1 << ps
                    else:
                        bad_s = ps
            j += 1
            if bad_c is None and not map_c and bad_s is None and not map_s:
                break
        if j == end and (bad_c is not None or map_c or bad_s is not None or map_s):
            cap_state = map_c if cap_paths else bad_c
            stride_state = map_s if stride_paths else bad_s
            final[int(seg_of[j - 1])] = (cap_state, stride_state)
        while ci < nc and candidates[ci] < j:
            ci += 1
    return allows_c, allows_s, final
