"""Batch emulation of the direct-mapped Link Table (ways == 1).

The LT is the one genuinely *global* structure in CAP — every static
load's lookups and updates interleave in program order through shared
slots — so the kernel rebuilds its timeline explicitly: one event per
lookup (at time ``2i`` for load ``i``) and one per update (at ``2i+1``),
grouped by slot, with the PF filter resolved first as a per-PF-slot
shift (a write is allowed iff the previous write to the same PF slot
carried the same PF bits).

Set-associative LTs (``ways > 1``) interleave tag-match/invalid/LRU way
selection in a way that has no closed form; the solver raises
:class:`~repro.kernels.api.BatchFallback` for them and the scalar
reference runs instead.
"""

from __future__ import annotations

import numpy as np

from .api import BatchFallback
from .segops import group_sort, seg_last_index_where, seg_shift

__all__ = ["solve_link_table", "commit_link_table"]


def solve_link_table(
    cfg,
    lookup_time: np.ndarray,
    lookup_hist: np.ndarray,
    update_time: np.ndarray,
    update_hist: np.ndarray,
    update_value: np.ndarray,
) -> dict:
    """Replay a Link Table's whole event timeline.

    ``*_time`` arrays must be globally unique and encode program order
    (the caller uses ``2 * load_index`` for lookups and ``2 * load_index
    + 1`` for updates, putting a load's own update after its lookup).

    Returns per-lookup outcome arrays (aligned with the ``lookup_*``
    inputs), the table statistics, and the end-of-run architectural
    state for :func:`commit_link_table`.
    """
    if cfg.ways != 1:
        raise BatchFallback(
            "set-associative Link Table has no closed-form way selection"
        )
    index_mask = np.int64((1 << cfg.index_bits) - 1)
    tag_mask = np.int64((1 << cfg.tag_bits) - 1) if cfg.tag_bits else np.int64(0)
    nl = len(lookup_time)
    nu = len(update_time)

    # Updates in program order (their times are already strictly
    # increasing per construction, but don't rely on it).
    u_order = np.argsort(update_time, kind="stable")
    u_time = update_time[u_order]
    u_hist = update_hist[u_order]
    u_value = update_value[u_order]
    u_slot = u_hist & index_mask
    u_tag = (u_hist >> cfg.index_bits) & tag_mask

    # PF filter: a write is allowed iff the previous write to the same PF
    # slot carried the same PF bits (first writes see None and reject).
    if cfg.pf_bits == 0:
        allowed = np.ones(nu, dtype=bool)
    else:
        pf_new = (u_value >> cfg.pf_low_bit) & np.int64((1 << cfg.pf_bits) - 1)
        if cfg.pf_decoupled:
            pf_slot = u_hist & np.int64(cfg.pf_table_entries - 1)
        else:
            pf_slot = u_slot
        pf_order, pf_starts = group_sort(pf_slot)
        prev_pf = seg_shift(pf_new[pf_order], pf_starts, -1)
        allowed = np.empty(nu, dtype=bool)
        allowed[pf_order] = prev_pf == pf_new[pf_order]

    # Interleave lookups and allowed updates per slot; each lookup reads
    # the latest allowed write to its slot before its own time.
    l_slot = lookup_hist & index_mask
    l_tag = (lookup_hist >> cfg.index_bits) & tag_mask
    ev_slot = np.concatenate([l_slot, u_slot])
    ev_time = np.concatenate([lookup_time, u_time])
    ev_write = np.concatenate([np.zeros(nl, dtype=bool), allowed])
    ev_link = np.concatenate([np.zeros(nl, dtype=np.int64), u_value])
    ev_tag = np.concatenate([l_tag, u_tag])
    ev_order = np.lexsort((ev_time, ev_slot))
    starts = np.empty(nl + nu, dtype=bool)
    if nl + nu:
        s_slot = ev_slot[ev_order]
        starts[0] = True
        starts[1:] = s_slot[1:] != s_slot[:-1]
    src_idx = seg_last_index_where(ev_write[ev_order], starts)
    valid_s = src_idx >= 0
    gather = np.maximum(src_idx, 0)
    link_s = ev_link[ev_order][gather]
    stored_tag_s = ev_tag[ev_order][gather]

    # Scatter per-lookup results back to the caller's lookup order.
    valid = np.empty(nl + nu, dtype=bool)
    link = np.empty(nl + nu, dtype=np.int64)
    stored_tag = np.empty(nl + nu, dtype=np.int64)
    valid[ev_order] = valid_s
    link[ev_order] = link_s
    stored_tag[ev_order] = stored_tag_s
    lk_valid = valid[:nl]
    lk_link = link[:nl]
    if cfg.tag_bits == 0:
        lk_tag_ok = lk_valid.copy()
        tag_mismatches = 0
        probe_miss = int((~lk_valid).sum())
        probe_tag_mismatch = 0
    else:
        tag_match = lk_valid & (stored_tag[:nl] == l_tag)
        lk_tag_ok = tag_match
        tag_mismatches = int((~tag_match).sum())
        probe_miss = int((~lk_valid).sum())
        probe_tag_mismatch = int((lk_valid & ~tag_match).sum())

    # End-of-run architectural state: the last allowed write per slot,
    # stamped with its 1-based global update ordinal (the scalar clock).
    ordinal = np.arange(1, nu + 1, dtype=np.int64)
    fin_order, fin_starts = group_sort(u_slot)
    fin_ends = np.empty(nu, dtype=bool)
    if nu:
        fin_ends[:-1] = fin_starts[1:]
        fin_ends[-1] = True
    last_write = seg_last_index_where(allowed[fin_order], fin_starts)
    state: dict = {"slots": [], "pf": {}, "pf_table": {}}
    if nu:
        at_ends = last_write[fin_ends]
        live = at_ends >= 0
        src = fin_order[at_ends[live]]
        state["slots"] = list(zip(
            u_slot[fin_order][fin_ends][live].tolist(),
            u_value[src].tolist(),
            u_tag[src].tolist(),
            ordinal[src].tolist(),
        ))
    if cfg.pf_bits and nu:
        # PF bits are rewritten on every update, allowed or not: the final
        # PF per PF slot is simply the last update's PF value there.
        pfo, pfs = group_sort(pf_slot)
        pfe = np.empty(nu, dtype=bool)
        pfe[:-1] = pfs[1:]
        pfe[-1] = True
        final_pf = dict(zip(
            pf_slot[pfo][pfe].tolist(), pf_new[pfo][pfe].tolist()
        ))
        if cfg.pf_decoupled:
            state["pf_table"] = final_pf
        else:
            state["pf"] = final_pf

    return {
        "valid": lk_valid,
        "link": lk_link,
        "tag_ok": lk_tag_ok,
        "stats": {
            "lookups": nl,
            "tag_mismatches": tag_mismatches,
            "pf_rejections": int((~allowed).sum()),
            "link_writes": int(allowed.sum()),
            "clock": nu,
            "probe_lt_misses": probe_miss,
            "probe_lt_tag_mismatches": probe_tag_mismatch,
        },
        "state": state,
    }


def commit_link_table(table, solved: dict) -> None:
    """Write a solver result's end state into a live ``LinkTable``."""
    stats = solved["stats"]
    table.lookups += stats["lookups"]
    table.tag_mismatches += stats["tag_mismatches"]
    table.pf_rejections += stats["pf_rejections"]
    table.link_writes += stats["link_writes"]
    table._clock += stats["clock"]
    state = solved["state"]
    pf = state["pf"]
    for slot, value, tag, stamp in state["slots"]:
        entry = table._sets[slot][0]
        entry.link = value
        entry.tag = tag
        entry.stamp = stamp
    for slot, pf_value in pf.items():
        table._sets[slot][0].pf = pf_value
    if table._pf_table is not None:
        for slot, pf_value in state["pf_table"].items():
            table._pf_table[slot] = pf_value
    probe = table.probe
    if probe is not None:
        probe.lt_misses += stats["probe_lt_misses"]
        probe.lt_tag_mismatches += stats["probe_lt_tag_mismatches"]
        probe.pf_rejections += stats["pf_rejections"]
