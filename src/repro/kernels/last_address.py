"""Batch kernel for :class:`repro.predictors.last_address.LastAddressPredictor`.

The simplest kernel, and the template for the others: group loads by LB
key, derive each prediction from the previous occurrence's address, and
run the confidence counter trajectory over the per-key update stream.
"""

from __future__ import annotations

import numpy as np

from .api import BatchResult
from .batch import EventBatch
from .lb import lb_commit
from .segops import seg_shift
from .control_flow import sat_counter_trajectory

__all__ = ["plan_last_address", "commit_last_address"]

_SOURCES = ("", "last")


def plan_last_address(predictor, batch: EventBatch) -> BatchResult:
    cfg = predictor.config
    lb = batch.lb_groups(predictor.table)
    order, starts, occ = lb["order"], lb["starts"], lb["occ"]
    _, actual, _ = batch.load_columns()
    n = batch.n_loads

    a_s = actual[order]
    prev_a = seg_shift(a_s, starts, -1)
    made_s = ~starts
    corr_s = made_s & (prev_a == a_s)

    # Confidence updates happen on every non-first occurrence (last_addr is
    # set from the first update on); run the counter over that subsequence.
    upd = made_s
    sub_starts = occ[upd] == 1
    maximum = (
        cfg.confidence_threshold
        if cfg.confidence_max is None else cfg.confidence_max
    )
    conf_after = sat_counter_trajectory(
        corr_s[upd], sub_starts, maximum, cfg.hysteresis
    )
    conf_before_s = np.zeros(n, dtype=np.int64)
    conf_before_s[upd] = seg_shift(conf_after, sub_starts, 0)
    spec_s = made_s & (conf_before_s >= cfg.confidence_threshold)

    # Back to original load order.
    address = np.empty(n, dtype=np.int64)
    made = np.empty(n, dtype=bool)
    speculative = np.empty(n, dtype=bool)
    correct = np.empty(n, dtype=bool)
    address[order] = prev_a
    made[order] = made_s
    speculative[order] = spec_s
    correct[order] = corr_s

    # Per-generation end state, one row per group in group order.
    ends = lb["ends"]
    conf_after_s = np.zeros(n, dtype=np.int64)
    conf_after_s[upd] = conf_after
    state = {
        "lb": lb,
        "final_addr": a_s[ends] if n else np.empty(0, dtype=np.int64),
        "final_conf": conf_after_s[ends] if n else np.empty(0, dtype=np.int64),
    }
    return BatchResult(
        address, made, speculative, correct,
        made.astype(np.int8), _SOURCES, state,
    )


def commit_last_address(predictor, batch: EventBatch, result: BatchResult) -> None:
    from ..predictors.last_address import _Entry

    state = result.state
    entries = []
    for addr, conf in zip(
        state["final_addr"].tolist(), state["final_conf"].tolist()
    ):
        entry = _Entry(predictor.config)
        entry.last_addr = addr
        entry.confidence.value = conf
        entries.append(entry)
    lb_commit(predictor.table, state["lb"], entries, batch.n_loads)
    batch.commit_control_flow(predictor)
