"""Batch kernel for :class:`repro.predictors.stride.StridePredictor`.

Covers both the basic two-delta predictor and the paper's enhanced
variant (CFI filter + interval technique).  The per-key recurrences —
two-delta stride confirmation, the reset-on-miss confidence counter, the
run-length/interval detector — all reduce to segmented shifts, streaks
and forward fills; only the CFI filter needs the hybrid vector-jump /
dirty-loop solver (:func:`repro.kernels.control_flow.resolve_cfi`).

The row solver is shared with the hybrid kernel via :func:`stride_rows`,
which stops just short of CFI resolution (the hybrid's CFI machines are
coupled through selector arbitration and resolve jointly).
"""

from __future__ import annotations

import numpy as np

from ..predictors.confidence import CFI_LAST, CFI_OFF
from .api import BatchResult
from .batch import EventBatch
from .control_flow import resolve_cfi, sat_counter_trajectory
from .lb import lb_commit
from .segops import seg_last_index_where, seg_shift, seg_streak_before

__all__ = ["stride_rows", "plan_stride", "commit_stride"]

_SOURCES = ("stride",)
_MASK32 = np.int64(0xFFFFFFFF)


def stride_rows(cfg, a_s: np.ndarray, starts: np.ndarray, occ: np.ndarray) -> dict:
    """Per-row stride state evolution in the segmented (per-key) layout.

    ``a_s`` holds the actual addresses sorted by key, ``occ`` each row's
    occurrence index within its key.  Returns every sorted-layout array a
    caller needs to finish the prediction — everything *except* the CFI
    filter, whose resolution differs between the stand-alone predictor
    (independent machine) and the hybrid (coupled through selection).

    Keys to the returned dict:

    * ``made``/``pred``/``corr`` — a prediction exists (every non-first
      occurrence), its address, and its correctness;
    * ``delta``/``stride_before``/``stride_after`` — delta training;
    * ``conf_before``/``conf_after``/``conf_ok`` — confidence counter
      around each row's train, and the pre-train confident flag;
    * ``int_veto``/``run_after``/``int_after`` — interval technique;
    * ``eligible`` — would speculate if the CFI filter allowed it;
    * ``sub_starts`` — segment heads of the update-row subsequence
      (``made`` rows), for the caller's CFI resolution.
    """
    n = len(a_s)
    made = ~starts
    prev_a = seg_shift(a_s, starts, 0)
    delta = (a_s - prev_a) & _MASK32

    if cfg.two_delta:
        prev_delta = seg_shift(delta, starts, -1)
        set_mask = (occ >= 2) & (delta == prev_delta)
        set_idx = seg_last_index_where(set_mask, starts)
        stride_after = np.where(set_idx >= 0, delta[np.maximum(set_idx, 0)], 0)
    else:
        stride_after = np.where(made, delta, 0)
    stride_before = seg_shift(stride_after, starts, 0)
    pred = (prev_a + stride_before) & _MASK32
    corr = made & (pred == a_s)

    # Confidence trains on every made row (``correct`` is non-None there).
    sub_starts = occ[made] == 1
    corr_u = corr[made]
    maximum = (
        cfg.confidence_threshold
        if cfg.confidence_max is None else cfg.confidence_max
    )
    conf_after_u = sat_counter_trajectory(
        corr_u, sub_starts, maximum, cfg.hysteresis
    )
    conf_before_u = seg_shift(conf_after_u, sub_starts, 0)
    conf_before = np.zeros(n, dtype=np.int64)
    conf_after = np.zeros(n, dtype=np.int64)
    conf_before[made] = conf_before_u
    conf_after[made] = conf_after_u
    conf_ok = made & (conf_before >= cfg.confidence_threshold)

    run_after = np.zeros(n, dtype=np.int64)
    int_after = np.zeros(n, dtype=np.int64)
    int_veto = np.zeros(n, dtype=bool)
    if cfg.use_interval:
        run_before_u = seg_streak_before(corr_u, sub_starts)
        run_after[made] = np.where(corr_u, run_before_u + 1, 0)
        reset_u = ~corr_u & (run_before_u > 0)
        int_set = seg_last_index_where(reset_u, sub_starts)
        int_after_u = np.where(
            int_set >= 0, run_before_u[np.maximum(int_set, 0)], 0
        )
        int_after[made] = int_after_u
        int_before_u = seg_shift(int_after_u, sub_starts, 0)
        int_veto[made] = (int_before_u > 0) & (run_before_u >= int_before_u)

    return {
        "made": made,
        "pred": pred,
        "corr": corr,
        "delta": delta,
        "stride_after": stride_after,
        "conf_before": conf_before,
        "conf_after": conf_after,
        "conf_ok": conf_ok,
        "int_veto": int_veto,
        "run_after": run_after,
        "int_after": int_after,
        "eligible": conf_ok & ~int_veto,
        "sub_starts": sub_starts,
    }


def plan_stride(predictor, batch: EventBatch) -> BatchResult:
    cfg = predictor.config
    lb = batch.lb_groups(predictor.table)
    order, starts, occ = lb["order"], lb["starts"], lb["occ"]
    _, actual, _ = batch.load_columns()
    n = batch.n_loads

    a_s = actual[order]
    rows = stride_rows(cfg, a_s, starts, occ)
    made_s = rows["made"]

    if cfg.cfi_mode == CFI_OFF:
        ghr_u = np.zeros(int(made_s.sum()), dtype=np.int64)
    else:
        ghr_u = batch.ghr_at_load[order][made_s]
    pattern_u = ghr_u & np.int64((1 << cfg.cfi_bits) - 1)
    allows_u, cfi_final = resolve_cfi(
        cfg.cfi_mode, rows["sub_starts"], pattern_u,
        rows["corr"][made_s], rows["eligible"][made_s],
    )
    allows = np.ones(n, dtype=bool)
    allows[made_s] = allows_u
    spec_s = rows["eligible"] & allows
    corr_s = rows["corr"]
    conf_ok = rows["conf_ok"]

    address = np.empty(n, dtype=np.int64)
    made = np.empty(n, dtype=bool)
    speculative = np.empty(n, dtype=bool)
    correct = np.empty(n, dtype=bool)
    address[order] = rows["pred"]
    made[order] = made_s
    speculative[order] = spec_s
    correct[order] = corr_s

    ends = lb["ends"]
    multi = occ[ends] >= 1 if n else np.empty(0, dtype=bool)
    # Subsequence segment index -> group index (generations with >= 2
    # loads, in group order) for the per-group final CFI machine states.
    multi_keys = np.flatnonzero(multi)
    cfi_states = {
        int(multi_keys[si]): machine for si, machine in cfi_final.items()
    }
    empty = np.empty(0, dtype=np.int64)
    state = {
        "lb": lb,
        "last_addr": a_s[ends] if n else empty,
        "stride": rows["stride_after"][ends] if n else empty,
        "last_delta": rows["delta"][ends] if n else empty,
        "multi": multi,
        "conf": rows["conf_after"][ends] if n else empty,
        "run_length": rows["run_after"][ends] if n else empty,
        "interval": rows["int_after"][ends] if n else empty,
        "cfi_states": cfi_states,
        "probe": {
            "lb_misses": int(starts.sum()),
            "confidence_vetoes": int((made_s & ~conf_ok).sum()),
            "cfi_vetoes": int((conf_ok & ~allows).sum()),
            "interval_stops": int(
                (conf_ok & allows & rows["int_veto"]).sum()
            ),
            "cfi_bad_patterns": (
                0 if cfg.cfi_mode == CFI_OFF
                else int((~corr_s & spec_s & made_s).sum())
            ),
        },
    }
    return BatchResult(
        address, made, speculative, correct,
        np.zeros(n, dtype=np.int8), _SOURCES, state,
    )


def commit_stride(predictor, batch: EventBatch, result: BatchResult) -> None:
    from ..predictors.stride import StrideState

    cfg = predictor.config
    state = result.state
    cfi_states = state["cfi_states"]
    entries = []
    rows = zip(
        state["last_addr"].tolist(),
        state["stride"].tolist(),
        state["last_delta"].tolist(),
        state["multi"].tolist(),
        state["conf"].tolist(),
        state["run_length"].tolist(),
        state["interval"].tolist(),
    )
    for i, (addr, stride, last_delta, multi, conf, run, interval) in enumerate(rows):
        entry = StrideState(cfg)
        entry.last_addr = addr
        entry.stride = stride
        entry.last_delta = last_delta if (multi and cfg.two_delta) else None
        entry.confidence.value = conf
        entry.run_length = run
        entry.interval = interval
        entry.spec_last_addr = addr
        machine = cfi_states.get(i)
        if machine is not None:
            if cfg.cfi_mode == CFI_LAST:
                entry.cfi._bad_pattern = machine
            else:
                entry.cfi._path_bad = machine
        entries.append(entry)
    lb_commit(predictor.table, state["lb"], entries, batch.n_loads)
    batch.commit_control_flow(predictor)

    counts = state["probe"]
    if predictor.probe is not None:
        predictor.probe.lb_misses += counts["lb_misses"]
    logic_probe = predictor.logic.probe
    if logic_probe is not None:
        logic_probe.confidence_vetoes += counts["confidence_vetoes"]
        logic_probe.cfi_vetoes += counts["cfi_vetoes"]
        logic_probe.interval_stops += counts["interval_stops"]
        logic_probe.cfi_bad_patterns += counts["cfi_bad_patterns"]
