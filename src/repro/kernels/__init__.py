"""Batch kernel layer: vectorised predictor evaluation over columnar events.

The scalar evaluation loop (:func:`repro.eval.runner.run_on_columns`)
interprets one event at a time; for table-indexed predictors the same
computation factors into grouped array passes — the kernels here evaluate
a whole :class:`~repro.trace.trace.PredictorStream` per predictor in a
handful of numpy operations plus short Python loops over rare sequential
stretches (CFI dirty periods, per-key state commits).

Entry point: :func:`try_run_batch`, called by ``run_on_columns``.  It
dispatches to a predictor's ``predict_batch``/``update_batch`` kernel when

* the resolved backend is ``numpy`` (``REPRO_BACKEND`` / ``--backend``),
* the predictor advertises ``supports_batch`` and is not in the pipelined
  ``speculative_mode``, and
* no per-access observer is attached (the differential harness has its
  own record-reconstruction entry point, :func:`batch_records`),

and falls back to the scalar reference when the kernel raises
:class:`BatchFallback` (configurations with genuinely sequential table
dynamics, e.g. an overflowing load-buffer set or a set-associative LT).
Either way the metrics record which backend actually ran.
"""

from __future__ import annotations

from typing import Callable, Optional

from .api import (
    BACKEND_ENV,
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    BatchFallback,
    BatchResult,
    available_backends,
    record_dispatch,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NUMPY",
    "BACKEND_PYTHON",
    "BatchFallback",
    "BatchResult",
    "available_backends",
    "record_dispatch",
    "resolve_backend",
    "supports_batch",
    "try_run_batch",
    "run_batch",
    "batch_records",
]


def supports_batch(predictor) -> bool:
    """Whether ``predictor`` can be evaluated by a batch kernel at all."""
    return bool(getattr(type(predictor), "supports_batch", False)) and not getattr(
        predictor, "speculative_mode", False
    )


def run_batch(predictor, stream, warmup_loads: int = 0) -> Optional[BatchResult]:
    """Run the kernel path unconditionally; ``None`` on :class:`BatchFallback`.

    The predictor must pass :func:`supports_batch`.  On success the
    predictor holds the same end-of-stream state the scalar path would
    have produced.
    """
    from .batch import EventBatch

    batch = EventBatch.from_stream(stream)
    try:
        result = predictor.predict_batch(batch)
    except BatchFallback:
        return None
    predictor.update_batch(batch, result)
    return result


def try_run_batch(
    predictor,
    stream,
    metrics,
    warmup_loads: int = 0,
    observer: Optional[Callable] = None,
) -> bool:
    """Kernel dispatch for ``run_on_columns``.

    Returns True when the batch path ran (metrics fully folded); False
    when the caller must run the scalar loop.
    """
    if observer is not None or not supports_batch(predictor):
        record_dispatch(predictor, "declined")
        return False
    if resolve_backend() != BACKEND_NUMPY:
        record_dispatch(predictor, "declined")
        return False
    result = run_batch(predictor, stream, warmup_loads)
    if result is None:
        record_dispatch(predictor, "fallback")
        return False
    record_dispatch(predictor, "dispatched")
    fold_metrics(result, metrics, warmup_loads)
    metrics.backend = BACKEND_NUMPY
    return True


def fold_metrics(result: BatchResult, metrics, warmup_loads: int) -> None:
    """Accumulate a batch result into a PredictorMetrics, skipping warm-up."""
    n = len(result.made)
    w = min(max(warmup_loads, 0), n)
    made = result.made[w:]
    spec = result.speculative[w:]
    corr = result.correct[w:]
    metrics.loads += n - w
    metrics.predictions += int(made.sum())
    metrics.correct_predictions += int(corr.sum())
    metrics.speculative += int(spec.sum())
    metrics.correct_speculative += int((spec & corr).sum())


def batch_records(result: BatchResult, stream) -> list:
    """Reconstruct per-access ``(ip, offset, actual, prediction)`` views.

    Returns one ``(ip, offset, actual, address, speculative, source)``
    tuple per dynamic load — the exact fields the differential harness's
    observer captures from the scalar paths.
    """
    import numpy as np

    tag, ip, a, b = stream.arrays()
    idx = np.flatnonzero(tag == 1)
    ips = ip[idx].tolist()
    actual = a[idx].tolist()
    offsets = b[idx].tolist()
    addresses = result.address.tolist()
    made = result.made.tolist()
    spec = result.speculative.tolist()
    names = result.source_names
    codes = result.source_code.tolist()
    return [
        (
            ips[i],
            offsets[i],
            actual[i],
            addresses[i] if made[i] else None,
            spec[i],
            names[codes[i]],
        )
        for i in range(len(ips))
    ]
