"""Batch kernel for :class:`repro.predictors.gshare_address.GShareAddressPredictor`.

Structurally the last-address kernel over a different grouping: loads are
grouped by table *slot* (folded IP xor control history, masked to the
table size) instead of by LB key, and there is no load buffer — the
direct-mapped table tracks no hit/miss statistics.
"""

from __future__ import annotations

import numpy as np

from .api import BatchResult
from .batch import EventBatch
from .segops import fold_xor_array, group_sort, seg_shift
from .control_flow import sat_counter_trajectory

__all__ = ["plan_gshare", "commit_gshare"]

_SOURCES = ("gshare",)


def plan_gshare(predictor, batch: EventBatch) -> BatchResult:
    from ..predictors.gshare_address import HISTORY_BRANCH

    cfg = predictor.config
    ips, actual, _ = batch.load_columns()
    n = batch.n_loads
    index_bits = predictor.table.index_bits
    if cfg.history_mode == HISTORY_BRANCH:
        control = batch.ghr_at_load & np.int64((1 << cfg.history_bits) - 1)
    else:
        control = fold_xor_array(batch.path_hash_at_load(), cfg.history_bits)
    index = fold_xor_array(ips >> 2, index_bits) ^ control
    slot = index & np.int64((1 << index_bits) - 1)

    order, starts = group_sort(slot)
    a_s = actual[order]
    prev_a = seg_shift(a_s, starts, -1)
    made_s = ~starts
    corr_s = made_s & (prev_a == a_s)

    upd = made_s
    pos = np.arange(n, dtype=np.int64)
    occ_first = pos - 1  # sorted layout: an update row's segment head check
    # A slot's first update row is the row right after its segment head.
    sub_starts = starts[occ_first[upd]] if n else np.empty(0, dtype=bool)
    maximum = (
        cfg.confidence_threshold
        if cfg.confidence_max is None else cfg.confidence_max
    )
    conf_after = sat_counter_trajectory(
        corr_s[upd], sub_starts, maximum, hysteresis=False
    )
    conf_before_s = np.zeros(n, dtype=np.int64)
    conf_before_s[upd] = seg_shift(conf_after, sub_starts, 0)
    spec_s = made_s & (conf_before_s >= cfg.confidence_threshold)

    address = np.empty(n, dtype=np.int64)
    made = np.empty(n, dtype=bool)
    speculative = np.empty(n, dtype=bool)
    correct = np.empty(n, dtype=bool)
    address[order] = prev_a
    made[order] = made_s
    speculative[order] = spec_s
    correct[order] = corr_s

    ends = np.empty(n, dtype=bool)
    if n:
        ends[:-1] = starts[1:]
        ends[-1] = True
    conf_after_s = np.zeros(n, dtype=np.int64)
    conf_after_s[upd] = conf_after
    state = {
        "slots": slot[order][starts] if n else np.empty(0, dtype=np.int64),
        "final_addr": a_s[ends] if n else np.empty(0, dtype=np.int64),
        "final_conf": conf_after_s[ends] if n else np.empty(0, dtype=np.int64),
    }
    return BatchResult(
        address, made, speculative, correct,
        np.zeros(n, dtype=np.int8), _SOURCES, state,
    )


def commit_gshare(predictor, batch: EventBatch, result: BatchResult) -> None:
    from ..predictors.gshare_address import _Entry

    state = result.state
    slots_list = predictor.table._slots
    for slot, addr, conf in zip(
        state["slots"].tolist(),
        state["final_addr"].tolist(),
        state["final_conf"].tolist(),
    ):
        entry = _Entry(predictor.config)
        entry.address = addr
        entry.confidence.value = conf
        slots_list[slot] = entry
    batch.commit_control_flow(predictor)
