"""Segmented array primitives for the batch kernels.

Every batch kernel reduces a predictor's per-key (or per-slot) sequential
state machine to array passes over a *segmented* layout: events are stably
sorted by group key, so each group occupies a contiguous run, and the
recurrences are solved with per-segment shifts, forward fills, prefix sums
and scans.  These helpers implement that vocabulary once.

Conventions shared by all helpers:

* ``starts`` is a boolean array marking the first element of each segment
  in the sorted layout.
* All index-valued outputs use ``-1`` for "no such position".
* Inputs are ``int64``/``bool`` numpy arrays; none of the helpers mutate
  their arguments.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "group_sort",
    "segment_starts",
    "seg_shift",
    "seg_last_index_where",
    "seg_exclusive_cumsum",
    "seg_streak_before",
    "seg_clamped_walk",
    "fold_xor_array",
]


def group_sort(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Stable sort positions by ``keys``.

    Returns ``(order, starts)``: ``order`` permutes original positions into
    the segmented layout (groups contiguous, original order preserved
    within a group), ``starts`` marks segment heads in that layout.
    """
    order = np.argsort(keys, kind="stable")
    return order, segment_starts(keys[order])


def segment_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Segment-head marker array for already-grouped keys."""
    n = len(sorted_keys)
    starts = np.empty(n, dtype=bool)
    if n:
        starts[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    return starts


def seg_shift(values: np.ndarray, starts: np.ndarray, fill) -> np.ndarray:
    """Shift ``values`` down by one within each segment.

    ``out[i] = values[i-1]`` except at segment heads, which get ``fill``.
    """
    out = np.empty_like(values)
    out[1:] = values[:-1]
    if len(out):
        out[0] = fill
    out[starts] = fill
    return out


def seg_last_index_where(mask: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per position: index of the last ``mask`` hit at-or-before it in its
    segment, or ``-1``.

    Works by max-accumulating hit indices globally and discarding carries
    that predate the current segment head (indices are monotone, so any
    carry from an earlier segment is smaller than the head position).
    """
    n = len(mask)
    pos = np.arange(n, dtype=np.int64)
    hit = np.where(mask, pos, -1)
    np.maximum.accumulate(hit, out=hit)
    head = np.where(starts, pos, -1)
    np.maximum.accumulate(head, out=head)
    return np.where(hit >= head, hit, -1)


def seg_exclusive_cumsum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment exclusive prefix sum (segment heads get 0).

    ``values`` must be non-negative: the segment-base subtraction rides on
    the global prefix sum being non-decreasing.
    """
    total = np.cumsum(values) - values
    head_base = np.where(starts, total, 0)
    np.maximum.accumulate(head_base, out=head_base)
    return total - head_base


def seg_streak_before(correct: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Length of the run of ``True`` immediately *before* each position,
    within its segment.

    ``out[i]`` counts consecutive ``correct`` values ending at ``i-1``; a
    segment head gets 0.  This is the saturating-counter/interval-detector
    workhorse: a reset-on-miss counter's pre-update value is
    ``min(maximum, streak_before)``.
    """
    n = len(correct)
    pos = np.arange(n, dtype=np.int64)
    # Boundary = last miss at-or-before i-1, or the position before the
    # segment head.  Model both as "last boundary position" and subtract.
    miss_at = seg_last_index_where(~correct, starts)
    head = np.where(starts, pos, -1)
    np.maximum.accumulate(head, out=head)
    shifted_miss = np.empty(n, dtype=np.int64)
    shifted_miss[1:] = miss_at[:-1]
    if n:
        shifted_miss[0] = -1
    shifted_miss[starts] = -1  # misses before the head don't carry over
    boundary = np.maximum(shifted_miss, head - 1)
    return pos - 1 - boundary


def seg_clamped_walk(
    delta: np.ndarray,
    starts: np.ndarray,
    low: int,
    high: int,
    initial: int,
) -> np.ndarray:
    """Per-segment clamped walk: ``v_i = clip(v_{i-1} + delta_i, low, high)``
    with ``v`` starting at ``initial`` at each segment head.  Returns the
    post-update value at every position.

    Each step is the clamp-affine map ``x -> min(high, max(low, x + d))``;
    such maps compose into maps of the same shape, so the running
    composition is computed with a Hillis–Steele segmented scan in
    ``O(n log n)`` array work.
    """
    n = len(delta)
    if not n:
        return np.empty(0, dtype=np.int64)
    lo = np.full(n, low, dtype=np.int64)
    hi = np.full(n, high, dtype=np.int64)
    dd = delta.astype(np.int64, copy=True)
    seg_id = np.cumsum(starts) - 1
    step = 1
    while step < n:
        same = seg_id[step:] == seg_id[:-step]
        # Compose: current map (later) applied after the map at i-step.
        f_lo = lo[:-step][same]
        f_hi = hi[:-step][same]
        f_d = dd[:-step][same]
        idx = np.flatnonzero(same) + step
        g_lo = lo[idx]
        g_hi = hi[idx]
        g_d = dd[idx]
        lo[idx] = np.minimum(g_hi, np.maximum(g_lo, f_lo + g_d))
        hi[idx] = np.minimum(g_hi, np.maximum(g_lo, f_hi + g_d))
        dd[idx] = f_d + g_d
        step <<= 1
    return np.minimum(hi, np.maximum(lo, initial + dd))


def fold_xor_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`repro.common.bitops.fold_xor`.

    XOR-folds each value down to ``width`` bits.  Ingest canonicalises
    addresses to 63 bits, but this kernel must terminate for *any*
    int64 input: a negative value (an un-canonicalised address at or
    above ``2**63``) under arithmetic ``>>`` converges to ``-1``, never
    ``0``, and the fold loop below would spin forever.  Dropping the
    sign bit at entry bounds the loop; for canonical inputs the mask is
    the identity.
    """
    if width <= 0:
        return np.zeros_like(values)
    mask = np.int64((1 << width) - 1)
    folded = np.zeros_like(values)
    remaining = values & np.int64((1 << 63) - 1)
    while True:
        live = remaining != 0
        if not live.any():
            break
        folded[live] ^= remaining[live] & mask
        remaining[live] >>= width
    return folded
