"""Load-buffer emulation shared by the batch kernels.

In the immediate model every dynamic load performs a predict-time lookup
(inserting a fresh entry on the first access) and an update-time lookup,
so the table's behaviour depends only on the per-load key sequence — not
on any predictor state.  :func:`lb_solve` exploits that to factor the
whole run into **generations**: maximal stretches of a static load's
dynamic instances during which its entry stays resident.  Rows grouped
by generation behave exactly like rows grouped by key in an eviction-free
run (a re-inserted key restarts from a fresh entry), so every per-key
segmented solver downstream works unchanged on the generation grouping.

* Sets that never see more distinct keys than they have ways are
  closed-form: one generation per key, ways filled in first-occurrence
  order, ``lru = 2 * t_last + 2`` (``_clock`` advances exactly twice per
  dynamic load).
* Overflowing sets are replayed with a tiny per-set LRU loop over that
  set's loads only — the one genuinely sequential part of the table —
  yielding each load's generation and the final way placement.

``hits = 2 * loads - generations``, ``misses = generations`` (each
generation opens with the predict-time miss that inserted it).
"""

from __future__ import annotations

import numpy as np

from .segops import seg_last_index_where

__all__ = ["lb_solve", "lb_commit"]


def lb_solve(table, key: np.ndarray) -> dict:
    """Generation-aware grouping of the per-load key sequence.

    Returns the sorted (group, time) layout used by every kernel —
    ``order``/``starts``/``occ`` as in ``EventBatch.load_groups`` but with
    one segment per *generation* — plus the per-group arrays and the
    placement info :func:`lb_commit` needs:

    * ``group_keys``/``first_load``/``last_load`` — indexed by group id;
    * ``n_normal`` — groups below this id live in never-overflowing sets
      (committed by first-occurrence way fill); the rest were replayed;
    * ``placed`` — explicit ``(set, way, gid, last_load)`` placement for
      the ways of replayed sets still valid at end of run;
    * ``evictions`` — total evictions performed.
    """
    n = len(key)
    index_mask = (1 << table.index_bits) - 1
    ways = table.ways
    gid = np.empty(n, dtype=np.int64)
    placed: list = []
    evictions = 0

    u_keys = np.unique(key) if n else np.empty(0, dtype=np.int64)
    set_counts = np.bincount(
        (u_keys & np.int64(index_mask)).astype(np.int64),
        minlength=table.num_sets,
    )
    overflow_sets = set_counts > ways
    if overflow_sets.any():
        ovf = overflow_sets[(key & np.int64(index_mask)).astype(np.int64)]
        normal = ~ovf
        nk = key[normal]
        u_norm, inv = (
            np.unique(nk, return_inverse=True) if len(nk)
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        gid[normal] = inv
        n_normal = len(u_norm)
        next_gid = n_normal
        # Sequential LRU replay, restricted to the overflowing sets.  A
        # way is a mutable [key, last_load, gid] cell; eviction replaces
        # the least-recently-used cell in place (the scalar table breaks
        # lru ties by way order, and per-load times make ties impossible).
        resident: dict = {}       # key -> way cell
        set_ways: dict = {}       # set index -> list of way cells
        out = []
        ovf_pos = np.flatnonzero(ovf)
        for pos, k in zip(ovf_pos.tolist(), key[ovf].tolist()):
            cell = resident.get(k)
            if cell is not None:
                cell[1] = pos
                out.append(cell[2])
                continue
            s = k & index_mask
            cells = set_ways.setdefault(s, [])
            if len(cells) < ways:
                cell = [k, pos, next_gid]
                cells.append(cell)
            else:
                cell = min(cells, key=lambda c: c[1])
                del resident[cell[0]]
                evictions += 1
                cell[0] = k
                cell[1] = pos
                cell[2] = next_gid
            resident[k] = cell
            out.append(next_gid)
            next_gid += 1
        gid[ovf_pos] = np.asarray(out, dtype=np.int64)
        for s, cells in set_ways.items():
            for wi, cell in enumerate(cells):
                placed.append((s, wi, cell[2], cell[1]))
    else:
        _, inv = (
            np.unique(key, return_inverse=True) if n
            else (None, np.empty(0, dtype=np.int64))
        )
        gid[:] = inv
        n_normal = int(gid.max()) + 1 if n else 0

    order = np.argsort(gid, kind="stable")
    g_sorted = gid[order]
    starts = np.empty(n, dtype=bool)
    if n:
        starts[0] = True
        starts[1:] = g_sorted[1:] != g_sorted[:-1]
    occ = np.arange(n, dtype=np.int64) - seg_last_index_where(starts, starts)
    ends = np.empty(n, dtype=bool)
    if n:
        ends[:-1] = starts[1:]
        ends[-1] = True
    empty = np.empty(0, dtype=np.int64)
    return {
        "order": order,
        "starts": starts,
        "occ": occ,
        "ends": ends,
        "group_keys": key[order][starts] if n else empty,
        "first_load": order[starts] if n else empty,
        "last_load": order[ends] if n else empty,
        "n_normal": n_normal,
        "placed": placed,
        "evictions": evictions,
    }


def lb_commit(table, solved: dict, entries: list, total_loads: int) -> None:
    """Write a :func:`lb_solve` end state into a live SetAssociativeTable.

    ``entries`` is parallel to the group ids (one per generation; entries
    of evicted generations are simply never placed).
    """
    index_mask = (1 << table.index_bits) - 1
    group_keys = solved["group_keys"]
    first_load = solved["first_load"]
    last_load = solved["last_load"]
    n_normal = solved["n_normal"]
    sets = table._sets
    fill = np.argsort(first_load[:n_normal], kind="stable")
    for gid in fill.tolist():
        k = int(group_keys[gid])
        index = k & index_mask
        tag = k >> table.index_bits
        for way in sets[index]:
            if way.tag is None:
                way.tag = tag
                way.entry = entries[gid]
                way.lru = 2 * int(last_load[gid]) + 2
                break
        else:  # pragma: no cover - normal sets never overflow
            raise AssertionError("lb_commit overflow in a non-replayed set")
    for s, wi, gid, last in solved["placed"]:
        way = sets[s][wi]
        way.tag = int(group_keys[gid]) >> table.index_bits
        way.entry = entries[gid]
        way.lru = 2 * last + 2
    groups = len(entries)
    table._clock += 2 * total_loads
    table.hits += 2 * total_loads - groups
    table.misses += groups
    table.evictions += solved["evictions"]
