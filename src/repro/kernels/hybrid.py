"""Batch kernel for :class:`repro.predictors.hybrid.HybridPredictor`.

The hybrid composes pieces the other kernels already solve — the CAP
component rows (:func:`repro.kernels.cap.cap_rows`), the stride rows
(:func:`repro.kernels.stride.stride_rows`), the shared Load Buffer — and
adds the parts that only exist in the hybrid:

* the up/down **selector**, a clamped ±1 walk over the rows where both
  components had verifiable predictions that disagreed;
* **arbitration** (the Section 3.7 selection chain), vectorised over the
  per-component speculation flags;
* the **coupled CFI resolution** — each component's filter trains with
  ``speculated = finally-speculative and selected == component``, which
  depends on both filters' ``allows``, so the two machines resolve
  jointly (:func:`repro.kernels.control_flow.resolve_cfi_hybrid`);
* the Figures 8–10 selector statistics.

The ``unless_stride_selected`` LT-update policy gates the Link Table
write on the *final* arbitration outcome, which feeds back into the LT
timeline itself; that loop has no closed form, so the kernel raises
:class:`~repro.kernels.api.BatchFallback` and the scalar path runs.
"""

from __future__ import annotations

import numpy as np

from ..predictors.confidence import CFI_LAST, CFI_OFF
from ..predictors.hybrid import UPDATE_UNLESS_STRIDE_CORRECT, UPDATE_UNLESS_STRIDE_SELECTED
from .api import BatchFallback, BatchResult
from .batch import EventBatch
from .cap import cap_rows
from .control_flow import resolve_cfi_hybrid
from .lb import lb_commit
from .link_table import commit_link_table
from .segops import seg_clamped_walk, seg_shift
from .stride import stride_rows

__all__ = ["plan_hybrid", "commit_hybrid"]

_SOURCES = ("hybrid", "cap", "stride")


def _selector_state_name(value: int, maximum: int) -> str:
    """Mirror ``UpDownCounter.state_name(low="stride", high="cap")``."""
    if 2 * value <= maximum:
        return ("strong" if value == 0 else "weak") + " stride"
    return ("strong" if value == maximum else "weak") + " cap"


def plan_hybrid(predictor, batch: EventBatch) -> BatchResult:
    cfg = predictor.config
    if cfg.lt_update_policy == UPDATE_UNLESS_STRIDE_SELECTED:
        raise BatchFallback(
            "unless_stride_selected couples the LT timeline to arbitration"
        )
    lb = batch.lb_groups(predictor.load_buffer)
    order, starts, occ = lb["order"], lb["starts"], lb["occ"]
    _, actual, offsets = batch.load_columns()
    n = batch.n_loads

    a_s = actual[order]
    b_s = offsets[order]
    made_lb = ~starts

    # Stride rows first: the unless_stride_correct policy gates LT writes
    # on the stride component's correctness, which is CFI-independent.
    srows = stride_rows(cfg.stride, a_s, starts, occ)
    corr_s = srows["corr"]
    if cfg.lt_update_policy == UPDATE_UNLESS_STRIDE_CORRECT:
        update_lt_s = ~corr_s  # first loads have no stride prediction -> True
    else:
        update_lt_s = None
    crows = cap_rows(
        predictor.cap, batch, a_s, b_s, starts, order, update_lt_s
    )
    made_c = crows["made"]
    corr_c = crows["corr"]

    # Selector: ±1 walk over rows where both components were verifiable
    # and disagreed (made_c implies a stride prediction also existed).
    sel_max = (1 << cfg.selector_bits) - 1
    delta = np.zeros(n, dtype=np.int64)
    delta[made_c & corr_c & ~corr_s] = 1
    delta[made_c & ~corr_c & corr_s] = -1
    sel_after = seg_clamped_walk(delta, starts, 0, sel_max, cfg.selector_init)
    sel_before = seg_shift(sel_after, starts, cfg.selector_init)
    if cfg.static_selector is not None:
        pref = np.full(n, cfg.static_selector == "cap", dtype=bool)
    else:
        pref = 2 * sel_before > sel_max

    # Coupled CFI resolution over the LB-hit rows.
    cap_mode = cfg.cap.cfi_mode
    stride_mode = cfg.stride.cfi_mode
    nm = int(made_lb.sum())
    if cap_mode == CFI_OFF and stride_mode == CFI_OFF:
        ghr_m = np.zeros(nm, dtype=np.int64)
    else:
        ghr_m = batch.ghr_at_load[order][made_lb]
    allows_c_m, allows_s_m, cfi_final = resolve_cfi_hybrid(
        cap_mode, cfg.cap.cfi_bits, stride_mode, cfg.stride.cfi_bits,
        occ[made_lb] == 1, ghr_m,
        made_c[made_lb], corr_c[made_lb], crows["eligible"][made_lb],
        corr_s[made_lb], srows["eligible"][made_lb], pref[made_lb],
    )
    allows_c = np.ones(n, dtype=bool)
    allows_s = np.ones(n, dtype=bool)
    allows_c[made_lb] = allows_c_m
    allows_s[made_lb] = allows_s_m
    spec_c = crows["eligible"] & allows_c
    spec_s = srows["eligible"] & allows_s
    spec_fin = spec_c | spec_s

    # Section 3.7 selection chain.  On LB-hit rows the stride component
    # always has an address, so "cap made, stride not" cannot arise and
    # the chain reduces to: dual-speculative -> selector; one speculative
    # -> that component; neither -> stride unless CAP also made, then the
    # selector's favourite.
    sel_cap = np.where(
        spec_c & spec_s, pref,
        np.where(spec_c, True, np.where(spec_s, False,
                 np.where(~made_c, False, pref))),
    )
    address_s = np.where(sel_cap, crows["address"], srows["pred"])
    corr_fin = made_lb & (address_s == a_s)

    address = np.empty(n, dtype=np.int64)
    made = np.empty(n, dtype=bool)
    speculative = np.empty(n, dtype=bool)
    correct = np.empty(n, dtype=bool)
    source = np.empty(n, dtype=np.int8)
    address[order] = address_s
    made[order] = made_lb
    speculative[order] = spec_fin
    correct[order] = corr_fin
    source[order] = np.where(starts, 0, np.where(sel_cap, 1, 2))

    # Selector statistics (Figures 8-10).  The state distribution samples
    # the pre-train selector on every dual-prediction row; the selection
    # RateCounter scores speculative rows where both addresses existed.
    both_made = made_c  # made_c implies stride made on LB-hit rows
    counts = np.bincount(sel_before[both_made], minlength=sel_max + 1)
    state_counts: dict = {}
    for v, c in enumerate(counts.tolist()):
        if c:  # several values share a name once the selector exceeds 2 bits
            name = _selector_state_name(v, sel_max)
            state_counts[name] = state_counts.get(name, 0) + int(c)
    f8 = spec_fin & both_made
    other_corr = np.where(sel_cap, corr_s, corr_c)
    miss_sel = f8 & ~corr_fin & other_corr
    selstats = {
        "states": state_counts,
        "speculative": int(spec_fin.sum()),
        "dual_speculative": int(f8.sum()),
        "selection_hits": int((f8 & ~miss_sel).sum()),
        "selection_total": int(f8.sum()),
    }

    ends = crows["ends"]
    tag_ok = crows["tag_ok"]
    conf_ok_c = crows["conf_ok"]
    conf_ok_s = srows["conf_ok"]
    multi = occ[ends] >= 1 if n else np.empty(0, dtype=bool)
    multi_keys = np.flatnonzero(multi)
    cfi_states = {
        int(multi_keys[si]): pair for si, pair in cfi_final.items()
    }
    empty = np.empty(0, dtype=np.int64)
    state = {
        "lb": lb,
        "last_addr": a_s[ends] if n else empty,
        "offsets": crows["offsets"],
        "history": crows["final_hist"],
        "cap_conf": crows["final_conf"],
        "stride": srows["stride_after"][ends] if n else empty,
        "last_delta": srows["delta"][ends] if n else empty,
        "multi": multi,
        "stride_conf": srows["conf_after"][ends] if n else empty,
        "run_length": srows["run_after"][ends] if n else empty,
        "interval": srows["int_after"][ends] if n else empty,
        "selector": sel_after[ends] if n else empty,
        "cfi_states": cfi_states,
        "solved_lt": crows["solved_lt"],
        "selstats": selstats,
        "probe": {
            "lb_misses": int(starts.sum()),
            "selector_cap": int((spec_fin & sel_cap).sum()),
            "selector_stride": int((spec_fin & ~sel_cap).sum()),
            "cap_confidence_vetoes": int((made_c & tag_ok & ~conf_ok_c).sum()),
            "cap_cfi_vetoes": int(
                (made_c & tag_ok & conf_ok_c & ~allows_c).sum()
            ),
            "cap_cfi_bad_patterns": (
                0 if cap_mode == CFI_OFF
                else int((made_c & ~corr_c & spec_fin & sel_cap).sum())
            ),
            "stride_confidence_vetoes": int((made_lb & ~conf_ok_s).sum()),
            "stride_cfi_vetoes": int((conf_ok_s & ~allows_s).sum()),
            "interval_stops": int(
                (conf_ok_s & allows_s & srows["int_veto"]).sum()
            ),
            "stride_cfi_bad_patterns": (
                0 if stride_mode == CFI_OFF
                else int((made_lb & ~corr_s & spec_fin & ~sel_cap).sum())
            ),
        },
    }
    return BatchResult(address, made, speculative, correct, source, _SOURCES, state)


def commit_hybrid(predictor, batch: EventBatch, result: BatchResult) -> None:
    from ..predictors.hybrid import HybridEntry

    cfg = predictor.config
    state = result.state
    cfi_states = state["cfi_states"]
    entries = []
    rows = zip(
        state["last_addr"].tolist(),
        state["offsets"].tolist(),
        state["history"].tolist(),
        state["cap_conf"].tolist(),
        state["stride"].tolist(),
        state["last_delta"].tolist(),
        state["multi"].tolist(),
        state["stride_conf"].tolist(),
        state["run_length"].tolist(),
        state["interval"].tolist(),
        state["selector"].tolist(),
    )
    for i, (addr, offset, history, cap_conf, stride, last_delta, multi,
            stride_conf, run, interval, selector) in enumerate(rows):
        entry = HybridEntry(cfg, offset)
        cap = entry.cap
        cap.last_addr = addr
        cap.history = history
        cap.spec_history = history
        cap.confidence.value = cap_conf
        st = entry.stride
        st.last_addr = addr
        st.stride = stride
        st.last_delta = last_delta if (multi and cfg.stride.two_delta) else None
        st.confidence.value = stride_conf
        st.run_length = run
        st.interval = interval
        st.spec_last_addr = addr
        entry.selector.value = selector
        pair = cfi_states.get(i)
        if pair is not None:
            cap_state, stride_state = pair
            if cfg.cap.cfi_mode == CFI_LAST:
                cap.cfi._bad_pattern = cap_state
            elif cfg.cap.cfi_mode != CFI_OFF:
                cap.cfi._path_bad = cap_state or 0
            if cfg.stride.cfi_mode == CFI_LAST:
                st.cfi._bad_pattern = stride_state
            elif cfg.stride.cfi_mode != CFI_OFF:
                st.cfi._path_bad = stride_state or 0
        entries.append(entry)
    lb_commit(predictor.load_buffer, state["lb"], entries, batch.n_loads)
    commit_link_table(predictor.cap.link_table, state["solved_lt"])
    batch.commit_control_flow(predictor)

    stats = predictor.selector_stats
    sel = state["selstats"]
    for name, count in sel["states"].items():
        stats.states.record(name, count)
    stats.speculative += sel["speculative"]
    stats.dual_speculative += sel["dual_speculative"]
    stats.selection.hits += sel["selection_hits"]
    stats.selection.total += sel["selection_total"]

    counts = state["probe"]
    if predictor.probe is not None:
        probe = predictor.probe
        probe.lb_misses += counts["lb_misses"]
        probe.selector_cap += counts["selector_cap"]
        probe.selector_stride += counts["selector_stride"]
    cap_probe = predictor.cap.probe
    if cap_probe is not None:
        cap_probe.confidence_vetoes += counts["cap_confidence_vetoes"]
        cap_probe.cfi_vetoes += counts["cap_cfi_vetoes"]
        cap_probe.cfi_bad_patterns += counts["cap_cfi_bad_patterns"]
    stride_probe = predictor.stride_logic.probe
    if stride_probe is not None:
        stride_probe.confidence_vetoes += counts["stride_confidence_vetoes"]
        stride_probe.cfi_vetoes += counts["stride_cfi_vetoes"]
        stride_probe.interval_stops += counts["interval_stops"]
        stride_probe.cfi_bad_patterns += counts["stride_cfi_bad_patterns"]
