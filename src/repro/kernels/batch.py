"""Shared per-batch precomputation for the predictor kernels.

An :class:`EventBatch` wraps one trace's :class:`~repro.trace.trace.
PredictorStream` as numpy arrays plus the derived views every kernel
needs: the load sub-stream, per-static-load grouping (stable sort by load
key so each static load's dynamic history is a contiguous segment), the
global history register value visible to each load, and the call-path hash
stream for path-indexed predictors.

Everything is computed lazily and memoised — a last-address kernel never
pays for GHR reconstruction, and the call-path hash is only built for
``call_path``-indexed gshare configs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..predictors.base import AddressPredictor
from . import segops

__all__ = ["EventBatch"]

GHR_BITS = AddressPredictor.GHR_BITS
PATH_DEPTH = AddressPredictor.PATH_DEPTH
_GHR_MASK = np.int64((1 << GHR_BITS) - 1)
_PATH_HASH_BITS = 30


class EventBatch:
    """Columnar event batch with memoised derived views."""

    def __init__(self, arrays: Tuple[np.ndarray, ...]) -> None:
        self.tag, self.ip, self.a, self.b = arrays
        self._load_idx: Optional[np.ndarray] = None
        self._load_cols: Optional[Tuple[np.ndarray, ...]] = None
        self._groups: Optional[Tuple[np.ndarray, ...]] = None
        self._lb_groups: dict = {}
        self._ghr: Optional[np.ndarray] = None
        self._final_ghr: Optional[int] = None
        self._path_hash: Optional[np.ndarray] = None
        self._final_path: Optional[list] = None

    @classmethod
    def from_stream(cls, stream) -> "EventBatch":
        return cls(stream.arrays())

    # -- loads ---------------------------------------------------------------

    @property
    def load_idx(self) -> np.ndarray:
        """Event positions of the dynamic loads."""
        if self._load_idx is None:
            self._load_idx = np.flatnonzero(self.tag == 1)
        return self._load_idx

    @property
    def n_loads(self) -> int:
        return len(self.load_idx)

    def load_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ip, actual, offset)`` restricted to the dynamic loads."""
        if self._load_cols is None:
            idx = self.load_idx
            self._load_cols = (self.ip[idx], self.a[idx], self.b[idx])
        return self._load_cols

    def load_groups(self) -> Tuple[np.ndarray, ...]:
        """Stable grouping of loads by load-buffer key (``ip >> 2``).

        Returns ``(key, order, starts, occ, first_pos)``:

        * ``key``   per-load LB key, in original load order;
        * ``order`` permutation putting loads into (key, time) order;
        * ``starts`` segment-head marker in the sorted layout;
        * ``occ``   per sorted position, the load's occurrence index within
          its key (0 for the first dynamic instance of a static load);
        * ``first_pos`` original load index of each key's first occurrence,
          one entry per segment head (i.e. per distinct key, in sorted-key
          order).
        """
        if self._groups is None:
            ips, _, _ = self.load_columns()
            key = ips >> 2
            order, starts = segops.group_sort(key)
            n = len(key)
            occ = np.arange(n, dtype=np.int64) - segops.seg_last_index_where(
                starts, starts
            )
            first_pos = order[starts]
            self._groups = (key, order, starts, occ, first_pos)
        return self._groups

    def lb_groups(self, table) -> dict:
        """Generation-aware grouping against a load buffer's geometry.

        Memoised per ``(index_bits, ways)`` — predictors sharing a table
        shape (e.g. a fig5 grid) reuse the same solve.  See
        :func:`repro.kernels.lb.lb_solve`.
        """
        from .lb import lb_solve

        shape = (table.index_bits, table.ways)
        solved = self._lb_groups.get(shape)
        if solved is None:
            ips, _, _ = self.load_columns()
            solved = lb_solve(table, ips >> 2)
            self._lb_groups[shape] = solved
        return solved

    # -- control-flow history -------------------------------------------------

    def _build_ghr(self) -> None:
        branch_pos = np.flatnonzero(self.tag == 0)
        taken = (self.a[branch_pos] != 0).astype(np.int64)
        nb = len(taken)
        # The scalar model shifts left and ORs the new outcome into bit 0,
        # so g_after[j] = sum_{s < GHR_BITS} taken[j - s] << s (newest
        # branch in bit 0).
        padded = np.zeros(nb + GHR_BITS - 1, dtype=np.int64)
        if nb:
            padded[GHR_BITS - 1:] = taken
        g_after = np.zeros(nb, dtype=np.int64)
        for s in range(GHR_BITS):
            g_after += padded[GHR_BITS - 1 - s: GHR_BITS - 1 - s + nb] << s
        g_after &= _GHR_MASK
        # Per load: GHR after the most recent earlier branch.
        before = np.searchsorted(branch_pos, self.load_idx)
        ghr = np.zeros(self.n_loads, dtype=np.int64)
        has_prior = before > 0
        ghr[has_prior] = g_after[before[has_prior] - 1]
        self._ghr = ghr
        self._final_ghr = int(g_after[-1]) if nb else 0

    @property
    def ghr_at_load(self) -> np.ndarray:
        """GHR value each load's ``predict`` call observes."""
        if self._ghr is None:
            self._build_ghr()
        return self._ghr  # type: ignore[return-value]

    @property
    def final_ghr(self) -> int:
        """GHR value after the whole batch (committed to the predictor)."""
        if self._final_ghr is None:
            self._build_ghr()
        return self._final_ghr  # type: ignore[return-value]

    def _build_path(self) -> None:
        call_pos = np.flatnonzero(self.tag == 2)
        call_ip = self.ip[call_pos]
        nc = len(call_ip)
        # Path hash after call j over the last PATH_DEPTH call ips:
        # value = ((value << 3) ^ (ip >> 2)) & mask, oldest first.
        mask = np.int64((1 << _PATH_HASH_BITS) - 1)
        x = call_ip >> 2
        h = np.zeros(nc, dtype=np.int64)
        for back in range(PATH_DEPTH - 1, -1, -1):
            contrib = np.zeros(nc, dtype=np.int64)
            if nc > back:
                contrib[back:] = x[: nc - back] if back else x
            h = ((h << 3) ^ contrib) & mask
        self._path_hash = h
        tail = call_ip[-PATH_DEPTH:] if nc else call_ip
        self._final_path = [int(v) for v in tail]

    def path_hash_at_load(self) -> np.ndarray:
        """Call-path hash each load observes (0 before the first call)."""
        if self._path_hash is None:
            self._build_path()
        call_pos = np.flatnonzero(self.tag == 2)
        before = np.searchsorted(call_pos, self.load_idx)
        out = np.zeros(self.n_loads, dtype=np.int64)
        has_prior = before > 0
        assert self._path_hash is not None
        out[has_prior] = self._path_hash[before[has_prior] - 1]
        return out

    @property
    def final_path(self) -> list:
        """Call path (last ``PATH_DEPTH`` call ips) after the batch."""
        if self._final_path is None:
            self._build_path()
        return list(self._final_path)  # type: ignore[arg-type]

    def commit_control_flow(self, predictor) -> None:
        """Write the end-of-batch GHR and call path into ``predictor``."""
        predictor.ghr = self.final_ghr
        predictor.call_path = self.final_path
