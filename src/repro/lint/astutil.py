"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "attr_chain",
    "call_name",
    "iter_method_defs",
    "self_attr",
    "walk_statements",
]


def attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Dotted-name chain of an attribute expression, root first.

    ``predictor.config.entries`` -> ``("predictor", "config", "entries")``;
    ``None`` when the expression is not a pure name/attribute chain
    (e.g. ``foo().bar``).
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def self_attr(node: ast.AST) -> Optional[str]:
    """``"X"`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``Job(...)`` -> ``"Job"``, ``m.Job(...)`` -> ``"Job"``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def iter_method_defs(
    class_def: ast.ClassDef,
) -> Iterator[ast.FunctionDef]:
    """Direct (non-nested) function definitions of a class body."""
    for statement in class_def.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement  # type: ignore[misc]


def walk_statements(node: ast.AST) -> Iterator[ast.stmt]:
    """Every statement node under ``node`` (inclusive when applicable)."""
    for child in ast.walk(node):
        if isinstance(child, ast.stmt):
            yield child
