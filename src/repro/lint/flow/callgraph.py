"""Best-effort call graph over a :class:`~.project.Project`.

Resolution covers the statically pin-downable shapes the repo actually
uses: direct calls to module-level functions, ``from x import f`` names,
``module_alias.symbol(...)``, ``self.method(...)`` inside a class, and
``ClassName(...)`` constructors.  Everything else — registry lookups,
callbacks, methods on objects of unknown type — becomes an *unresolved*
edge.  Unresolved edges are first-class data: rules inspect them to
decide whether an interprocedural answer is trustworthy or whether to
degrade to the intraprocedural result.

On top of the edges the graph computes one transitive summary the
error-hygiene rule needs: the set of exception names each function may
raise (directly, or via any resolved callee), solved by fixpoint.  The
summary respects in-function handling: a raise or call wrapped in a
``try`` whose handlers catch the exception (by name, or by a base class
found in the project's own class hierarchy) does not propagate it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .project import FunctionInfo, Project

__all__ = ["CallGraph", "CallSite"]


@dataclass
class CallSite:
    """One call expression inside a function."""

    call: ast.Call
    caller: FunctionInfo
    callee: Optional[FunctionInfo]  # None = unresolved

    @property
    def line(self) -> int:
        return getattr(self.call, "lineno", 0)

    @property
    def label(self) -> str:
        func = self.call.func
        parts: List[str] = []
        node: ast.AST = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return "<dynamic>"


class CallGraph:
    """Call sites + edges + raises-summaries for a project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.sites: Dict[Tuple[str, str], List[CallSite]] = {}
        self._raises: Dict[Tuple[str, str], Set[str]] = {}
        self._bases = self._class_bases()
        for info in project.iter_functions():
            self.sites[self._key(info)] = self._collect_sites(info)
        self._solve_raises()

    def _key(self, info: FunctionInfo) -> Tuple[str, str]:
        return (self.project.module_of(info.module), info.qualname)

    # -- construction ----------------------------------------------------

    def _collect_sites(self, info: FunctionInfo) -> List[CallSite]:
        sites: List[CallSite] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                sites.append(
                    CallSite(node, info, self.resolve_call(info, node))
                )
        return sites

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        func = call.func
        module = caller.module
        if isinstance(func, ast.Name):
            return self.project.resolve_name(module, func.id)
        if isinstance(func, ast.Attribute):
            chain: List[str] = []
            node: ast.AST = func
            while isinstance(node, ast.Attribute):
                chain.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            chain.append(node.id)
            chain.reverse()
            if chain[0] == "self" and caller.owner and len(chain) == 2:
                return self.project.method_in_class(
                    module, caller.owner, chain[1]
                )
            return self.project.resolve_attribute(module, tuple(chain))
        return None

    # -- queries ---------------------------------------------------------

    def callees(self, info: FunctionInfo) -> List[CallSite]:
        return self.sites.get(self._key(info), [])

    def resolved_callees(self, info: FunctionInfo) -> List[FunctionInfo]:
        return [
            site.callee
            for site in self.callees(info)
            if site.callee is not None
        ]

    def unresolved_sites(self, info: FunctionInfo) -> List[CallSite]:
        return [
            site for site in self.callees(info) if site.callee is None
        ]

    def iter_edges(self) -> Iterator[CallSite]:
        for key in sorted(self.sites):
            yield from self.sites[key]

    # -- exception hierarchy (from the project's own class defs) ---------

    def _class_bases(self) -> Dict[str, Set[str]]:
        """Transitive base-class names for every project class."""
        direct: Dict[str, Set[str]] = {}
        for (_, name), cls in self.project.classes.items():
            bases = direct.setdefault(name, set())
            for base in cls.node.bases:
                node: ast.AST = base
                while isinstance(node, ast.Attribute):
                    node = ast.Name(id=node.attr, ctx=ast.Load())
                    break
                if isinstance(node, ast.Name):
                    bases.add(node.id)
        closed: Dict[str, Set[str]] = {}
        for name in direct:
            seen: Set[str] = set()
            frontier = list(direct[name])
            while frontier:
                base = frontier.pop()
                if base in seen:
                    continue
                seen.add(base)
                frontier.extend(direct.get(base, ()))
            closed[name] = seen
        return closed

    def _is_caught(self, raised: str, caught: Set[str]) -> bool:
        if raised in caught:
            return True
        if "BaseException" in caught or "Exception" in caught:
            return True
        return bool(self._bases.get(raised, set()) & caught)

    @staticmethod
    def _caught_names_at(node: ast.AST, func: ast.AST) -> Set[str]:
        """Exception names caught by ``try`` blocks whose *body*
        contains ``node``, walking out to the function boundary.
        Requires the ``_lint_parent`` annotations ModuleInfo installs."""
        caught: Set[str] = set()
        current = getattr(node, "_lint_parent", None)
        while current is not None and current is not func:
            if isinstance(current, ast.Try) and any(
                any(child is node for child in ast.walk(statement))
                for statement in current.body
            ):
                for handler in current.handlers:
                    spec = handler.type
                    if spec is None:
                        caught.add("BaseException")
                        continue
                    elements = (
                        spec.elts
                        if isinstance(spec, ast.Tuple)
                        else [spec]
                    )
                    for element in elements:
                        tail: ast.AST = element
                        while isinstance(tail, ast.Attribute):
                            tail = ast.Name(id=tail.attr, ctx=ast.Load())
                            break
                        if isinstance(tail, ast.Name):
                            caught.add(tail.id)
            current = getattr(current, "_lint_parent", None)
        return caught

    # -- raises summaries ------------------------------------------------

    def _direct_raises(self, info: FunctionInfo) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            while isinstance(exc, ast.Attribute):
                exc = ast.Name(id=exc.attr, ctx=ast.Load())
                break
            if not isinstance(exc, ast.Name):
                continue
            caught = self._caught_names_at(node, info.node)
            if self._is_caught(exc.id, caught):
                continue
            names.add(exc.id)
        return names

    def _solve_raises(self) -> None:
        for info in self.project.iter_functions():
            self._raises[self._key(info)] = self._direct_raises(info)
        changed = True
        while changed:
            changed = False
            for info in self.project.iter_functions():
                key = self._key(info)
                current = self._raises[key]
                for site in self.callees(info):
                    if site.callee is None:
                        continue
                    extra = self._raises.get(
                        self._key(site.callee), set()
                    )
                    if not extra:
                        continue
                    caught = self._caught_names_at(
                        site.call, info.node
                    )
                    if caught:
                        extra = {
                            name
                            for name in extra
                            if not self._is_caught(name, caught)
                        }
                    if not extra <= current:
                        current = current | extra
                if current != self._raises[key]:
                    self._raises[key] = current
                    changed = True

    def raises(self, info: FunctionInfo) -> Set[str]:
        """Exception names ``info`` may raise, transitively through
        resolved calls.  Unresolved calls contribute nothing — callers
        must treat the summary as a lower bound."""
        return set(self._raises.get(self._key(info), set()))
