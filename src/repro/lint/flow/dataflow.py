"""Reaching definitions and attribute-access events over a CFG.

Two consumers, two views:

* The await-atomicity rule (R007) needs *attribute events*: every read
  and write of an attribute chain (``self._sessions_active``,
  ``self.stats.timeouts``) with its statement, so it can ask the CFG
  whether a read→write pair straddles a suspension point.
* The bit-width rules (R008/R009) need *reaching definitions* for local
  names: which assignments may produce the value a given use consumes,
  so taint and widths flow through renames instead of relying on what a
  variable happens to be called — and so findings can print the actual
  def→use chain instead of a bare line number.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .cfg import CFG, scan_roots

__all__ = [
    "AttributeEvent",
    "ReachingDefs",
    "attribute_events",
    "location_of",
    "read_locations",
    "write_locations",
]

Location = Tuple[str, ...]


def location_of(node: ast.AST) -> Optional[Location]:
    """Attribute chain of a pure name/attribute expression.

    ``self.stats.timeouts`` → ``("self", "stats", "timeouts")``;
    ``None`` for anything passing through a call or subscript.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


@dataclass(frozen=True)
class AttributeEvent:
    """One read or write of an attribute chain in one statement."""

    statement: ast.stmt
    location: Location
    #: "read", "write", or "readwrite" (augmented assignment — the read
    #: and the write happen atomically within one statement).
    kind: str
    #: The AST node of the access itself (for line anchoring).
    node: ast.AST

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno",
                       getattr(self.statement, "lineno", 0))


def _store_targets(statement: ast.stmt) -> List[ast.AST]:
    if isinstance(statement, ast.Assign):
        return list(statement.targets)
    if isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
        return [statement.target]
    if isinstance(statement, ast.Delete):
        return list(statement.targets)
    return []


def attribute_events(
    cfg: CFG, roots: Optional[Set[str]] = None
) -> List[AttributeEvent]:
    """Every attribute read/write in the CFG's statements.

    ``roots`` restricts events to chains rooted at the given names
    (``{"self"}`` for shared-object state).  Reads that are merely the
    prefix of a longer chain (``self.stats`` inside
    ``self.stats.timeouts``) are not reported separately; method-call
    receivers (``self._queue`` in ``self._queue.put_nowait(...)``) are
    reported as reads of the receiver chain.
    """
    events: List[AttributeEvent] = []
    for statement in cfg.iter_statements():
        targets = _store_targets(statement)
        target_ids = set()
        for target in targets:
            for node in ast.walk(target):
                target_ids.add(id(node))
        kind = (
            "readwrite"
            if isinstance(statement, ast.AugAssign)
            else "write"
        )
        for target in targets:
            location = location_of(target)
            if location is None:
                # Subscript / starred target: charge the base chain.
                inner = target
                while isinstance(inner, (ast.Subscript, ast.Starred)):
                    inner = inner.value
                location = location_of(inner)
            if location is None or len(location) < 2:
                continue
            if roots is not None and location[0] not in roots:
                continue
            events.append(
                AttributeEvent(statement, location, kind, target)
            )
        # Reads: maximal attribute chains in Load context, skipping
        # anything that is part of a store target.  Compound statements
        # scan only their header expressions (bodies are own nodes).
        for node in (
            child
            for root in scan_roots(statement)
            for child in ast.walk(root)
        ):
            if not isinstance(node, ast.Attribute):
                continue
            if id(node) in target_ids:
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            parent = getattr(node, "_lint_parent", None)
            if isinstance(parent, ast.Attribute):
                continue  # only the outermost chain node reports
            location = location_of(node)
            if location is None or len(location) < 2:
                continue
            if roots is not None and location[0] not in roots:
                continue
            events.append(
                AttributeEvent(statement, location, "read", node)
            )
    return events


def read_locations(events: List[AttributeEvent]) -> Dict[Location, List[AttributeEvent]]:
    table: Dict[Location, List[AttributeEvent]] = {}
    for event in events:
        if event.kind == "read":
            table.setdefault(event.location, []).append(event)
    return table


def write_locations(events: List[AttributeEvent]) -> Dict[Location, List[AttributeEvent]]:
    table: Dict[Location, List[AttributeEvent]] = {}
    for event in events:
        if event.kind in ("write", "readwrite"):
            table.setdefault(event.location, []).append(event)
    return table


@dataclass(frozen=True)
class _Definition:
    """One definition site of a local name."""

    name: str
    statement: ast.stmt
    #: RHS expression, when the definition has one (None for for-loop
    #: targets, with-as bindings, parameters).
    value: Optional[ast.AST]

    @property
    def line(self) -> int:
        return getattr(self.statement, "lineno", 0)


class ReachingDefs:
    """Classic reaching-definitions over a statement-level CFG.

    Definitions are assignments to plain local names (``x = ...``,
    ``x += ...``, ``for x in ...``, ``with ... as x``); attribute and
    subscript stores do not kill or generate (they mutate the object a
    name refers to, not the binding).  Function parameters act as
    definitions reaching from the entry.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.params: List[str] = self._param_names(cfg.func)
        self._defs_at: List[List[_Definition]] = []
        self._in_sets: List[Set[int]] = []
        self._all_defs: List[_Definition] = [
            _Definition(name, getattr(cfg, "func"), None)  # type: ignore[arg-type]
            for name in self.params
        ]
        self._param_def_ids = set(range(len(self._all_defs)))
        for node in cfg.nodes:
            local = self._definitions(node.statement)
            self._defs_at.append(local)
            self._all_defs.extend(local)
        self._solve()

    @staticmethod
    def _param_names(func: ast.AST) -> List[str]:
        args = getattr(func, "args", None)
        if args is None:
            return []
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    @staticmethod
    def _definitions(statement: ast.stmt) -> List[_Definition]:
        found: List[_Definition] = []

        def bind(target: ast.AST, value: Optional[ast.AST]) -> None:
            if isinstance(target, ast.Name):
                found.append(_Definition(target.id, statement, value))
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    bind(element, None)
            elif isinstance(target, ast.Starred):
                bind(target.value, None)

        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                bind(target, statement.value)
        elif isinstance(statement, ast.AnnAssign):
            bind(statement.target, statement.value)
        elif isinstance(statement, ast.AugAssign):
            bind(statement.target, statement.value)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            bind(statement.target, None)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars, None)
        return found

    def _solve(self) -> None:
        nodes = self.cfg.nodes
        count = len(nodes)
        def_ids_at: List[Set[int]] = []
        offset = len(self._param_def_ids)
        for local in self._defs_at:
            ids = set(range(offset, offset + len(local)))
            offset += len(local)
            def_ids_at.append(ids)
        kills: List[Set[str]] = [
            {d.name for d in local} for local in self._defs_at
        ]
        self._in_sets = [set() for _ in range(count)]
        out_sets: List[Set[int]] = [set() for _ in range(count)]
        entry_defs = set(self._param_def_ids)
        changed = True
        while changed:
            changed = False
            for index in range(count):
                node = nodes[index]
                incoming: Set[int] = set()
                if node.index == self.cfg.entry or not node.pred:
                    incoming |= entry_defs
                for pred in node.pred:
                    incoming |= out_sets[pred]
                if incoming != self._in_sets[index]:
                    self._in_sets[index] = incoming
                killed = kills[index]
                outgoing = {
                    def_id
                    for def_id in incoming
                    if self._all_defs[def_id].name not in killed
                } | def_ids_at[index]
                if outgoing != out_sets[index]:
                    out_sets[index] = outgoing
                    changed = True

    # -- queries ---------------------------------------------------------

    def defs_reaching(
        self, statement: ast.stmt, name: str
    ) -> List[_Definition]:
        """Definitions of ``name`` that may reach ``statement``."""
        node = self.cfg.node_for(statement)
        if node is None:
            return []
        return [
            self._all_defs[def_id]
            for def_id in sorted(self._in_sets[node.index])
            if self._all_defs[def_id].name == name
        ]

    def is_parameter_def(self, definition: _Definition) -> bool:
        return definition.value is None and definition.statement is self.cfg.func

    def chain(
        self, statement: ast.stmt, name: str, depth: int = 4
    ) -> List[_Definition]:
        """A def→use chain for ``name`` at ``statement``: the reaching
        definition(s) of the name, then (when a definition's RHS is
        itself a plain name) that name's definitions, up to ``depth``
        hops.  Deterministic: first definition in line order at each
        hop."""
        steps: List[_Definition] = []
        seen: Set[Tuple[str, int]] = set()
        current_stmt: ast.stmt = statement
        current_name = name
        for _ in range(depth):
            defs = sorted(
                self.defs_reaching(current_stmt, current_name),
                key=lambda d: d.line,
            )
            if not defs:
                break
            definition = defs[0]
            key = (definition.name, definition.line)
            if key in seen:
                break
            seen.add(key)
            steps.append(definition)
            if definition.value is None or not isinstance(
                definition.value, ast.Name
            ):
                break
            if definition.statement is self.cfg.func:
                break
            current_stmt = definition.statement
            current_name = definition.value.id
        return steps


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/method definition in a module tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
