"""Per-function control-flow graphs at statement granularity.

Each *simple* statement (assignment, expression, return, raise ...) is
one node; compound statements contribute their headers and recurse into
their bodies.  The graph supports the one query the await-atomicity and
range rules need beyond plain reachability: *is there a path from
statement A to statement B that crosses a coroutine suspension point*
(an ``await`` expression, or a ``yield``/``yield from``)?

Edges model: sequencing, ``if``/``else``, ``while``/``for`` loops with
back edges and ``break``/``continue``, ``try``/``except``/``finally``
(conservatively: every statement of a ``try`` body may jump to every
handler), ``with``/``async with`` bodies, and ``return``/``raise``
terminating the path.  Exceptional edges out of *arbitrary* expressions
are not modelled — for race detection that is the conservative-enough
direction, since an exception cuts a path short rather than adding an
interleaving.

``Node.suspends`` marks nodes whose statement *contains* a suspension
point; path queries treat the suspension as happening strictly inside
the node, so A→B "crossing" a suspension means some interior node
suspends, or A itself suspends after its reads, or B suspends before
its effect — callers pick the semantics via flags.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["CFG", "Node", "build_cfg", "scan_roots", "suspension_points"]


def scan_roots(statement: ast.stmt) -> List[ast.AST]:
    """The AST nodes a per-node analysis should scan for ``statement``.

    Simple statements scan themselves.  Compound statements scan only
    their *header* expressions — their bodies are separate CFG nodes and
    scanning them through the header would double-count every event.
    """
    if isinstance(statement, (ast.If, ast.While)):
        return [statement.test]
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return [statement.target, statement.iter]
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        roots: List[ast.AST] = []
        for item in statement.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
        return roots
    if isinstance(statement, ast.Try):
        return []
    return [statement]


def suspension_points(statement: ast.stmt) -> List[ast.AST]:
    """Await/yield expressions contained in ``statement`` itself (not in
    nested function definitions)."""
    found: List[ast.AST] = []
    stack: List[ast.AST] = [statement]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            found.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue  # a nested scope suspends itself, not us
            stack.append(child)
    found.sort(key=lambda n: (getattr(n, "lineno", 0),
                              getattr(n, "col_offset", 0)))
    return found


@dataclass
class Node:
    """One CFG node: a simple statement or a compound-statement header."""

    index: int
    statement: ast.stmt
    succ: Set[int] = field(default_factory=set)
    pred: Set[int] = field(default_factory=set)
    #: This node's statement contains an await/yield.
    suspends: bool = False
    #: Nodes lexically inside an except handler / finally block carry
    #: the ``try`` header's node index (compensation detection).
    handler_of: Optional[int] = None

    @property
    def line(self) -> int:
        return getattr(self.statement, "lineno", 0)


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: List[Node] = []
        self.entry: Optional[int] = None
        self._index_of: Dict[int, int] = {}  # id(statement) -> node

    # -- construction helpers (used by build_cfg) ------------------------

    def add(self, statement: ast.stmt) -> int:
        node = Node(index=len(self.nodes), statement=statement)
        node.suspends = bool(suspension_points(statement))
        self.nodes.append(node)
        self._index_of[id(statement)] = node.index
        return node.index

    def link(self, src: Optional[int], dst: Optional[int]) -> None:
        if src is None or dst is None:
            return
        self.nodes[src].succ.add(dst)
        self.nodes[dst].pred.add(src)

    # -- queries ---------------------------------------------------------

    def node_for(self, statement: ast.stmt) -> Optional[Node]:
        index = self._index_of.get(id(statement))
        return self.nodes[index] if index is not None else None

    def iter_statements(self) -> Iterator[ast.stmt]:
        for node in self.nodes:
            yield node.statement

    def suspending_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.suspends]

    def path_crosses_suspension(
        self,
        source: ast.stmt,
        target: ast.stmt,
        include_endpoints: bool = False,
    ) -> Optional[List[Node]]:
        """A path source→target crossing a suspension point, or ``None``.

        The default requires a *strictly interior* suspending node —
        the semantics of "a value read at ``source`` is stale by the
        time ``target`` runs".  The returned path (source node, ...,
        suspending node, ..., target node) feeds the finding's trace.
        """
        src = self.node_for(source)
        dst = self.node_for(target)
        if src is None or dst is None or src.index == dst.index:
            return None
        # BFS over (node, crossed) product states.
        start = (src.index, bool(include_endpoints and src.suspends))
        seen: Set[Tuple[int, bool]] = {start}
        parents: Dict[Tuple[int, bool], Tuple[int, bool]] = {}
        frontier: List[Tuple[int, bool]] = [start]
        goal: Optional[Tuple[int, bool]] = None
        while frontier and goal is None:
            next_frontier: List[Tuple[int, bool]] = []
            for state in frontier:
                index, crossed = state
                for succ in sorted(self.nodes[index].succ):
                    node = self.nodes[succ]
                    now_crossed = crossed or (
                        node.suspends
                        and (succ != dst.index or include_endpoints)
                    )
                    nxt = (succ, now_crossed)
                    if nxt in seen:
                        continue
                    seen.add(nxt)
                    parents[nxt] = state
                    if succ == dst.index and now_crossed:
                        goal = nxt
                        break
                    next_frontier.append(nxt)
                if goal is not None:
                    break
            frontier = next_frontier
        if goal is None:
            return None
        path: List[Node] = []
        state: Optional[Tuple[int, bool]] = goal
        while state is not None:
            path.append(self.nodes[state[0]])
            state = parents.get(state)
        path.reverse()
        return path

    def in_handler_of_suspending_try(self, statement: ast.stmt) -> bool:
        """True when ``statement`` sits in an except/finally block whose
        ``try`` body contains a suspension point — the sanctioned
        *compensation* position (rolling back a pre-await reservation
        after the awaited action failed)."""
        node = self.node_for(statement)
        if node is None or node.handler_of is None:
            return False
        try_header = self.nodes[node.handler_of].statement
        if not isinstance(try_header, ast.Try):
            return False
        return any(
            suspension_points(body_stmt) for body_stmt in try_header.body
        )


def _under_try_body(header: ast.Try, statement: ast.AST) -> bool:
    """Is ``statement`` (transitively) inside ``header.body``?"""
    stack: List[ast.AST] = list(header.body)
    while stack:
        node = stack.pop()
        if node is statement:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


class _Builder:
    """Recursive-descent CFG construction.

    ``_emit(statements, frontier)`` wires a statement list after the
    given frontier nodes and returns the new frontier (nodes whose
    successor is whatever comes next).  Loop contexts track break /
    continue targets.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._loop_stack: List[Tuple[int, List[int]]] = []
        self._exits: List[int] = []  # return/raise nodes

    def build(self, body: List[ast.stmt]) -> None:
        if not body:
            return
        frontier = self._emit(body, [])
        del frontier  # fallthrough off the end: no explicit exit node

    # -- plumbing --------------------------------------------------------

    def _emit(
        self, statements: List[ast.stmt], frontier: List[int]
    ) -> List[int]:
        for statement in statements:
            frontier = self._emit_one(statement, frontier)
        return frontier

    def _seed(self, statement: ast.stmt, frontier: List[int]) -> int:
        index = self.cfg.add(statement)
        if self.cfg.entry is None:
            self.cfg.entry = index
        for prev in frontier:
            self.cfg.link(prev, index)
        return index

    def _emit_one(
        self, statement: ast.stmt, frontier: List[int]
    ) -> List[int]:
        cfg = self.cfg
        if isinstance(statement, ast.If):
            header = self._seed(statement, frontier)
            then_exit = self._emit(statement.body, [header])
            if statement.orelse:
                else_exit = self._emit(statement.orelse, [header])
                return then_exit + else_exit
            return then_exit + [header]
        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            header = self._seed(statement, frontier)
            breaks: List[int] = []
            self._loop_stack.append((header, breaks))
            body_exit = self._emit(statement.body, [header])
            self._loop_stack.pop()
            for tail in body_exit:
                cfg.link(tail, header)  # back edge
            after: List[int] = [header] + breaks
            if statement.orelse:
                after = self._emit(statement.orelse, [header]) + breaks
            return after
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            header = self._seed(statement, frontier)
            return self._emit(statement.body, [header])
        if isinstance(statement, ast.Try):
            header = self._seed(statement, frontier)
            body_exit = self._emit(statement.body, [header])
            # Conservative: any statement in the body may raise into any
            # handler, so every body node links to each handler's head.
            body_nodes = [
                node.index
                for node in cfg.nodes
                if _under_try_body(statement, node.statement)
            ]
            handler_exits: List[int] = []
            for handler in statement.handlers:
                first = len(cfg.nodes)
                exits = self._emit(
                    handler.body, body_nodes or [header]
                )
                for node in cfg.nodes[first:]:
                    if node.handler_of is None:
                        node.handler_of = header
                handler_exits.extend(exits)
            else_exit = body_exit
            if statement.orelse:
                else_exit = self._emit(statement.orelse, body_exit)
            merged = else_exit + handler_exits
            if statement.finalbody:
                first = len(cfg.nodes)
                merged = self._emit(statement.finalbody, merged)
                for node in cfg.nodes[first:]:
                    if node.handler_of is None:
                        node.handler_of = header
            return merged
        # Simple statement.
        index = self._seed(statement, frontier)
        if isinstance(statement, (ast.Return, ast.Raise)):
            self._exits.append(index)
            return []
        if isinstance(statement, ast.Break):
            if self._loop_stack:
                self._loop_stack[-1][1].append(index)
            return []
        if isinstance(statement, ast.Continue):
            if self._loop_stack:
                self.cfg.link(index, self._loop_stack[-1][0])
            return []
        return [index]


def build_cfg(func: ast.AST) -> CFG:
    """CFG of a ``FunctionDef`` / ``AsyncFunctionDef`` body."""
    cfg = CFG(func)
    body = getattr(func, "body", [])
    _Builder(cfg).build(list(body))
    return cfg
