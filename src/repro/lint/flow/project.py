"""Module resolution over a linted file set.

A :class:`Project` holds every :class:`~repro.lint.core.ModuleInfo` of
one lint run, keyed by dotted module name, plus a symbol table of
top-level functions, classes and methods.  It answers the questions the
call graph and the flow rules need:

* ``module_name("src/repro/serve/server.py")`` → ``"repro.serve.server"``
* ``resolve_import(module, "sniff_format")`` → the function's
  :class:`FunctionInfo` in ``repro.ingest.formats`` (or ``None``)
* ``functions`` / ``classes`` — every definition, with its AST node

Resolution is *best effort by construction*: anything dynamic (star
imports, attribute indirection through objects, registries) resolves to
``None`` and consumers fall back to intraprocedural reasoning.  A
project built from a single in-memory module (the ``lint_source`` path
used by fixtures) simply has an almost-empty symbol table — the same
degradation, exercised by tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import ModuleInfo

__all__ = ["FunctionInfo", "ClassInfo", "Project", "module_name_of"]


def module_name_of(relpath: str) -> Optional[str]:
    """Dotted module name for a repo-relative path, or ``None``.

    ``src/repro/serve/server.py`` → ``repro.serve.server``;
    ``src/repro/lint/__init__.py`` → ``repro.lint``.  Paths outside a
    recognizable package root (fixtures under ``tests/``, virtual
    paths) return the path-derived tail so same-module resolution still
    works, and ``None`` only for unparseable paths.
    """
    parts = relpath.replace("\\", "/").split("/")
    if not parts or not parts[-1].endswith(".py"):
        return None
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    stem = parts[-1][: -len(".py")]
    head = parts[:-1]
    pieces = head if stem == "__init__" else head + [stem]
    if not pieces:
        return None
    return ".".join(pieces)


@dataclass
class FunctionInfo:
    """One function or method definition inside the project."""

    module: ModuleInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str  # "shard_worker" or "PredictionServer._on_open"
    #: Enclosing class name for methods, "" for module-level functions.
    owner: str = ""

    @property
    def name(self) -> str:
        return getattr(self.node, "name", "")

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """One top-level class definition and its direct methods."""

    module: ModuleInfo
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


class Project:
    """Symbol table + import map over one lint run's modules."""

    def __init__(
        self,
        modules: List[ModuleInfo],
        root: Optional[Path] = None,
    ) -> None:
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        #: module name -> local alias -> (module name, symbol | "")
        self._imports: Dict[str, Dict[str, Tuple[str, str]]] = {}
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        for module in modules:
            self.add_module(module)

    # -- construction ----------------------------------------------------

    def add_module(self, module: ModuleInfo) -> None:
        name = module_name_of(module.relpath)
        if name is None:
            name = module.relpath
        self.modules[name] = module
        self._imports[name] = self._collect_imports(name, module)
        for statement in module.tree.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                info = FunctionInfo(
                    module=module,
                    node=statement,
                    qualname=statement.name,
                )
                self.functions[(name, statement.name)] = info
            elif isinstance(statement, ast.ClassDef):
                cls = ClassInfo(module=module, node=statement)
                for method in statement.body:
                    if isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        minfo = FunctionInfo(
                            module=module,
                            node=method,
                            qualname=f"{statement.name}.{method.name}",
                            owner=statement.name,
                        )
                        cls.methods[method.name] = minfo
                        self.functions[
                            (name, f"{statement.name}.{method.name}")
                        ] = minfo
                self.classes[(name, statement.name)] = cls

    def _collect_imports(
        self, name: str, module: ModuleInfo
    ) -> Dict[str, Tuple[str, str]]:
        """Map each locally bound alias to (source module, symbol)."""
        table: Dict[str, Tuple[str, str]] = {}
        package = name.rsplit(".", 1)[0] if "." in name else name
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    table[bound] = (alias.name, "")
            elif isinstance(node, ast.ImportFrom):
                source = self._resolve_relative(
                    package, node.module, node.level
                )
                if source is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    table[bound] = (source, alias.name)
        return table

    @staticmethod
    def _resolve_relative(
        package: str, module: Optional[str], level: int
    ) -> Optional[str]:
        """Absolute module name of a (possibly relative) import source."""
        if level == 0:
            return module
        parts = package.split(".")
        # level 1 = current package, each extra level strips one parent.
        if level - 1 >= len(parts):
            return None
        base = parts[: len(parts) - (level - 1)]
        if module:
            base = base + module.split(".")
        return ".".join(base) if base else None

    # -- queries ---------------------------------------------------------

    def module_of(self, module: ModuleInfo) -> str:
        name = module_name_of(module.relpath)
        return name if name is not None else module.relpath

    def function(
        self, module_name: str, qualname: str
    ) -> Optional[FunctionInfo]:
        return self.functions.get((module_name, qualname))

    def resolve_name(
        self, module: ModuleInfo, name: str
    ) -> Optional[FunctionInfo]:
        """Resolve a bare name used in ``module`` to a project function.

        Checks module-level definitions first, then the import table
        (``from x import f``), then constructors (``ClassName`` →
        ``ClassName.__init__``).  Returns ``None`` for anything it
        cannot pin down statically.
        """
        home = self.module_of(module)
        info = self.functions.get((home, name))
        if info is not None:
            return info
        cls = self.classes.get((home, name))
        if cls is not None:
            return cls.methods.get("__init__")
        imported = self._imports.get(home, {}).get(name)
        if imported is not None:
            source, symbol = imported
            if symbol:
                info = self.functions.get((source, symbol))
                if info is not None:
                    return info
                ctor = self.classes.get((source, symbol))
                if ctor is not None:
                    return ctor.methods.get("__init__")
        return None

    def resolve_attribute(
        self, module: ModuleInfo, chain: Tuple[str, ...]
    ) -> Optional[FunctionInfo]:
        """Resolve ``alias.symbol(...)`` where ``alias`` is an imported
        module (``import repro.ingest.formats as F; F.read_path``)."""
        if len(chain) != 2:
            return None
        home = self.module_of(module)
        imported = self._imports.get(home, {}).get(chain[0])
        if imported is None:
            return None
        source, symbol = imported
        if symbol:  # alias names a symbol, not a module
            source = f"{source}.{symbol}"
        return self.functions.get((source, chain[1]))

    def method_in_class(
        self, module: ModuleInfo, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        cls = self.classes.get((self.module_of(module), class_name))
        if cls is None:
            return None
        return cls.methods.get(method)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for _, info in sorted(
            self.functions.items(), key=lambda item: item[0]
        ):
            yield info
