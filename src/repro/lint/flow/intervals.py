"""A bit-width lattice for int64/numpy integer expressions.

The question R009 asks is narrow: *can this expression's mathematical
value need more than 63 bits before a mask is applied?*  Signed int64
holds 63 value bits; anything wider wraps negative under numpy, and the
repo's one historical instance (``fold_xor_array`` before addresses
were canonicalised) turned that wrap into a non-terminating ``>>=``
loop, because arithmetic shift right of a negative int64 converges to
``-1``, never ``0``.

The abstract value is :class:`Width`: an upper bound on the number of
value bits (``None`` = unknown/unbounded) plus a proven-non-negative
flag.  Joins move strictly upward and all transfer functions are
monotone, but transfer functions *grow* bounds (``Add`` adds a bit,
``Mult`` sums them), so a loop-carried computation could crawl upward
one sweep at a time.  Joins therefore widen: any bound past
``_WIDEN_BITS`` collapses to unknown, making the lattice finite and
the per-function fixpoint in :class:`WidthEnv` terminating.
Loop-carried growth (``step <<= 1``) walks up the chain and lands on
unknown, which is exactly the degradation we want: the rule only fires
on *provable* overflow, never on "could not tell".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .cfg import CFG, build_cfg

__all__ = ["Width", "WidthEnv", "expression_width", "TOP"]

#: Callback for interprocedural width summaries: given a Call node,
#: return the callee's return width, or None to stay conservative.
CallWidth = Callable[[ast.Call, "Env"], Optional["Width"]]

Env = Dict[str, "Width"]

#: Widening threshold: no int64 question needs bounds past twice the
#: machine width (a product of two full-width operands is 126 bits), so
#: joins collapse anything wider to "unknown".  This is what stops a
#: loop-carried ``step <<= 1`` from crawling the fixpoint upward one
#: bit per sweep and settling on a finite-but-meaningless bound.
_WIDEN_BITS = 128


@dataclass(frozen=True)
class Width:
    """Upper bound on value bits, plus non-negativity."""

    bits: Optional[int]  # None = unknown / unbounded
    nonneg: bool = False

    @property
    def known(self) -> bool:
        return self.bits is not None

    def join(self, other: "Width") -> "Width":
        if self.bits is None or other.bits is None:
            bits: Optional[int] = None
        else:
            bits = max(self.bits, other.bits)
            if bits > _WIDEN_BITS:
                bits = None  # widen: see _WIDEN_BITS
        return Width(bits, self.nonneg and other.nonneg)

    def __str__(self) -> str:
        tag = "u" if self.nonneg else "s"
        return f"{tag}{self.bits if self.bits is not None else '?'}"


TOP = Width(None, False)
BOOL = Width(1, True)

#: Repo helpers whose return value is masked to their width argument.
_MASKING_CALLS = {"fold_xor", "fold_xor_array", "low_bits", "mask_val"}
#: Calls returning a non-negative value of unknown width.
_NONNEG_CALLS = {"len", "abs", "arange", "flatnonzero", "count_nonzero",
                 "searchsorted", "argmax", "argmin", "bit_length"}
#: Calls transparent to width: f(x) has the width of x.
_TRANSPARENT_CALLS = {"copy", "astype", "ascontiguousarray", "asarray",
                      "array", "int64", "ravel", "reshape", "sort"}


def _call_tail(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _const_int(node: ast.AST) -> Optional[int]:
    """Fold an integer constant expression (literals, ``1 << k``,
    ``(1 << k) - 1``, unary minus, ``np.int64(c)``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.Call) and _call_tail(node) == "int64" \
            and len(node.args) == 1:
        return _const_int(node.args[0])
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left)
        right = _const_int(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.LShift):
                return left << right if 0 <= right < 256 else None
            if isinstance(node.op, ast.RShift):
                return left >> right if 0 <= right < 256 else None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.BitOr):
                return left | right
            if isinstance(node.op, ast.BitAnd):
                return left & right
            if isinstance(node.op, ast.BitXor):
                return left ^ right
        except (OverflowError, ValueError):  # pragma: no cover
            return None
    return None


def _const_width(value: int) -> Width:
    if value >= 0:
        return Width(value.bit_length(), True)
    return Width(None, False)


def expression_width(
    expr: ast.AST,
    env: Env,
    call_width: Optional[CallWidth] = None,
) -> Width:
    """Abstract width of an integer expression under ``env``."""
    constant = _const_int(expr)
    if constant is not None:
        return _const_width(constant)
    if isinstance(expr, ast.Name):
        return env.get(expr.id, TOP)
    if isinstance(expr, ast.Subscript):
        # Array elements inhabit the array's range; boolean / fancy
        # indexing never widens values.
        return expression_width(expr.value, env, call_width)
    if isinstance(expr, ast.BinOp):
        return _binop_width(expr, env, call_width)
    if isinstance(expr, ast.UnaryOp):
        if isinstance(expr.op, ast.Not):
            return BOOL
        if isinstance(expr.op, ast.USub):
            inner = expression_width(expr.operand, env, call_width)
            return Width(inner.bits, False)
        return TOP  # ~x flips sign for nonneg x
    if isinstance(expr, (ast.Compare, ast.BoolOp)):
        return BOOL
    if isinstance(expr, ast.IfExp):
        return expression_width(expr.body, env, call_width).join(
            expression_width(expr.orelse, env, call_width)
        )
    if isinstance(expr, ast.Call):
        return _call_width(expr, env, call_width)
    return TOP


def _binop_width(
    expr: ast.BinOp, env: Env, call_width: Optional[CallWidth]
) -> Width:
    left = expression_width(expr.left, env, call_width)
    right = expression_width(expr.right, env, call_width)
    op = expr.op
    if isinstance(op, ast.BitAnd):
        # x & m fits in min(width) bits; a known-width side also proves
        # the result non-negative (masks here are non-negative).
        candidates = [w for w in (left, right) if w.known]
        if not candidates:
            return TOP
        bits = min(w.bits for w in candidates)  # type: ignore[type-var]
        return Width(bits, any(w.known and w.nonneg for w in (left, right)))
    if isinstance(op, (ast.BitOr, ast.BitXor)):
        if left.known and right.known:
            return Width(
                max(left.bits, right.bits),  # type: ignore[arg-type]
                left.nonneg and right.nonneg,
            )
        return TOP
    if isinstance(op, ast.Add):
        if left.known and right.known:
            return Width(
                max(left.bits, right.bits) + 1,  # type: ignore[arg-type]
                left.nonneg and right.nonneg,
            )
        return TOP
    if isinstance(op, ast.Sub):
        if left.known and right.known:
            return Width(
                max(left.bits, right.bits) + 1,  # type: ignore[arg-type]
                False,
            )
        return TOP
    if isinstance(op, ast.Mult):
        if left.known and right.known:
            return Width(
                left.bits + right.bits,  # type: ignore[operator]
                left.nonneg and right.nonneg,
            )
        return TOP
    if isinstance(op, ast.LShift):
        shift = _const_int(expr.right)
        if left.known and shift is not None and 0 <= shift <= 128:
            return Width(
                left.bits + shift,  # type: ignore[operator]
                left.nonneg,
            )
        return TOP
    if isinstance(op, ast.RShift):
        # Narrowing for non-negative values; sign-extending otherwise.
        if left.nonneg:
            return Width(left.bits, True)
        return TOP
    if isinstance(op, ast.Mod):
        if right.known:
            return Width(right.bits, True)
        return TOP
    if isinstance(op, ast.FloorDiv):
        return Width(left.bits, left.nonneg and right.nonneg)
    return TOP


def _call_width(
    expr: ast.Call, env: Env, call_width: Optional[CallWidth]
) -> Width:
    if call_width is not None:
        summary = call_width(expr, env)
        if summary is not None:
            return summary
    tail = _call_tail(expr)
    if tail in _MASKING_CALLS and len(expr.args) >= 2:
        width_arg = _const_int(expr.args[1])
        if width_arg is not None and 0 <= width_arg <= 64:
            return Width(width_arg, True)
        return TOP
    if tail in _NONNEG_CALLS:
        return Width(None, True)
    if tail in _TRANSPARENT_CALLS and len(expr.args) >= 1:
        return expression_width(expr.args[0], env, call_width)
    if tail in _TRANSPARENT_CALLS and isinstance(expr.func, ast.Attribute):
        # x.copy() / x.astype(...) — width of the receiver.
        return expression_width(expr.func.value, env, call_width)
    if tail in ("zeros", "zeros_like", "empty_like"):
        return Width(1, True)
    if tail in ("maximum", "minimum", "where"):
        widths = [
            expression_width(arg, env, call_width)
            for arg in expr.args[-2:]
        ]
        if widths:
            joined = widths[0]
            for width in widths[1:]:
                joined = joined.join(width)
            return joined
    if tail in ("min", "max") and expr.args:
        joined = expression_width(expr.args[0], env, call_width)
        for arg in expr.args[1:]:
            joined = joined.join(expression_width(arg, env, call_width))
        if tail == "min" and any(
            expression_width(a, env, call_width).known for a in expr.args
        ):
            best = min(
                (expression_width(a, env, call_width).bits
                 for a in expr.args
                 if expression_width(a, env, call_width).known),
            )
            return Width(best, joined.nonneg)
        return joined
    return TOP


class WidthEnv:
    """Per-function width environments, solved to fixpoint over the CFG.

    ``at(statement)`` is the environment *entering* the statement.
    Parameters start at ``TOP`` unless the caller seeds them (e.g. from
    an interprocedural summary).  Subscript stores weak-update the base
    name (join) — numpy in-place mutation; plain name stores strong-
    update.
    """

    def __init__(
        self,
        func: ast.AST,
        seed: Optional[Env] = None,
        call_width: Optional[CallWidth] = None,
        cfg: Optional[CFG] = None,
    ) -> None:
        self.cfg = cfg if cfg is not None else build_cfg(func)
        self.call_width = call_width
        entry_env: Env = {}
        args = getattr(func, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                entry_env[arg.arg] = TOP
        if seed:
            entry_env.update(seed)
        self._entry_env = entry_env
        self._in_envs: List[Env] = [
            {} for _ in self.cfg.nodes
        ]
        self._solve()

    def _solve(self) -> None:
        nodes = self.cfg.nodes
        out_envs: List[Env] = [{} for _ in nodes]
        changed = True
        iterations = 0
        while changed and iterations < 256:
            changed = False
            iterations += 1
            for index, node in enumerate(nodes):
                incoming: Env = {}
                sources: List[Env] = []
                if node.index == self.cfg.entry or not node.pred:
                    sources.append(self._entry_env)
                sources.extend(out_envs[p] for p in node.pred)
                for source in sources:
                    for name, width in source.items():
                        if name in incoming:
                            incoming[name] = incoming[name].join(width)
                        else:
                            incoming[name] = width
                self._in_envs[index] = incoming
                outgoing = dict(incoming)
                self._transfer(node.statement, outgoing)
                if outgoing != out_envs[index]:
                    out_envs[index] = outgoing
                    changed = True

    def _transfer(self, statement: ast.stmt, env: Env) -> None:
        if isinstance(statement, ast.Assign):
            width = expression_width(
                statement.value, env, self.call_width
            )
            for target in statement.targets:
                self._store(target, width, env)
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            width = expression_width(
                statement.value, env, self.call_width
            )
            self._store(statement.target, width, env)
        elif isinstance(statement, ast.AugAssign):
            equivalent = ast.BinOp(
                left=self._as_load(statement.target),
                op=statement.op,
                right=statement.value,
            )
            width = expression_width(equivalent, env, self.call_width)
            self._store(statement.target, width, env)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            width = TOP
            if isinstance(statement.iter, ast.Call) and _call_tail(
                statement.iter
            ) in ("range", "arange"):
                width = Width(None, True)
            self._store(statement.target, width, env)

    def _store(self, target: ast.AST, width: Width, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = width
        elif isinstance(target, (ast.Subscript, ast.Starred)):
            inner = target
            while isinstance(inner, (ast.Subscript, ast.Starred)):
                inner = inner.value
            if isinstance(inner, ast.Name):
                previous = env.get(inner.id, TOP)
                env[inner.id] = previous.join(width)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, TOP, env)

    @staticmethod
    def _as_load(target: ast.AST) -> ast.AST:
        if isinstance(target, ast.Name):
            return ast.Name(id=target.id, ctx=ast.Load())
        return target

    # -- queries ---------------------------------------------------------

    def at(self, statement: ast.stmt) -> Env:
        node = self.cfg.node_for(statement)
        if node is None:
            return dict(self._entry_env)
        return self._in_envs[node.index]

    def width_at(self, statement: ast.stmt, expr: ast.AST) -> Width:
        return expression_width(
            expr, self.at(statement), self.call_width
        )
