"""Project-wide dataflow analyses beneath the lint rule registry.

The PR 4 rules are per-node and syntactic: each looks at one AST in
isolation.  Two historical bug classes are invisible at that altitude —
cross-call state leaks (the ``PipelinedPredictor.reset()`` family) and
value-range hazards (the int64 overflow that hung the numpy
``fold_xor`` loop on addresses at or above ``2**63``).  This package is
the analysis layer that makes those visible statically:

* :mod:`project`  — module resolution over the linted file set: which
  ``repro.*`` module does a relpath denote, what does each module
  import, where is each top-level function/class defined.
* :mod:`callgraph` — best-effort call graph on top of the project:
  direct calls, imported names, ``self.method()``, class constructors.
  Unresolved edges are *recorded*, not guessed — consumers degrade to
  intraprocedural answers when resolution fails.
* :mod:`cfg`      — per-function control-flow graph at statement
  granularity, with await/yield suspension points marked; supports
  "is there a path from A to B crossing a suspension point" queries.
* :mod:`dataflow` — reaching definitions for locals and attribute
  chains over a CFG, producing def→use chains that findings carry as
  their :class:`~repro.lint.core.TraceStep` trace.
* :mod:`intervals` — a bit-width lattice for int64/numpy expressions
  (width in bits plus a non-negativity flag), with widening so
  loop-carried growth degrades to "unknown" instead of diverging.

Everything here is pure AST consumption: no imports of the analyzed
code, no side effects, deterministic output for a given file set.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .callgraph import CallGraph
from .cfg import CFG, build_cfg
from .dataflow import ReachingDefs, attribute_events, location_of
from .intervals import Width, WidthEnv, expression_width
from .project import FunctionInfo, Project

__all__ = [
    "CFG",
    "CallGraph",
    "FunctionInfo",
    "Project",
    "ReachingDefs",
    "Width",
    "WidthEnv",
    "attribute_events",
    "build_cfg",
    "expression_width",
    "local_context",
    "location_of",
]


def local_context(
    module,
    project: Optional[Project] = None,
    callgraph: Optional[CallGraph] = None,
) -> Tuple[Project, CallGraph]:
    """The (project, call graph) a rule should reason with.

    Bound rules pass the run-wide pair straight through; unbound rules
    (direct ``lint_module`` use, fixture runs) get a fresh single-module
    project — same analyses, intraprocedural answers.
    """
    if project is not None and callgraph is not None:
        return project, callgraph
    fresh = Project([module])
    return fresh, CallGraph(fresh)
