"""``python -m repro lint`` — run the simulator-correctness linter.

Usage::

    python -m repro lint                        # lint src/repro
    python -m repro lint src/repro/predictors   # one package
    python -m repro lint --rules R001 R003      # rule subset
    python -m repro lint --format json          # machine-readable
    python -m repro lint --format sarif         # code-scanning upload
    python -m repro lint --list-rules           # rule catalogue
    python -m repro lint --list-suppressions    # suppression debt audit

Exit status: 0 on a clean tree (no unsuppressed findings, no parse
errors), 1 otherwise — suitable for CI gating.
``--list-suppressions`` exits 1 when any directive names an
unregistered rule or lacks a justification in its neighbourhood.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .core import all_rules, collect_suppressions, lint_paths
from .reporters import render_json, render_sarif, render_text

__all__ = ["add_lint_arguments", "run_lint_command", "main"]


def _default_target() -> Path:
    """``src/repro`` resolved from this package's own location, so the
    command works from any working directory."""
    return Path(__file__).resolve().parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with the repro CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids (default: all registered rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by 'repro-lint: disable='",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--list-suppressions",
        action="store_true",
        help="audit every in-tree suppression directive and exit"
        " (1 if any is unjustified or names an unknown rule)",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute the lint subcommand from parsed arguments."""
    if args.list_rules:
        for rule_id, cls in sorted(all_rules().items()):
            print(f"{rule_id}  {cls.title}")
            print(f"      {cls.rationale}")
        return 0

    if args.paths:
        targets = [Path(p) for p in args.paths]
        root: Optional[Path] = None
    else:
        targets = [_default_target()]
        # Anchor finding paths at the repo root (two levels above repro/).
        root = _default_target().parent.parent

    if getattr(args, "list_suppressions", False):
        return _run_suppression_audit(targets, root)

    try:
        result = lint_paths(targets, rules=args.rules, root=root)
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1


def _run_suppression_audit(
    targets: List[Path], root: Optional[Path]
) -> int:
    """Print every suppression directive; non-zero on audit failures."""
    sites = collect_suppressions(targets, root=root)
    known = set(all_rules())
    failures = 0
    for site in sites:
        problems = []
        unknown = [rule for rule in site.rules if rule not in known]
        if unknown:
            problems.append(f"unknown rule(s) {','.join(unknown)}")
        if not site.justified:
            problems.append("no justification comment in reach")
        line = site.format()
        if problems:
            failures += 1
            line += "  <-- " + "; ".join(problems)
        print(line)
    print(
        f"{len(sites)} suppression(s), {failures} audit failure(s)"
    )
    return 0 if failures == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based simulator-correctness linter",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - module execution hook
    import sys

    sys.exit(main())
