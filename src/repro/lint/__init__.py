"""``repro lint`` — AST-based simulator-correctness linter.

Simulator reproductions rarely crash when they are wrong: a stale field
that survives ``reset()``, an unmasked address add, or an order-dependent
iteration silently shifts a figure.  PR 3's differential verifier caught
exactly such a bug (``PipelinedPredictor.reset()`` forgot its embedded
branch predictor and flush counter) only after hours of fuzzing; this
package detects the same *class* of bug in seconds, from the AST.

Architecture
------------

* :mod:`repro.lint.core` — the framework: :class:`Finding`,
  :class:`Rule`, the rule registry, :class:`ModuleInfo` (parsed source +
  per-line ``# repro-lint: disable=RULE`` suppressions) and the
  :func:`lint_paths` / :func:`lint_source` drivers.
* :mod:`repro.lint.rules` — the repo-specific rules:

  ====  =====================================================
  R001  reset-completeness (the PR 3 bug class)
  R002  determinism (unseeded RNG, wall clock, set iteration,
        environment reads outside repro.eval.config)
  R003  bit-width hygiene (unmasked address/history arithmetic)
  R004  engine picklability (lambdas/local defs in Job payloads)
  R005  stream/columns parity (run_on_stream vs run_on_columns)
  ====  =====================================================

* :mod:`repro.lint.reporters` — text and JSON output.
* :mod:`repro.lint.cli` — the ``python -m repro lint`` entry point.

See ``docs/static-analysis.md`` for the full rule catalogue and the
suppression policy.
"""

from __future__ import annotations

from .core import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    all_rules,
    get_rules,
    lint_module,
    lint_paths,
    lint_source,
    register,
)

# Importing the rules package registers every built-in rule.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rules",
    "lint_module",
    "lint_paths",
    "lint_source",
    "register",
]
