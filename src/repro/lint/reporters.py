"""Render lint results as text, JSON, or SARIF 2.1.0.

The text and JSON forms are byte-stable for findings without traces —
CI diffs and downstream parsers rely on that.  Findings carrying a
dataflow trace append indented ``trace:`` lines (text) or a ``trace``
key (JSON).  SARIF is for code-scanning UIs: each finding becomes a
``result`` whose ``codeFlows`` replay the def→use chain.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .core import Finding, LintResult, all_rules

__all__ = ["render_text", "render_json", "render_sarif", "summary_dict"]


def summary_dict(result: LintResult) -> Dict[str, object]:
    """Machine-readable run summary (embedded in the JSON report)."""
    by_rule: Dict[str, int] = {}
    for finding in result.active:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "files_checked": result.files_checked,
        "findings": len(result.active),
        "suppressed": len(result.suppressed),
        "errors": list(result.errors),
        "by_rule": dict(sorted(by_rule.items())),
        "ok": result.ok,
    }


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = []
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(finding.format())
        for step in finding.trace:
            where = f"{step.path or finding.path}:{step.line}"
            lines.append(f"    trace: {where}  {step.note}")
    for error in result.errors:
        lines.append(f"error: {error}")
    summary = summary_dict(result)
    lines.append(
        f"{summary['files_checked']} file(s) checked:"
        f" {summary['findings']} finding(s),"
        f" {summary['suppressed']} suppressed"
    )
    if result.active:
        counts = ", ".join(
            f"{rule}={count}" for rule, count in summary["by_rule"].items()
        )
        lines.append(f"by rule: {counts}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Full machine-readable report (findings + summary + rule catalogue)."""
    payload = {
        "summary": summary_dict(result),
        "findings": [finding.as_dict() for finding in result.findings],
        "rules": {
            rule_id: {"title": cls.title, "rationale": cls.rationale}
            for rule_id, cls in sorted(all_rules().items())
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _sarif_location(path: str, line: int) -> Dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(1, line)},
        }
    }


def _sarif_result(finding: Finding) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": "warning",
        "message": {"text": finding.message},
        "locations": [_sarif_location(finding.path, finding.line)],
    }
    if finding.symbol:
        result["properties"] = {"symbol": finding.symbol}
    if finding.suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    if finding.trace:
        locations: List[Dict[str, object]] = []
        for step in finding.trace:
            location = _sarif_location(
                step.path or finding.path, step.line
            )
            location["message"] = {"text": step.note}
            locations.append({"location": location})
        result["codeFlows"] = [
            {"threadFlows": [{"locations": locations}]}
        ]
    return result


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report for code-scanning UIs (one run, one tool)."""
    rules = [
        {
            "id": rule_id,
            "name": cls.title,
            "shortDescription": {"text": cls.title},
            "fullDescription": {"text": cls.rationale},
        }
        for rule_id, cls in sorted(all_rules().items())
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(finding)
                    for finding in result.findings
                ],
                "invocations": [
                    {
                        "executionSuccessful": not result.errors,
                        "toolExecutionNotifications": [
                            {
                                "level": "error",
                                "message": {"text": error},
                            }
                            for error in result.errors
                        ],
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
