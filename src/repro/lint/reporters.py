"""Render lint results as text or JSON."""

from __future__ import annotations

import json
from typing import Dict

from .core import LintResult, all_rules

__all__ = ["render_text", "render_json", "summary_dict"]


def summary_dict(result: LintResult) -> Dict[str, object]:
    """Machine-readable run summary (embedded in the JSON report)."""
    by_rule: Dict[str, int] = {}
    for finding in result.active:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "files_checked": result.files_checked,
        "findings": len(result.active),
        "suppressed": len(result.suppressed),
        "errors": list(result.errors),
        "by_rule": dict(sorted(by_rule.items())),
        "ok": result.ok,
    }


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = []
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(finding.format())
    for error in result.errors:
        lines.append(f"error: {error}")
    summary = summary_dict(result)
    lines.append(
        f"{summary['files_checked']} file(s) checked:"
        f" {summary['findings']} finding(s),"
        f" {summary['suppressed']} suppressed"
    )
    if result.active:
        counts = ", ".join(
            f"{rule}={count}" for rule, count in summary["by_rule"].items()
        )
        lines.append(f"by rule: {counts}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Full machine-readable report (findings + summary + rule catalogue)."""
    payload = {
        "summary": summary_dict(result),
        "findings": [finding.as_dict() for finding in result.findings],
        "rules": {
            rule_id: {"title": cls.title, "rationale": cls.rationale}
            for rule_id, cls in sorted(all_rules().items())
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)
