"""Lint framework core: findings, rules, suppressions, drivers.

Rules are small classes registered via :func:`register`; each receives a
fully parsed :class:`ModuleInfo` and yields :class:`Finding` objects.
The drivers apply per-line ``# repro-lint: disable=RULE[,RULE...]``
suppressions *after* the rules run, so suppressed findings are still
counted (and reported as suppressed in the JSON summary) — a suppression
hides a finding, it never hides the fact that one existed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rules",
    "lint_module",
    "lint_paths",
    "lint_source",
    "register",
]

#: ``# repro-lint: disable=R001`` or ``# repro-lint: disable=R001,R003``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str            # "R001"
    path: str            # repo-relative path of the offending module
    line: int            # 1-based line number
    message: str         # human-readable description
    symbol: str = ""     # class/function the finding anchors to, if any
    suppressed: bool = False

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        where = f"{self.path}:{self.line}"
        anchor = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule}{anchor} {self.message}{tag}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
            "suppressed": self.suppressed,
        }


class _ParentAnnotator(ast.NodeVisitor):
    """Attach a ``_lint_parent`` attribute to every AST node."""

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]
        super().generic_visit(node)


def parents(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ancestors of ``node`` (requires :class:`ModuleInfo` parsing)."""
    current = getattr(node, "_lint_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_lint_parent", None)


class ModuleInfo:
    """A parsed module plus everything rules need to inspect it.

    ``relpath`` uses "/" separators and is what rules match packages
    against (``predictors/``, ``eval/`` ...).  Tests may pass a *virtual*
    path to lint an in-memory source string as if it lived anywhere in
    the tree — the self-check test replays the historical
    ``PipelinedPredictor.reset()`` bug exactly this way.
    """

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.relpath)
        _ParentAnnotator().visit(self.tree)
        self._suppressions = self._parse_suppressions()

    # -- suppressions ---------------------------------------------------

    def _parse_suppressions(self) -> Dict[int, set]:
        table: Dict[int, set] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            table[number] = rules
        return table

    def suppressed(self, line: int, rule: str) -> bool:
        """Is ``rule`` disabled on ``line`` (same physical line only)?"""
        return rule in self._suppressions.get(line, set())

    # -- convenience ----------------------------------------------------

    def in_package(self, *segments: str) -> bool:
        """True when the module path contains any of ``segments`` as a
        path component (``info.in_package("predictors", "timing")``)."""
        parts = self.relpath.split("/")
        return any(segment in parts for segment in segments)

    def imports_module(self, suffix: str) -> bool:
        """True when the module imports ``suffix`` (matched against the
        end of absolute names and the tail of relative ``from`` imports)."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == suffix or alias.name.endswith(
                        "." + suffix
                    ):
                        return True
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module == suffix or node.module.endswith(
                    "." + suffix
                ):
                    return True
        return False

    def segment(self, node: ast.AST) -> str:
        """Best-effort source text of ``node`` (for messages)."""
        try:
            return ast.get_source_segment(self.source, node) or ""
        except Exception:  # pragma: no cover - defensive
            return ""


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``title``/``rationale`` and implement
    :meth:`check`.  Registration happens via the :func:`register`
    decorator, which keys the registry by ``id``.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            message=message,
            symbol=symbol,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, keyed by rule id (``R001`` ...)."""
    return dict(_REGISTRY)


def get_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (default: every registered one)."""
    if ids is None:
        return [cls() for _, cls in sorted(_REGISTRY.items())]
    unknown = [rule_id for rule_id in ids if rule_id not in _REGISTRY]
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule(s) {unknown}; known rules: {known}")
    return [_REGISTRY[rule_id]() for rule_id in ids]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings that are *not* suppressed."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        """Clean run: no unsuppressed findings and no parse errors."""
        return not self.active and not self.errors


def lint_module(
    module: ModuleInfo, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` over one parsed module, applying suppressions."""
    findings: List[Finding] = []
    for rule in rules if rules is not None else get_rules():
        for found in rule.check(module):
            if module.suppressed(found.line, found.rule):
                found = Finding(
                    rule=found.rule,
                    path=found.path,
                    line=found.line,
                    message=found.message,
                    symbol=found.symbol,
                    suppressed=True,
                )
            findings.append(found)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_source(
    source: str,
    relpath: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint an in-memory source string under a (possibly virtual) path."""
    return lint_module(ModuleInfo(relpath, source), get_rules(rules))


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``root`` anchors the repo-relative paths in findings; it defaults to
    the current working directory when the files live under it.
    """
    selected = get_rules(rules)
    base = (root or Path.cwd()).resolve()
    result = LintResult()
    for file_path in _iter_python_files(Path(p) for p in paths):
        resolved = file_path.resolve()
        try:
            relpath = str(resolved.relative_to(base))
        except ValueError:
            relpath = str(file_path)
        try:
            source = resolved.read_text(encoding="utf-8")
            module = ModuleInfo(relpath, source)
        except (OSError, SyntaxError) as exc:
            result.errors.append(f"{relpath}: {exc}")
            continue
        result.files_checked += 1
        result.findings.extend(lint_module(module, selected))
    return result
