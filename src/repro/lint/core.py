"""Lint framework core: findings, rules, suppressions, drivers.

Rules are small classes registered via :func:`register`; each receives a
fully parsed :class:`ModuleInfo` and yields :class:`Finding` objects.
The drivers apply per-line ``# repro-lint: disable=RULE[,RULE...]``
suppressions *after* the rules run, so suppressed findings are still
counted (and reported as suppressed in the JSON summary) — a suppression
hides a finding, it never hides the fact that one existed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "SuppressionSite",
    "TraceStep",
    "all_rules",
    "collect_suppressions",
    "get_rules",
    "lint_module",
    "lint_paths",
    "lint_source",
    "register",
]

#: ``# repro-lint: disable=R001`` or ``# repro-lint: disable=R001,R003``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)"
)


@dataclass(frozen=True)
class TraceStep:
    """One hop of a finding's def→use / control-flow trace."""

    line: int            # 1-based line in ``path``
    note: str            # "read of self._sessions_active", "await ..."
    path: str = ""       # defaults to the finding's own path

    def as_dict(self) -> dict:
        payload: dict = {"line": self.line, "note": self.note}
        if self.path:
            payload["path"] = self.path
        return payload


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str            # "R001"
    path: str            # repo-relative path of the offending module
    line: int            # 1-based line number
    message: str         # human-readable description
    symbol: str = ""     # class/function the finding anchors to, if any
    suppressed: bool = False
    #: Optional dataflow trace (def→use chain, await crossings ...).
    trace: tuple = ()

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        where = f"{self.path}:{self.line}"
        anchor = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule}{anchor} {self.message}{tag}"

    def as_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
            "suppressed": self.suppressed,
        }
        if self.trace:
            payload["trace"] = [step.as_dict() for step in self.trace]
        return payload


class _ParentAnnotator(ast.NodeVisitor):
    """Attach a ``_lint_parent`` attribute to every AST node."""

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]
        super().generic_visit(node)


def parents(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ancestors of ``node`` (requires :class:`ModuleInfo` parsing)."""
    current = getattr(node, "_lint_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_lint_parent", None)


class ModuleInfo:
    """A parsed module plus everything rules need to inspect it.

    ``relpath`` uses "/" separators and is what rules match packages
    against (``predictors/``, ``eval/`` ...).  Tests may pass a *virtual*
    path to lint an in-memory source string as if it lived anywhere in
    the tree — the self-check test replays the historical
    ``PipelinedPredictor.reset()`` bug exactly this way.
    """

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.relpath)
        _ParentAnnotator().visit(self.tree)
        self._suppressions = self._parse_suppressions()

    # -- suppressions ---------------------------------------------------

    def _parse_suppressions(self) -> Dict[int, set]:
        table: Dict[int, set] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            # Documentation *about* the directive quotes it in literal
            # backticks (``# repro-lint: ...``); only unquoted
            # occurrences are live directives.
            start = match.start()
            if start > 0 and text[start - 1] == "`":
                continue
            rules = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            table[number] = rules
        return table

    def suppressed(self, line: int, rule: str) -> bool:
        """Is ``rule`` disabled on ``line`` (same physical line only)?"""
        return rule in self._suppressions.get(line, set())

    def suppression_lines(self) -> Dict[int, set]:
        """Every ``disable=`` directive in this module, line → rule ids
        (a copy — for the suppression-debt audit)."""
        return {line: set(rules) for line, rules in self._suppressions.items()}

    # -- convenience ----------------------------------------------------

    def in_package(self, *segments: str) -> bool:
        """True when the module path contains any of ``segments`` as a
        path component (``info.in_package("predictors", "timing")``)."""
        parts = self.relpath.split("/")
        return any(segment in parts for segment in segments)

    def imports_module(self, suffix: str) -> bool:
        """True when the module imports ``suffix`` (matched against the
        end of absolute names and the tail of relative ``from`` imports)."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == suffix or alias.name.endswith(
                        "." + suffix
                    ):
                        return True
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module == suffix or node.module.endswith(
                    "." + suffix
                ):
                    return True
        return False

    def segment(self, node: ast.AST) -> str:
        """Best-effort source text of ``node`` (for messages)."""
        try:
            return ast.get_source_segment(self.source, node) or ""
        except Exception:  # pragma: no cover - defensive
            return ""


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``title``/``rationale`` and implement
    :meth:`check`.  Registration happens via the :func:`register`
    decorator, which keys the registry by ``id``.

    Rules that reason across modules set ``needs_project = True``; the
    drivers then call :meth:`bind` with a ``repro.lint.flow.Project``
    and ``CallGraph`` spanning the whole run before any module is
    checked.  An unbound rule (direct :func:`lint_module` use, fixture
    runs) must degrade to single-module reasoning — never fail.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    needs_project: bool = False

    def __init__(self) -> None:
        self.project = None
        self.callgraph = None

    def bind(self, project, callgraph) -> None:
        """Attach the cross-module context for this run."""
        self.project = project
        self.callgraph = callgraph

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        symbol: str = "",
        trace: Sequence[TraceStep] = (),
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            message=message,
            symbol=symbol,
            trace=tuple(trace),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, keyed by rule id (``R001`` ...)."""
    return dict(_REGISTRY)


def get_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (default: every registered one)."""
    if ids is None:
        return [cls() for _, cls in sorted(_REGISTRY.items())]
    unknown = [rule_id for rule_id in ids if rule_id not in _REGISTRY]
    if unknown:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule(s) {unknown}; known rules: {known}")
    return [_REGISTRY[rule_id]() for rule_id in ids]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings that are *not* suppressed."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        """Clean run: no unsuppressed findings and no parse errors."""
        return not self.active and not self.errors


def lint_module(
    module: ModuleInfo, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` over one parsed module, applying suppressions."""
    findings: List[Finding] = []
    for rule in rules if rules is not None else get_rules():
        for found in rule.check(module):
            if module.suppressed(found.line, found.rule):
                found = Finding(
                    rule=found.rule,
                    path=found.path,
                    line=found.line,
                    message=found.message,
                    symbol=found.symbol,
                    suppressed=True,
                    trace=found.trace,
                )
            findings.append(found)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_source(
    source: str,
    relpath: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint an in-memory source string under a (possibly virtual) path.

    Flow rules get a single-module project — cross-module resolution
    degrades gracefully, which is exactly what fixture tests exercise.
    """
    module = ModuleInfo(relpath, source)
    selected = get_rules(rules)
    _bind_project(selected, [module])
    return lint_module(module, selected)


def _bind_project(rules: Sequence[Rule], modules: List[ModuleInfo]) -> None:
    """Build the flow-layer project/call-graph for rules that want one.

    Imported lazily — ``repro.lint.flow`` imports this module, and most
    runs (single syntactic rule, ``--list-rules``) never need the graph.
    """
    if not any(rule.needs_project for rule in rules):
        return
    from .flow import CallGraph, Project  # local import: cycle + cost

    project = Project(modules)
    graph = CallGraph(project)
    for rule in rules:
        if rule.needs_project:
            rule.bind(project, graph)


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``root`` anchors the repo-relative paths in findings; it defaults to
    the current working directory when the files live under it.
    """
    selected = get_rules(rules)
    base = (root or Path.cwd()).resolve()
    result = LintResult()
    modules: List[ModuleInfo] = []
    for file_path in _iter_python_files(Path(p) for p in paths):
        resolved = file_path.resolve()
        try:
            relpath = str(resolved.relative_to(base))
        except ValueError:
            relpath = str(file_path)
        try:
            source = resolved.read_text(encoding="utf-8")
            modules.append(ModuleInfo(relpath, source))
        except (OSError, SyntaxError) as exc:
            result.errors.append(f"{relpath}: {exc}")
            continue
        result.files_checked += 1
    # Two-pass: parse everything first so cross-module rules see the
    # whole file set, then check each module against the bound rules.
    _bind_project(selected, modules)
    for module in modules:
        result.findings.extend(lint_module(module, selected))
    return result


@dataclass(frozen=True)
class SuppressionSite:
    """One in-tree ``repro-lint: disable=`` directive."""

    path: str
    line: int
    rules: tuple          # rule ids named by the directive
    text: str             # the source line carrying the directive
    justified: bool       # a comment/docstring sits within reach above

    def format(self) -> str:
        rules = ",".join(self.rules)
        status = "" if self.justified else "  [UNJUSTIFIED]"
        return f"{self.path}:{self.line}: {rules}{status}  {self.text.strip()}"


#: How many lines above a directive may carry its justification.
_JUSTIFICATION_REACH = 6


def _has_justification(lines: List[str], line: int) -> bool:
    """A suppression is justified when an explanatory comment or a
    docstring sits on the same line after the directive, or within the
    preceding few lines (matching the documented convention that every
    suppression's neighbourhood explains *why* the rule is wrong here)."""
    text = lines[line - 1]
    match = _SUPPRESS_RE.search(text)
    if match is not None and text[match.end():].strip(" -—:#"):
        return True
    start = max(0, line - 1 - _JUSTIFICATION_REACH)
    for neighbour in lines[start:line - 1]:
        stripped = neighbour.strip()
        if '"""' in stripped or "'''" in stripped:
            return True
        if "#" in neighbour and _SUPPRESS_RE.search(neighbour) is None:
            return True
    return False


def collect_suppressions(
    paths: Sequence[Path],
    root: Optional[Path] = None,
) -> List[SuppressionSite]:
    """Inventory every suppression directive under ``paths``."""
    base = (root or Path.cwd()).resolve()
    sites: List[SuppressionSite] = []
    for file_path in _iter_python_files(Path(p) for p in paths):
        resolved = file_path.resolve()
        try:
            relpath = str(resolved.relative_to(base))
        except ValueError:
            relpath = str(file_path)
        try:
            source = resolved.read_text(encoding="utf-8")
            module = ModuleInfo(relpath, source)
        except (OSError, SyntaxError):
            continue
        for line, rules in sorted(module.suppression_lines().items()):
            sites.append(
                SuppressionSite(
                    path=relpath,
                    line=line,
                    rules=tuple(sorted(rules)),
                    text=module.lines[line - 1],
                    justified=_has_justification(module.lines, line),
                )
            )
    sites.sort(key=lambda s: (s.path, s.line))
    return sites
