"""R002 — determinism.

Two runs of the same experiment must produce bit-identical tables (the
parallel engine merges per-job results assuming exactly that, and the
differential verifier replays traces assuming it too).  This rule flags
the classic ways Python code goes quietly non-deterministic:

* **Unseeded global RNG** — any ``random.X(...)`` module-level call.
  Seeded ``random.Random(seed)`` instances are the sanctioned idiom:
  the global RNG's state is shared across the whole process and is not
  reproducible across ``ProcessPoolExecutor`` workers.
* **Wall-clock reads** — ``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()``, ``datetime.now()`` and friends.  Timing a run
  for *display* is fine (suppress with a comment saying so); feeding a
  clock into simulation state is never fine.
* **Unordered iteration** — ``for x in {…}`` / ``for x in set(...)`` and
  bare ``dict.popitem()`` (argument-less; ``OrderedDict.popitem(last=…)``
  is deterministic and not flagged).  Set iteration order depends on the
  interning of the elements and the hash seed.
* **Environment reads outside the RunConfig module** —
  ``os.environ[...]`` / ``os.getenv(...)`` anywhere except
  ``repro/eval/config.py``, the typed resolution point every runtime
  knob funnels through.  A predictor or trace generator that consults
  the environment produces figures nobody can reproduce from the command
  line alone; even engine and telemetry code must go through
  :mod:`repro.eval.config` so precedence (defaults < env < CLI flags)
  is decided in exactly one place.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import attr_chain
from ..core import Finding, ModuleInfo, Rule, register

#: random-module functions that use the shared global RNG state.
GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)

#: Wall-clock reads: (module, attribute).
CLOCK_FUNCS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: The only modules in which environment reads are sanctioned: the typed
#: RunConfig resolution point (every knob funnels through it) and the
#: lint package's own fixtures.  Until PR 7 whole packages (eval/,
#: telemetry/) were exempt; collapsing the knob sprawl into
#: ``repro.eval.config`` let the allowlist shrink to one module.
ENV_ALLOWED_MODULES = ("eval/config.py",)

#: Packages whose *job* is measuring wall time: the observability plane
#: (``repro.obs``) exists to timestamp spans, latency histograms and
#: flight-recorder events, so its ``perf_counter()`` reads are the
#: product, not a leak into simulation state.  Nothing in ``obs/`` feeds
#: predictor or trace state — the import graph only flows the other way
#: (serve/eval/kernels *call into* obs) — so the exemption is scoped to
#: the package rather than sprinkled as per-line suppressions.
CLOCK_ALLOWED_PACKAGES = ("obs",)


def _env_read_allowed(module: "ModuleInfo") -> bool:
    relpath = module.relpath.replace("\\", "/")
    return any(relpath.endswith(suffix) for suffix in ENV_ALLOWED_MODULES)


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class DeterminismRule(Rule):
    id = "R002"
    title = "determinism"
    rationale = (
        "Unseeded RNG, wall-clock reads, unordered iteration and"
        " out-of-band environment reads make runs non-reproducible —"
        " the engine's serial==parallel merge and the differential"
        " verifier both assume bit-identical replay."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                finding = self._check_call(module, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if _is_set_expression(iterable):
                    yield self.finding(
                        module,
                        iterable,
                        "iteration over an unordered set reaches results"
                        " in hash order; sort it or use an ordered"
                        " container",
                    )
            elif isinstance(node, ast.Subscript):
                finding = self._check_environ_subscript(module, node)
                if finding is not None:
                    yield finding

    # -- helpers --------------------------------------------------------

    def _check_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> Optional[Finding]:
        chain = attr_chain(call.func)
        if chain is None:
            return None

        # random.X(...) on the global RNG.
        if (
            len(chain) == 2
            and chain[0] == "random"
            and chain[1] in GLOBAL_RNG_FUNCS
        ):
            return self.finding(
                module,
                call,
                f"global-RNG call random.{chain[1]}(); use a seeded"
                f" random.Random(seed) instance instead",
            )

        # Wall-clock reads (the obs package measures time for a living).
        if (
            len(chain) >= 2
            and (chain[-2], chain[-1]) in CLOCK_FUNCS
            and not module.in_package(*CLOCK_ALLOWED_PACKAGES)
        ):
            return self.finding(
                module,
                call,
                f"wall-clock read {'.'.join(chain)}(); simulator state"
                f" and results must not depend on real time",
            )

        # Bare dict.popitem() — removes an *arbitrary* item.  The keyword
        # form (OrderedDict.popitem(last=...)) is deterministic.
        if chain[-1] == "popitem" and not call.args and not call.keywords:
            return self.finding(
                module,
                call,
                "bare popitem() removes an arbitrary entry; use"
                " OrderedDict.popitem(last=...) or an explicit key",
            )

        # os.getenv / os.environ.get outside the RunConfig module.
        if not _env_read_allowed(module):
            if chain == ("os", "getenv") or (
                len(chain) >= 3
                and chain[-3:] == ("os", "environ", "get")
            ) or (
                len(chain) == 2 and chain[0] == "environ" and chain[1] == "get"
            ):
                return self.finding(
                    module,
                    call,
                    "environment read outside repro.eval.config; route"
                    " configuration through RunConfig or explicit"
                    " parameters",
                )
        return None

    def _check_environ_subscript(
        self, module: ModuleInfo, node: ast.Subscript
    ) -> Optional[Finding]:
        if _env_read_allowed(module):
            return None
        if not isinstance(node.ctx, ast.Load):
            return None
        chain = attr_chain(node.value)
        if chain is not None and chain[-1] == "environ":
            return self.finding(
                module,
                node,
                "environment read outside repro.eval.config; route"
                " configuration through RunConfig or explicit"
                " parameters",
            )
        return None
