"""R009 — int64 overflow and sign-extension hazards in numpy kernels.

The batch kernels do address arithmetic on ``int64`` arrays.  Two
hazards hide there, both invisible to the syntactic rules:

* **Width overflow** — a ``+``/``<<``/``*`` chain whose operands are
  wide enough that the mathematical result needs more than the 63 value
  bits of a signed int64 *before* any mask is applied.  numpy wraps
  silently (and, since 1.24, may raise on scalar conversion) — either
  way the kernel diverges from the unbounded-int reference semantics.
* **Sign-extending shift loops** — ``x >>= k`` inside a loop only
  terminates when ``x`` reaches zero, and arithmetic shift right of a
  *negative* int64 converges to ``-1``, never zero.  Any input at or
  above ``2**63`` (an un-canonicalised address) wraps negative and the
  loop hangs.  This is the historical ``fold_xor_array`` bug: the
  ingest layer now canonicalises addresses to 63 bits, but the kernel
  itself must not rely on every caller having done so.

The rule runs the bit-width lattice (``repro.lint.flow.intervals``) to
a fixpoint over each kernel function's CFG.  It fires only on *proven*
hazards: a known width above 63 bits, or a shift-loop on a value not
proven non-negative.  Loop-carried growth the lattice cannot bound
degrades to "unknown" and stays silent — the rule never guesses.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..core import Finding, ModuleInfo, Rule, TraceStep, register
from ..flow.cfg import scan_roots
from ..flow.dataflow import ReachingDefs
from ..flow.intervals import WidthEnv, expression_width

#: Packages doing vectorised int64 math (rule scope).
SCOPED_PACKAGES = ("kernels",)

#: Signed int64 value bits.
INT64_VALUE_BITS = 63


def _functions(tree: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        owner = getattr(node, "_lint_parent", None)
        if isinstance(owner, ast.ClassDef):
            yield node, f"{owner.name}.{node.name}"
        else:
            yield node, node.name


def _loop_ancestor(node: ast.AST) -> Optional[ast.AST]:
    current = getattr(node, "_lint_parent", None)
    while current is not None:
        if isinstance(current, (ast.While, ast.For)):
            return current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        current = getattr(current, "_lint_parent", None)
    return None


def _shift_base_name(target: ast.AST) -> Optional[str]:
    """The shifted array's name: plain ``x`` or ``x[mask]``."""
    inner = target
    while isinstance(inner, (ast.Subscript, ast.Starred)):
        inner = inner.value
    if isinstance(inner, ast.Name):
        return inner.id
    return None


def _under_mask(node: ast.AST) -> bool:
    """Is this expression consumed by a ``& mask`` / ``%`` ancestor
    within its statement?"""
    current = getattr(node, "_lint_parent", None)
    while current is not None and not isinstance(current, ast.stmt):
        if isinstance(current, ast.BinOp) and isinstance(
            current.op, (ast.BitAnd, ast.Mod)
        ):
            return True
        if isinstance(current, ast.Compare):
            return True
        current = getattr(current, "_lint_parent", None)
    return False


@register
class NumpyOverflowRule(Rule):
    id = "R009"
    title = "numpy-int64-overflow"
    rationale = (
        "int64 arithmetic that can exceed 63 value bits before masking"
        " wraps silently, and right-shift loops on possibly-negative"
        " values never terminate — kernels must mask at entry, not"
        " trust their callers' ranges."
    )
    #: Width analysis is per-function by design: a kernel must be safe
    #: for *any* caller, so caller context could only hide hazards.
    needs_project = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPED_PACKAGES):
            return
        for func, symbol in _functions(module.tree):
            env = WidthEnv(func)
            defs = ReachingDefs(env.cfg)
            yield from self._check_widths(module, symbol, env)
            yield from self._check_shift_loops(
                module, symbol, env, defs
            )

    # -- proven width overflow -------------------------------------------

    def _check_widths(
        self, module: ModuleInfo, symbol: str, env: WidthEnv
    ) -> Iterator[Finding]:
        for statement in env.cfg.iter_statements():
            scope = env.at(statement)
            for node in (
                child
                for root in scan_roots(statement)
                for child in ast.walk(root)
            ):
                if not isinstance(node, ast.BinOp):
                    continue
                if not isinstance(
                    node.op,
                    (ast.Add, ast.Mult, ast.LShift),
                ):
                    continue
                width = expression_width(node, scope, env.call_width)
                if not width.known or width.bits <= INT64_VALUE_BITS:
                    continue
                if _under_mask(node):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"'{module.segment(node)}' may need {width.bits}"
                    f" value bits — more than the {INT64_VALUE_BITS} an"
                    f" int64 holds; mask the operands before widening"
                    f" arithmetic",
                    symbol=symbol,
                    trace=[
                        TraceStep(
                            getattr(node, "lineno", statement.lineno),
                            f"widest provable value: {width.bits} bits",
                        )
                    ],
                )

    # -- sign-extending shift loops --------------------------------------

    def _check_shift_loops(
        self,
        module: ModuleInfo,
        symbol: str,
        env: WidthEnv,
        defs: ReachingDefs,
    ) -> Iterator[Finding]:
        for statement in env.cfg.iter_statements():
            target: Optional[ast.AST] = None
            if isinstance(statement, ast.AugAssign) and isinstance(
                statement.op, ast.RShift
            ):
                target = statement.target
            elif isinstance(statement, ast.Assign) and isinstance(
                statement.value, ast.BinOp
            ) and isinstance(statement.value.op, ast.RShift):
                # x = x >> k with matching target
                value_base = _shift_base_name(statement.value.left)
                for assign_target in statement.targets:
                    if _shift_base_name(assign_target) == value_base:
                        target = assign_target
                        break
            if target is None:
                continue
            if _loop_ancestor(statement) is None:
                continue
            name = _shift_base_name(target)
            if name is None:
                continue
            width = env.at(statement).get(name)
            if width is not None and width.nonneg:
                continue  # proven non-negative: the shift reaches zero
            trace: List[TraceStep] = []
            for definition in defs.chain(statement, name):
                if definition.value is None:
                    note = (
                        f"'{definition.name}' enters as a parameter —"
                        f" range unknown"
                    )
                else:
                    note = (
                        f"'{definition.name}' defined here without a"
                        f" non-negative bound"
                    )
                trace.append(TraceStep(definition.line, note))
            trace.reverse()
            trace.append(
                TraceStep(
                    statement.lineno,
                    f"arithmetic '>>=' in a loop: negative int64"
                    f" converges to -1, never 0",
                )
            )
            yield self.finding(
                module,
                statement,
                f"right-shift loop on '{name}' whose non-negativity is"
                f" unproven: any input at or above 2**63 wraps negative"
                f" and the loop never terminates — mask to 63 bits at"
                f" function entry (e.g."
                f" values & np.int64((1 << 63) - 1))",
                symbol=symbol,
                trace=trace,
            )
