"""R005 — stream/columns parity.

The evaluation layer keeps two semantically-identical predictor drivers:
``run_on_stream`` (the reference tuple-stream loop) and
``run_on_columns`` (the columnar fast path the figure suite actually
runs).  PR 3's three-way differential oracle checks their *outputs*
agree dynamically; this rule checks their *inputs* agree statically — a
predictor attribute or config field consulted by one loop but not the
other is either dead weight or, far worse, a behaviour only one path
has (the figure suite would then silently diverge from the reference
semantics without any crash).

For every module (or class) defining **both** functions, the rule
compares the sets of attribute chains read off the first parameter
(``predictor.predict``, ``predictor.config.gap``, ...) and reports any
asymmetry against the function that lacks the access.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import attr_chain
from ..core import Finding, ModuleInfo, Rule, register

STREAM_NAME = "run_on_stream"
COLUMNS_NAME = "run_on_columns"


def _first_param(function: ast.FunctionDef) -> Optional[str]:
    args = function.args
    ordered = list(args.posonlyargs) + list(args.args)
    if ordered and ordered[0].arg == "self":
        ordered = ordered[1:]
    if not ordered:
        return None
    return ordered[0].arg


def _param_reads(function: ast.FunctionDef, param: str) -> Set[str]:
    """Dotted attribute chains read from ``param`` inside ``function``."""
    reads: Set[str] = set()
    for node in ast.walk(function):
        if not isinstance(node, ast.Attribute):
            continue
        chain = attr_chain(node)
        if chain is None or chain[0] != param or len(chain) < 2:
            continue
        reads.add(".".join(chain[1:]))
    # Keep only the longest chains (reading `p.config.gap` also visits
    # the `p.config` attribute node; reporting both would be noise).
    return {
        read
        for read in reads
        if not any(other != read and other.startswith(read + ".") for other in reads)
    }


def _collect_pairs(
    module: ModuleInfo,
) -> Iterator[Tuple[str, ast.FunctionDef, ast.FunctionDef]]:
    """(scope label, stream fn, columns fn) for module and class scopes."""
    scopes: List[Tuple[str, List[ast.stmt]]] = [("module", module.tree.body)]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            scopes.append((node.name, node.body))
    for label, body in scopes:
        functions: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in body
            if isinstance(stmt, ast.FunctionDef)
        }
        if STREAM_NAME in functions and COLUMNS_NAME in functions:
            yield label, functions[STREAM_NAME], functions[COLUMNS_NAME]


@register
class StreamColumnsParityRule(Rule):
    id = "R005"
    title = "stream-columns-parity"
    rationale = (
        "run_on_stream and run_on_columns must consult the same"
        " predictor surface; an attribute read by only one path is a"
        " semantic fork the differential oracle may not cover."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for _, stream_fn, columns_fn in _collect_pairs(module):
            stream_param = _first_param(stream_fn)
            columns_param = _first_param(columns_fn)
            if stream_param is None or columns_param is None:
                continue
            stream_reads = _param_reads(stream_fn, stream_param)
            columns_reads = _param_reads(columns_fn, columns_param)
            for missing in sorted(stream_reads - columns_reads):
                yield self.finding(
                    module,
                    columns_fn,
                    f"{COLUMNS_NAME} never reads"
                    f" '{columns_param}.{missing}' but {STREAM_NAME}"
                    f" does; the fast path is missing behaviour",
                    symbol=COLUMNS_NAME,
                )
            for missing in sorted(columns_reads - stream_reads):
                yield self.finding(
                    module,
                    stream_fn,
                    f"{STREAM_NAME} never reads"
                    f" '{stream_param}.{missing}' but {COLUMNS_NAME}"
                    f" does; the reference path is missing behaviour",
                    symbol=STREAM_NAME,
                )
