"""R006 — batch kernel contract.

The batch dispatch (:func:`repro.kernels.try_run_batch`) drives a
predictor through a two-phase protocol: ``predict_batch`` plans the whole
stream, ``update_batch`` commits the planned end state, and the class
attribute ``supports_batch`` advertises the pair to the dispatcher.  The
three are one contract — a class with only ``predict_batch`` crashes at
commit time, and one without ``supports_batch`` silently never takes the
fast path (the worst failure mode: everything still *works*, just at
scalar speed, and no test notices).

This rule requires any class defining one side of the contract to define
all of it: ``predict_batch`` and ``update_batch`` together, plus a
``supports_batch`` declaration in the same class body.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import Finding, ModuleInfo, Rule, register

PREDICT_NAME = "predict_batch"
UPDATE_NAME = "update_batch"
FLAG_NAME = "supports_batch"


def _method(body: list, name: str) -> Optional[ast.AST]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == name:
                return stmt
    return None


def _declares_flag(body: list) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == FLAG_NAME:
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == FLAG_NAME
            ):
                return True
    return False


@register
class BatchContractRule(Rule):
    id = "R006"
    title = "batch-contract"
    rationale = (
        "predict_batch, update_batch and supports_batch form one"
        " dispatch contract; a class defining only part of it either"
        " crashes mid-batch or silently never leaves the scalar path."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            predict = _method(node.body, PREDICT_NAME)
            update = _method(node.body, UPDATE_NAME)
            if predict is None and update is None:
                continue
            if predict is not None and update is None:
                yield self.finding(
                    module,
                    predict,
                    f"{node.name} defines {PREDICT_NAME} without"
                    f" {UPDATE_NAME}; the dispatcher commits every"
                    f" planned batch, so the pair must ship together",
                    symbol=node.name,
                )
            if update is not None and predict is None:
                yield self.finding(
                    module,
                    update,
                    f"{node.name} defines {UPDATE_NAME} without"
                    f" {PREDICT_NAME}; there is nothing to commit"
                    f" and the kernels never run",
                    symbol=node.name,
                )
            if not _declares_flag(node.body):
                yield self.finding(
                    module,
                    predict or update,
                    f"{node.name} defines batch kernels but never"
                    f" declares {FLAG_NAME}; the dispatcher checks the"
                    f" flag, so the fast path silently never runs",
                    symbol=node.name,
                )
