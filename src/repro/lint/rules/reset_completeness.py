"""R001 — reset-completeness.

Every mutable attribute a simulator class assigns in ``__init__`` must be
re-initialized by its ``reset()`` (or ``clear()``) method.  A stale field
that survives a reset never crashes — it silently couples consecutive
runs, which is exactly how ``PipelinedPredictor.reset()`` shipped without
clearing its embedded branch predictor and flush counter (found by PR 3's
differential fuzzer after hours; found by this rule in milliseconds).

Heuristics, tuned to this repository's idiom:

* An attribute is **mutable state** when, outside ``__init__``/``reset``/
  ``clear``, the class (a) re-assigns it (plain, augmented, or through a
  subscript), or (b) calls a known mutating method on it (``append``,
  ``insert``, ``update``, ``clear``, ``get_or_insert``, ...).  Attributes
  only *read* after construction (configs, masks, derived geometry) are
  not state and impose no reset obligation.
* ``reset()`` covers an attribute by referencing it in any way — plain
  re-assignment, ``self.x.clear()``, ``self.x.reset()``, or passing it to
  a helper.  ``super().reset()`` covers inherited attributes, which this
  per-class analysis never charges for in the first place.
* A stateful class with **no** ``reset``/``clear`` at all is reported
  when it lives in the simulator packages (``predictors/``,
  ``pipeline/``, ``timing/``) or subclasses a ``*Predictor``/
  ``*Prefetcher`` base — elsewhere a missing reset is an API choice, not
  a correctness hazard.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..astutil import iter_method_defs, self_attr
from ..core import Finding, ModuleInfo, Rule, register

#: Method names whose *receiver* is considered mutated by the call.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "get_or_insert",
        "record",
        "push",
        # Repo-specific: table lookups advance LRU/statistics state, a
        # cache access fills lines, a prefetcher observation trains tables.
        "lookup",
        "access",
        "observe",
    }
)

#: Method names accepted as the "forget everything" entry point.
RESET_NAMES = ("reset", "clear")

#: Packages whose stateful classes *must* expose a reset entry point.
STATEFUL_PACKAGES = ("predictors", "pipeline", "timing")

#: Base-class name fragments that mark a class as simulator state even
#: outside the packages above (fixtures and future packages).
STATEFUL_BASES = ("Predictor", "Prefetcher")


def _assigned_attrs(method: ast.FunctionDef) -> Dict[str, int]:
    """``self.X`` attributes assigned anywhere in ``method`` -> line."""
    attrs: Dict[str, int] = {}
    for node in ast.walk(method):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            name = self_attr(target)
            if name is not None and name not in attrs:
                attrs[name] = target.lineno
    return attrs


def _mutated_attrs(method: ast.FunctionDef) -> Set[str]:
    """Attributes of ``self`` this method mutates (writes or mutating calls)."""
    mutated: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                mutated.update(_mutation_targets(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            mutated.update(_mutation_targets(node.target))
        elif isinstance(node, ast.Call):
            mutated.update(_mutating_call_receiver(node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = self_attr(target)
                if name is not None:
                    mutated.add(name)
    return mutated


def _mutation_targets(target: ast.AST) -> Set[str]:
    """Self attributes written by an assignment target.

    Handles ``self.x = ...``, ``self.x[i] = ...`` and tuple unpacking.
    """
    found: Set[str] = set()
    name = self_attr(target)
    if name is not None:
        found.add(name)
        return found
    if isinstance(target, ast.Subscript):
        name = self_attr(target.value)
        if name is not None:
            found.add(name)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            found.update(_mutation_targets(element))
    return found


def _mutating_call_receiver(call: ast.Call) -> Set[str]:
    """``{"x"}`` for ``self.x.append(...)``-shaped calls, possibly nested
    (``self.x.y.record(...)`` charges ``x``: mutating a sub-object means
    the root attribute holds run-dependent state)."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
        return set()
    receiver = func.value
    while isinstance(receiver, ast.Attribute):
        name = self_attr(receiver)
        if name is not None:
            return {name}
        receiver = receiver.value
    return set()


def _referenced_attrs(method: ast.FunctionDef) -> Set[str]:
    """Every ``self.X`` mentioned anywhere in ``method``."""
    referenced: Set[str] = set()
    for node in ast.walk(method):
        name = self_attr(node)
        if name is not None:
            referenced.add(name)
    return referenced


def _base_names(class_def: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in class_def.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


@register
class ResetCompletenessRule(Rule):
    id = "R001"
    title = "reset-completeness"
    rationale = (
        "Mutable state assigned in __init__ but not re-initialized in"
        " reset() couples consecutive simulator runs — the"
        " PipelinedPredictor.reset() bug class."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {m.name: m for m in iter_method_defs(class_def)}
        init = methods.get("__init__")
        if init is None:
            return  # dataclasses / pure-namespace classes: out of scope

        init_attrs = _assigned_attrs(init)
        reset: Optional[ast.FunctionDef] = None
        for name in RESET_NAMES:
            if name in methods:
                reset = methods[name]
                break

        # Attributes mutated after construction, by any method other than
        # __init__ and the reset entry point itself.
        mutated: Set[str] = set()
        for name, method in methods.items():
            if name == "__init__" or (reset is not None and name == reset.name):
                continue
            mutated.update(_mutated_attrs(method))
        stateful = sorted(mutated & set(init_attrs))
        if not stateful:
            return

        if reset is None:
            if module.in_package(*STATEFUL_PACKAGES) or any(
                any(fragment in base for fragment in STATEFUL_BASES)
                for base in _base_names(class_def)
            ):
                yield self.finding(
                    module,
                    class_def,
                    f"stateful class defines no reset()/clear():"
                    f" mutable attribute(s) {', '.join(stateful)} would"
                    f" leak across runs",
                    symbol=class_def.name,
                )
            return

        covered = _referenced_attrs(reset)
        missing = [name for name in stateful if name not in covered]
        if missing:
            yield self.finding(
                module,
                reset,
                f"{reset.name}() does not re-initialize mutable"
                f" attribute(s) {', '.join(missing)} assigned in __init__",
                symbol=f"{class_def.name}.{reset.name}",
            )
