"""Built-in lint rules.

Importing this package registers every rule with the framework registry
(:func:`repro.lint.core.register`); the modules are otherwise
independent — each holds exactly one rule plus its private helpers.
"""

from __future__ import annotations

from .reset_completeness import ResetCompletenessRule
from .determinism import DeterminismRule
from .bitwidth import BitWidthRule
from .picklability import PicklabilityRule
from .parity import StreamColumnsParityRule
from .batch_contract import BatchContractRule
from .await_atomicity import AwaitAtomicityRule
from .bitwidth_flow import BitWidthFlowRule
from .numpy_overflow import NumpyOverflowRule
from .error_hygiene import ErrorHygieneRule

__all__ = [
    "ResetCompletenessRule",
    "DeterminismRule",
    "BitWidthRule",
    "PicklabilityRule",
    "StreamColumnsParityRule",
    "BatchContractRule",
    "AwaitAtomicityRule",
    "BitWidthFlowRule",
    "NumpyOverflowRule",
    "ErrorHygieneRule",
]
