"""Built-in lint rules.

Importing this package registers every rule with the framework registry
(:func:`repro.lint.core.register`); the modules are otherwise
independent — each holds exactly one rule plus its private helpers.
"""

from __future__ import annotations

from .reset_completeness import ResetCompletenessRule
from .determinism import DeterminismRule
from .bitwidth import BitWidthRule
from .picklability import PicklabilityRule
from .parity import StreamColumnsParityRule
from .batch_contract import BatchContractRule

__all__ = [
    "ResetCompletenessRule",
    "DeterminismRule",
    "BitWidthRule",
    "PicklabilityRule",
    "StreamColumnsParityRule",
    "BatchContractRule",
]
