"""R007 — await-atomicity (check-then-act races in the serving layer).

An asyncio handler that reads shared object state, awaits, and then
writes that state based on the stale read has a classic check-then-act
race: another handler runs during the suspension, the invariant the
read established no longer holds, and the write commits a decision made
against a dead snapshot.  The serving layer's admission control is the
canonical instance — ``if self._sessions_active >= max: reject`` /
``await open()`` / ``self._sessions_active += 1`` admits more sessions
than the limit under concurrent opens.

The rule builds a CFG per async method, collects reads and writes of
each ``self.*`` attribute chain, and fires when a read→write pair over
the same chain is connected by a path that crosses a suspension point.
Two shapes are exempt:

* *Compensation* — a write in an ``except``/``finally`` block of a
  ``try`` whose body awaits.  Rolling back a reservation after the
  awaited action failed is the fix for the race, not an instance of it.
* *Atomic read-modify-write* — an augmented assignment reads and writes
  in one statement; only pairs spanning distinct statements race.

The same module also polices the multiprocessing boundary: a function
handed to ``multiprocessing.Process(target=...)`` runs on a *copy* of
its arguments, so writes to attributes of parameter objects mutate
process-local state the parent never sees.  Such writes are silent
no-ops at best and split-brain state at worst.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..core import Finding, ModuleInfo, Rule, TraceStep, register
from ..flow import build_cfg
from ..flow.cfg import CFG
from ..flow.dataflow import AttributeEvent, attribute_events

#: Packages whose async handlers share mutable state across awaits.
SCOPED_PACKAGES = ("serve", "obs")

#: Attribute chains that are synchronisation primitives themselves, or
#: documented single-writer structures — not check-then-act hazards.
EXEMPT_TAILS = frozenset({"_lock", "_cond", "_loop", "_queue"})


def _chain_label(location: Tuple[str, ...]) -> str:
    return ".".join(location)


def _async_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AsyncFunctionDef, str]]:
    """Every async def with its qualifying symbol (Class.method)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        owner = getattr(node, "_lint_parent", None)
        if isinstance(owner, ast.ClassDef):
            yield node, f"{owner.name}.{node.name}"
        else:
            yield node, node.name


def _process_targets(tree: ast.AST) -> Set[str]:
    """Names passed as ``target=`` to a Process/Thread-like constructor."""
    targets: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        tail = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        if tail != "Process":
            continue
        for keyword in node.keywords:
            if keyword.arg == "target" and isinstance(
                keyword.value, ast.Name
            ):
                targets.add(keyword.value.id)
    return targets


@register
class AwaitAtomicityRule(Rule):
    id = "R007"
    title = "await-atomicity"
    rationale = (
        "Reading shared state, awaiting, then writing it commits a"
        " decision made against a stale snapshot — concurrent handlers"
        " interleave at every await, so reservations must happen before"
        " suspension (with compensation on failure), not after."
    )
    needs_project = True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPED_PACKAGES):
            return
        yield from self._check_async_races(module)
        yield from self._check_process_targets(module)

    # -- async check-then-act --------------------------------------------

    def _check_async_races(self, module: ModuleInfo) -> Iterator[Finding]:
        for func, symbol in _async_functions(module.tree):
            cfg = build_cfg(func)
            if not cfg.suspending_nodes():
                continue
            events = attribute_events(cfg, roots={"self"})
            reported: Set[Tuple[str, ...]] = set()
            for location in sorted({e.location for e in events}):
                if location in reported:
                    continue
                if location[-1] in EXEMPT_TAILS:
                    continue
                finding = self._race_for_location(
                    module, cfg, events, location, symbol
                )
                if finding is not None:
                    reported.add(location)
                    yield finding

    def _race_for_location(
        self,
        module: ModuleInfo,
        cfg: CFG,
        events: List[AttributeEvent],
        location: Tuple[str, ...],
        symbol: str,
    ) -> Optional[Finding]:
        reads = [
            e for e in events
            if e.location == location and e.kind == "read"
        ]
        writes = [
            e for e in events
            if e.location == location and e.kind in ("write", "readwrite")
        ]
        for read in sorted(reads, key=lambda e: e.line):
            for write in sorted(writes, key=lambda e: e.line):
                if read.statement is write.statement:
                    continue
                if cfg.in_handler_of_suspending_try(write.statement):
                    continue  # compensation after a failed await
                path = cfg.path_crosses_suspension(
                    read.statement, write.statement
                )
                if path is None:
                    continue
                label = _chain_label(location)
                suspend_lines = [
                    node.line for node in path if node.suspends
                ]
                trace = [
                    TraceStep(read.line, f"read of {label} (the check)"),
                ]
                trace.extend(
                    TraceStep(
                        line,
                        "suspension point — other handlers run here",
                    )
                    for line in suspend_lines
                )
                trace.append(
                    TraceStep(write.line, f"write of {label} (the act)")
                )
                return self.finding(
                    module,
                    write.node,
                    f"'{label}' is read at line {read.line} and written"
                    f" at line {write.line} with an await in between"
                    f" (line {suspend_lines[0]}); the value checked is"
                    f" stale when the write commits — reserve before the"
                    f" await and compensate in the except path instead",
                    symbol=symbol,
                    trace=trace,
                )
        return None

    # -- cross-process mutation ------------------------------------------

    def _check_process_targets(
        self, module: ModuleInfo
    ) -> Iterator[Finding]:
        worker_names = _process_targets(module.tree)
        if not worker_names:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in worker_names:
                continue
            params = {
                arg.arg
                for arg in node.args.posonlyargs
                + node.args.args
                + node.args.kwonlyargs
            }
            cfg = build_cfg(node)
            for event in attribute_events(cfg, roots=params):
                if event.kind not in ("write", "readwrite"):
                    continue
                label = _chain_label(event.location)
                yield self.finding(
                    module,
                    event.node,
                    f"worker-process function mutates '{label}': the"
                    f" child runs on a pickled copy of its arguments,"
                    f" so this write never reaches the parent — pass"
                    f" results through the queue instead",
                    symbol=node.name,
                    trace=[
                        TraceStep(
                            node.lineno,
                            f"'{node.name}' is a Process target"
                            f" (separate address space)",
                        ),
                        TraceStep(event.line, f"write of {label}"),
                    ],
                )