"""R008 — bit-width hygiene, dataflow edition.

R003 decides "is this address math?" by scanning the *statement* for
address-like identifiers.  That heuristic has a blind spot the size of
a rename: ``cursor = addr`` launders the value into a name the filter
never matches, and every unmasked ``cursor + stride`` after that is
invisible.  R008 closes the gap by tracking the address *property*
through the dataflow instead of the spelling:

* **Sources** are where naming is trustworthy: parameters and attribute
  loads whose identifier matches the address vocabulary (``addr``,
  ``history``, ``tag`` ... minus the geometry/statistics vocabulary).
* **Propagation** follows reaching definitions: a local is address-
  tainted when any definition that reaches one of its uses assigns an
  address-tainted expression.  Arithmetic, conditionals and subscript
  *loads* (table cells hold field values) propagate; subscript *indices*
  and geometry-named attributes do not.
* **Across calls**: a resolved project function whose return value is
  address-tainted under its own parameters passes taint to call sites
  whose arguments are tainted.  ``bitops`` helpers mask by construction
  and stop taint.  Unresolved calls stop taint too — the rule degrades
  toward silence, never toward noise, when the call graph is partial.

A finding fires on an unmasked ``+``/``-``/``<<`` whose operand is
tainted, and carries the def→use chain that connects the operand back
to its source — the part R003 could never show.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..astutil import attr_chain
from ..core import Finding, ModuleInfo, Rule, TraceStep, register
from ..flow import local_context
from ..flow.cfg import build_cfg
from ..flow.dataflow import ReachingDefs
from ..flow.project import FunctionInfo
from .bitwidth import (
    ADDRESS_NAME_RE,
    GEOMETRY_NAME_RE,
    MASKING_CALLS,
    OVERFLOWING_OPS,
    SCOPED_PACKAGES,
    _is_masked,
)


def _is_source_name(name: str) -> bool:
    return bool(
        ADDRESS_NAME_RE.search(name)
        and not GEOMETRY_NAME_RE.search(name)
    )


class _FunctionTaint:
    """Address-taint for one function body, solved over reaching defs."""

    def __init__(
        self,
        func: ast.AST,
        returns_tainted_callees: Set[str],
    ) -> None:
        self.cfg = build_cfg(func)
        self.defs = ReachingDefs(self.cfg)
        self._tainted_callees = returns_tainted_callees
        #: Local names proven tainted (grows monotonically to fixpoint).
        self.tainted: Set[str] = {
            name for name in self.defs.params if _is_source_name(name)
        }
        self._solve()

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in self.cfg.nodes:
                statement = node.statement
                for definition in self.defs._definitions(statement):
                    if definition.name in self.tainted:
                        continue
                    if definition.value is None:
                        continue
                    if self.expr_tainted(definition.value, statement):
                        self.tainted.add(definition.name)
                        changed = True

    def expr_tainted(self, expr: ast.AST, statement: ast.stmt) -> bool:
        """Does ``expr`` (evaluated at ``statement``) carry a field value
        derived from an address-like source?"""
        if isinstance(expr, ast.Name):
            # Dataflow taint, or the name itself belongs to the address
            # vocabulary (sources are where naming is trustworthy).
            return expr.id in self.tainted or _is_source_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return _is_source_name(expr.attr)
        if isinstance(expr, ast.BinOp):
            return self.expr_tainted(
                expr.left, statement
            ) or self.expr_tainted(expr.right, statement)
        if isinstance(expr, ast.UnaryOp):
            return self.expr_tainted(expr.operand, statement)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(
                expr.body, statement
            ) or self.expr_tainted(expr.orelse, statement)
        if isinstance(expr, ast.Subscript):
            # Table cells hold field values; the index is consumed.
            return self.expr_tainted(expr.value, statement)
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain is None:
                return False
            if chain[-1] in MASKING_CALLS:
                return False  # masked by construction
            if ".".join(chain) in self._tainted_callees or chain[
                -1
            ] in self._tainted_callees:
                return any(
                    self.expr_tainted(arg, statement)
                    for arg in expr.args
                )
            return False
        return False

    def chain_trace(
        self, statement: ast.stmt, expr: ast.AST
    ) -> List[TraceStep]:
        """def→use steps connecting a tainted operand to its source."""
        name = self._first_tainted_name(expr, statement)
        steps: List[TraceStep] = []
        if name is None:
            return steps
        for definition in self.defs.chain(statement, name):
            if definition.value is None:
                note = f"'{definition.name}' enters as a parameter"
            else:
                note = f"'{definition.name}' defined here"
            steps.append(TraceStep(definition.line, note))
        steps.reverse()  # source first, use last
        return steps

    def _first_tainted_name(
        self, expr: ast.AST, statement: ast.stmt
    ) -> Optional[str]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (
                node.id in self.tainted or _is_source_name(node.id)
            ):
                return node.id
        return None


@register
class BitWidthFlowRule(Rule):
    id = "R008"
    title = "bit-width-hygiene-flow"
    rationale = (
        "Renaming an address does not unmask it: taint tracked through"
        " assignments and resolved calls catches unmasked field"
        " arithmetic that the R003 name filter cannot see."
    )
    needs_project = True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPED_PACKAGES):
            return
        tainted_callees = self._tainted_return_functions(module)
        for func, symbol in self._functions(module.tree):
            taint = _FunctionTaint(func, tainted_callees)
            if not taint.tainted:
                continue
            yield from self._check_function(module, func, symbol, taint)

    @staticmethod
    def _functions(tree: ast.AST):
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            owner = getattr(node, "_lint_parent", None)
            if isinstance(owner, ast.ClassDef):
                yield node, f"{owner.name}.{node.name}"
            else:
                yield node, node.name

    def _tainted_return_functions(self, module: ModuleInfo) -> Set[str]:
        """Names of project functions whose return value is address-
        tainted under their own parameters (interprocedural summaries;
        single-module when running unbound on a fixture)."""
        project, _ = local_context(module, self.project, self.callgraph)
        cached = getattr(self, "_summary_cache", None)
        if cached is not None and cached[0] is project:
            return cached[1]
        summaries: Set[str] = set()
        for info in project.iter_functions():
            if self._returns_tainted(info):
                summaries.add(info.name)
                summaries.add(info.qualname)
        self._summary_cache = (project, summaries)
        return summaries

    @staticmethod
    def _returns_tainted(info: FunctionInfo) -> bool:
        taint = _FunctionTaint(info.node, set())
        if not taint.tainted:
            return False
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.BinOp) and isinstance(
                    node.value.op, ast.BitAnd
                ):
                    continue  # masked at the return
                if taint.expr_tainted(node.value, node):
                    return True
        return False

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.AST,
        symbol: str,
        taint: _FunctionTaint,
    ) -> Iterator[Finding]:
        for node in taint.cfg.iter_statements():
            statement = node
            if isinstance(statement, ast.AugAssign) and isinstance(
                statement.op, OVERFLOWING_OPS
            ):
                target = statement.target
                if isinstance(target, ast.Name) and (
                    target.id in taint.tainted
                    or _is_source_name(target.id)
                ) or (
                    isinstance(target, ast.Attribute)
                    and _is_source_name(target.attr)
                ):
                    yield self.finding(
                        module,
                        statement,
                        f"augmented {type(statement.op).__name__} on"
                        f" address-tainted '{module.segment(target)}'"
                        f" without a masking '&'",
                        symbol=symbol,
                        trace=taint.chain_trace(statement, target),
                    )
                    continue
            value = self._statement_value(statement)
            if value is None:
                continue
            for op_node in ast.walk(value):
                if not isinstance(op_node, ast.BinOp):
                    continue
                if not isinstance(op_node.op, OVERFLOWING_OPS):
                    continue
                if all(
                    isinstance(operand, ast.Constant)
                    for operand in (op_node.left, op_node.right)
                ):
                    continue
                # For a left shift only the *shifted* value widens; a
                # tainted shift amount builds a one-hot mask from a
                # bounded index (`1 << pattern`), which is lookup
                # geometry, not field growth.
                if isinstance(op_node.op, ast.LShift):
                    if not taint.expr_tainted(op_node.left, statement):
                        continue
                elif not (
                    taint.expr_tainted(op_node.left, statement)
                    or taint.expr_tainted(op_node.right, statement)
                ):
                    continue
                if _is_masked(op_node, stop=statement):
                    continue
                trace = taint.chain_trace(statement, op_node)
                trace.append(
                    TraceStep(
                        getattr(op_node, "lineno", statement.lineno),
                        "unmasked arithmetic on the tainted value",
                    )
                )
                yield self.finding(
                    module,
                    op_node,
                    f"unmasked {type(op_node.op).__name__} on"
                    f" address-tainted value"
                    f" '{module.segment(op_node)}'; bound it with"
                    f" '& mask(width)' (common/bitops)",
                    symbol=symbol,
                    trace=trace,
                )

    @staticmethod
    def _statement_value(statement: ast.stmt) -> Optional[ast.AST]:
        if isinstance(statement, ast.Assign):
            return statement.value
        if isinstance(statement, ast.AnnAssign):
            return statement.value
        if isinstance(statement, ast.Return):
            return statement.value
        if isinstance(statement, ast.AugAssign):
            return statement.value
        return None
