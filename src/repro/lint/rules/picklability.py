"""R004 — engine picklability.

The parallel engine's contract (``eval/engine.py``) is that a ``Job`` is
a *spec*, not a live object: every field must survive a trip through
``pickle`` into a ``ProcessPoolExecutor`` worker.  Lambdas, closures and
classes/functions defined inside a function body are not picklable — a
``Job`` built with one works fine under ``REPRO_JOBS=1`` and then dies
(or worse, silently falls back) the first time someone runs the figure
suite with ``--jobs 4``.

The rule flags, inside any ``Job(...)`` construction:

* inline ``lambda`` expressions anywhere in the arguments;
* references to names bound to a ``def``/``class``/``lambda`` *inside
  the enclosing function* (module-level callables pickle by qualified
  name and are fine — that is exactly why the engine has a ``FACTORIES``
  registry of names instead of shipping callables).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..core import Finding, ModuleInfo, Rule, parents, register
from ..astutil import call_name

#: Constructor names treated as engine job payloads.
JOB_CONSTRUCTORS = frozenset({"Job"})


def _local_callable_names(function: ast.FunctionDef) -> Set[str]:
    """Names bound to defs/classes/lambdas in ``function``'s own body."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _enclosing_function(node: ast.AST) -> ast.FunctionDef:
    for ancestor in parents(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor  # type: ignore[return-value]
    return None  # type: ignore[return-value]


@register
class PicklabilityRule(Rule):
    id = "R004"
    title = "engine-picklability"
    rationale = (
        "Lambdas, closures and local classes in Job payloads break the"
        " moment the job crosses a ProcessPoolExecutor boundary; jobs"
        " must be built from picklable data and FACTORIES names."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in JOB_CONSTRUCTORS:
                continue
            yield from self._check_job_call(module, node)

    def _check_job_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> Iterator[Finding]:
        enclosing = _enclosing_function(call)
        local_callables = (
            _local_callable_names(enclosing) if enclosing is not None else set()
        )
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        for argument in arguments:
            for node in ast.walk(argument):
                if isinstance(node, ast.Lambda):
                    yield self.finding(
                        module,
                        node,
                        "lambda inside a Job(...) payload is not"
                        " picklable; register a factory name instead",
                    )
                elif (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in local_callables
                ):
                    yield self.finding(
                        module,
                        node,
                        f"Job(...) payload references"
                        f" function-local callable {node.id!r}, which"
                        f" cannot cross the worker-process boundary",
                    )
