"""R010 — error hygiene at the ingest boundary.

The ingest layer's error messages are part of its contract: the
conformance corpus (``tests/ingest_fixtures/expectations.json``) pins
the exact rendered text of every rejection, and support tickets quote
those messages verbatim.  The CLI's second contract is its exit status:
0 clean, 1 validation findings, 2 hard errors — scripts branch on it.
Both contracts erode silently: a new ``raise`` with an unpinned message
ships un-reviewed wording; a handler that lets a :class:`FormatError`
escape turns "exit 2 with a one-line reason" into a traceback.

Three checks:

* **Dynamic messages** — a ``FormatError``/``RegistryError`` whose
  message contains no literal fragment at all (``str(exc)``,
  a pre-built variable) cannot be pinned by any corpus and gives
  support nothing stable to grep for.
* **Unpinned messages** — when the conformance corpus is available,
  every literal fragment of a raise's message must appear in it or in
  the test suite's text.  A fragment nobody asserts on is wording
  nobody reviews.
* **Exit-code discipline** — CLI command handlers (``_cmd_*``) must
  return only the literal exit codes 0/1/2, and any call that the call
  graph proves may raise an ingest error must sit under a ``try`` that
  catches it.  Without a call graph (fixture runs) the escape check
  degrades to direct ``raise`` statements in the handler body.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from ..astutil import attr_chain
from ..core import Finding, ModuleInfo, Rule, TraceStep, register
from ..flow import local_context

#: Packages whose exception text is contract (rule scope).
SCOPED_PACKAGES = ("ingest",)

#: Exception classes whose messages the corpus pins.
PINNED_EXCEPTIONS = frozenset({"FormatError", "RegistryError"})

#: The ingest-error family a CLI handler must not leak.
INGEST_ERRORS = frozenset(
    {"IngestError", "FormatError", "RegistryError"}
)

#: Handlers that satisfy the escape check.
CATCHING_NAMES = INGEST_ERRORS | {"Exception"}

#: Legal CLI exit codes.
EXIT_CODES = (0, 1, 2)

#: Minimum literal-fragment length worth pinning (shorter fragments are
#: punctuation/glue and match everything).
_MIN_FRAGMENT = 8


def _repo_root() -> Path:
    # src/repro/lint/rules/error_hygiene.py -> repo root is 4 levels up
    # from the package directory.
    return Path(__file__).resolve().parents[4]


def _load_corpus() -> Optional[str]:
    """The pin corpus: conformance expectations plus test-suite text.

    ``None`` when the repo layout is absent (installed package, fixture
    sandbox) — the unpinned-message check degrades away then.
    """
    root = _repo_root()
    expectations = root / "tests" / "ingest_fixtures" / "expectations.json"
    if not expectations.is_file():
        return None
    parts: List[str] = []
    try:
        payload = expectations.read_text(encoding="utf-8")
        json.loads(payload)  # refuse a corrupt corpus
        parts.append(payload)
    except (OSError, ValueError):
        return None
    tests_dir = root / "tests"
    for test_file in sorted(tests_dir.glob("*.py")):
        try:
            parts.append(test_file.read_text(encoding="utf-8"))
        except OSError:  # pragma: no cover - racing file removal
            continue
    return "\n".join(parts)


def _literal_fragments(message: ast.AST) -> Optional[List[str]]:
    """Literal string fragments of an exception-message expression.

    ``None`` means "not a message shape we understand" (the dynamic-
    message check handles it); an empty list means "understood, but no
    literal content".
    """
    if isinstance(message, ast.Constant):
        if isinstance(message.value, str):
            return [message.value]
        return None
    if isinstance(message, ast.JoinedStr):
        return [
            part.value
            for part in message.values
            if isinstance(part, ast.Constant)
            and isinstance(part.value, str)
        ]
    if isinstance(message, ast.BinOp) and isinstance(
        message.op, (ast.Mod, ast.Add)
    ):
        left = _literal_fragments(message.left)
        right = _literal_fragments(message.right)
        fragments: List[str] = []
        for side in (left, right):
            if side:
                fragments.extend(side)
        return fragments
    if isinstance(message, ast.Call):
        func_chain = attr_chain(message.func)
        if func_chain is not None and func_chain[-1] == "format":
            # "template {}".format(...) — literal template is the
            # receiver of the .format call.
            receiver = message.func
            if isinstance(receiver, ast.Attribute):
                return _literal_fragments(receiver.value)
    return []


@register
class ErrorHygieneRule(Rule):
    id = "R010"
    title = "ingest-error-hygiene"
    rationale = (
        "Ingest error messages are pinned contract text and CLI exit"
        " codes are a scripted interface: unpinned or dynamic messages"
        " ship un-reviewed wording, and a leaked exception turns a"
        " documented exit 2 into a traceback."
    )
    needs_project = True

    #: Class-level cache: the corpus is immutable within one process.
    _corpus_cache: Tuple[bool, Optional[str]] = (False, None)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPED_PACKAGES):
            return
        yield from self._check_messages(module)
        if module.relpath.endswith("cli.py"):
            yield from self._check_cli_handlers(module)

    # -- message pinning -------------------------------------------------

    @classmethod
    def _corpus(cls) -> Optional[str]:
        loaded, corpus = cls._corpus_cache
        if not loaded:
            corpus = _load_corpus()
            cls._corpus_cache = (True, corpus)
        return corpus

    def _check_messages(self, module: ModuleInfo) -> Iterator[Finding]:
        corpus = self._corpus()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue
            chain = attr_chain(exc.func)
            if chain is None or chain[-1] not in PINNED_EXCEPTIONS:
                continue
            if not exc.args:
                continue
            message = exc.args[0]
            fragments = _literal_fragments(message)
            if fragments is not None and not any(
                fragment.strip() for fragment in fragments
            ):
                yield self.finding(
                    module,
                    node,
                    f"{chain[-1]} message is fully dynamic"
                    f" ('{module.segment(message)}'): nothing stable"
                    f" for the conformance corpus to pin — lead with a"
                    f" literal fragment describing the failure",
                    trace=[
                        TraceStep(
                            node.lineno,
                            "raise site with no literal message text",
                        )
                    ],
                )
                continue
            if corpus is None or not fragments:
                continue
            for fragment in fragments:
                text = fragment.strip()
                if len(text) < _MIN_FRAGMENT:
                    continue
                if text not in corpus:
                    yield self.finding(
                        module,
                        node,
                        f"{chain[-1]} message fragment {text!r} is not"
                        f" pinned by the conformance corpus or any"
                        f" test — add an expectation before shipping"
                        f" new contract wording",
                        trace=[
                            TraceStep(
                                node.lineno,
                                f"unpinned fragment: {text!r}",
                            )
                        ],
                    )

    # -- CLI exit-code discipline ----------------------------------------

    def _check_cli_handlers(self, module: ModuleInfo) -> Iterator[Finding]:
        project, graph = local_context(
            module, self.project, self.callgraph
        )
        module_name = project.module_of(module)
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("_cmd_"):
                continue
            yield from self._check_returns(module, node)
            yield from self._check_escapes(
                module, node, project, graph, module_name
            )

    def _check_returns(
        self, module: ModuleInfo, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Return):
                continue
            value = node.value
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
                and value.value in EXIT_CODES
            ):
                continue
            yield self.finding(
                module,
                node,
                f"CLI handler '{func.name}' must return a literal exit"
                f" code 0/1/2, not '{module.segment(node)}' — scripts"
                f" branch on these values",
                symbol=func.name,
            )

    def _check_escapes(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef,
        project,
        graph,
        module_name: str,
    ) -> Iterator[Finding]:
        caller_info = project.function(module_name, func.name)
        for node in ast.walk(func):
            raising: Set[str] = set()
            anchor: ast.AST = node
            if isinstance(node, ast.Raise):
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                exc_chain = attr_chain(exc) if exc is not None else None
                if exc_chain and exc_chain[-1] in INGEST_ERRORS:
                    raising = {exc_chain[-1]}
            elif isinstance(node, ast.Call) and caller_info is not None:
                callee = graph.resolve_call(caller_info, node)
                if callee is not None:
                    raising = graph.raises(callee) & INGEST_ERRORS
            if not raising:
                continue
            if self._guarded(node, func):
                continue
            names = ", ".join(sorted(raising))
            yield self.finding(
                module,
                anchor,
                f"'{module.segment(node.func) if isinstance(node, ast.Call) else 'raise'}'"
                f" may raise {names} outside any try/except in CLI"
                f" handler '{func.name}': the error escapes as a"
                f" traceback instead of the documented exit code 2",
                symbol=func.name,
                trace=[
                    TraceStep(
                        node.lineno,
                        f"may raise {names} (call-graph summary)",
                    )
                ],
            )

    @staticmethod
    def _guarded(node: ast.AST, func: ast.FunctionDef) -> bool:
        """Is ``node`` inside the *body* of a Try (within ``func``)
        whose handlers catch the ingest-error family?"""
        current = getattr(node, "_lint_parent", None)
        while current is not None and current is not func:
            if isinstance(current, ast.Try) and ErrorHygieneRule._within(
                current.body, node
            ):
                if any(
                    ErrorHygieneRule._catches(handler)
                    for handler in current.handlers
                ):
                    return True
            current = getattr(current, "_lint_parent", None)
        return False

    @staticmethod
    def _within(body: List[ast.stmt], node: ast.AST) -> bool:
        for statement in body:
            for child in ast.walk(statement):
                if child is node:
                    return True
        return False

    @staticmethod
    def _catches(handler: ast.ExceptHandler) -> bool:
        spec = handler.type
        if spec is None:
            return True  # bare except
        names: List[str] = []
        if isinstance(spec, ast.Tuple):
            elements = spec.elts
        else:
            elements = [spec]
        for element in elements:
            chain = attr_chain(element)
            if chain:
                names.append(chain[-1])
        return any(name in CATCHING_NAMES for name in names)
