"""R003 — bit-width hygiene.

Every predictor structure models a fixed-width hardware field: 32-bit
addresses, ``history_bits``-wide histories, ``tag_bits``-wide tags.
Python integers are unbounded, so the repo's convention (see
``common/bitops.py``) is that *all* arithmetic on such fields is masked
at the point it is produced — ``(base + stride) & _MASK32``,
``((history << shift) ^ subset) & self._mask``.  An unmasked add or
shift never crashes; it grows an unbounded integer that indexes tables
differently from hardware (LDBP and PCAX build on exactly these per-PC
tables — unmasked arithmetic quietly diverges from their semantics).

The rule scans the packages that model hardware fields —
``predictors/``, ``pipeline/``, ``timing/`` and ``common/`` (workload
generators and the functional ISA build addresses under allocator
bounds, where Python-int semantics are the design).  Within a statement
that mentions an address-like identifier (``addr``, ``address``,
``base``, ``history``, ``tag``, ``link``, ``ghr``, ``stride``,
``delta``, ``offset``), every ``+``/``-``/``<<`` operation must sit
under a masking context: a ``& mask`` ancestor, a call to one of the
``bitops`` helpers (``mask``, ``truncate``, ``low_bits``, ``bits``,
``fold_xor``, ``sign_extend``...), a modulo, or a comparison (computing
a *predicate* from a difference is fine; *storing* the difference
unmasked is not).  Identifiers that name geometry or statistics rather
than field values (``tag_bits``, ``link_writes``, ``tag_mismatches``,
``history_length``...) are filtered out before the match, so counters
and configuration arithmetic never fire.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

from ..astutil import attr_chain
from ..core import Finding, ModuleInfo, Rule, parents, register

#: Identifier fragments that mark a statement as address/history/tag math.
ADDRESS_NAME_RE = re.compile(
    r"(?:\b|_)(addr|address|base|history|hist|tag|link|ghr|stride|delta"
    r"|offset)(?:\b|_)",
    re.IGNORECASE,
)

#: Identifier fragments that mark *geometry or statistics*, not field
#: values — an identifier containing one of these never qualifies a
#: statement for the rule (``tag_bits`` is a width, ``link_writes`` is a
#: counter, ``history_length`` is a knob).
GEOMETRY_NAME_RE = re.compile(
    r"(bits|width|length|size|entries|ways|shift|mask|mode|policy|stats"
    r"|count|counter|writes|mismatch|reject|lookup|rate|depth|table|fn)",
    re.IGNORECASE,
)

#: bitops helpers whose arguments are masked by construction.
MASKING_CALLS = frozenset(
    {
        "mask",
        "truncate",
        "low_bits",
        "high_bits",
        "bits",
        "bit_slice",
        "fold_xor",
        "sign_extend",
        "base_of",
        "addr_of",
        "min",
        "max",
        "len",
        "range",
        "abs",
    }
)

#: Packages modelling fixed-width hardware fields (rule scope).
SCOPED_PACKAGES = ("predictors", "pipeline", "timing", "common")

#: Arithmetic operators that can overflow a fixed-width field.
OVERFLOWING_OPS = (ast.Add, ast.Sub, ast.LShift)


def _identifier_names(node: ast.AST) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _is_masked(node: ast.BinOp, stop: ast.AST) -> bool:
    """Is this arithmetic node dominated by a masking context?

    Walk ancestors up to (and excluding) ``stop``: a ``& ...`` / ``% ...``
    BinOp, a call to a masking helper, or a comparison all bound the
    value's width (comparisons *consume* it as a predicate instead).
    """
    for ancestor in parents(node):
        if ancestor is stop:
            return False
        if isinstance(ancestor, ast.BinOp) and isinstance(
            ancestor.op, (ast.BitAnd, ast.Mod)
        ):
            return True
        if isinstance(ancestor, ast.Compare):
            return True
        if isinstance(ancestor, ast.Call):
            chain = attr_chain(ancestor.func)
            if chain is not None and chain[-1] in MASKING_CALLS:
                return True
        if isinstance(ancestor, (ast.stmt, ast.Lambda)):
            return False
    return False


def _statement_value(
    statement: ast.stmt,
) -> Optional[Tuple[ast.AST, ast.AST]]:
    """(value expression, context node used for the name filter)."""
    if isinstance(statement, ast.Assign):
        return statement.value, statement
    if isinstance(statement, ast.AnnAssign) and statement.value is not None:
        return statement.value, statement
    if isinstance(statement, ast.AugAssign):
        return statement.value, statement
    if isinstance(statement, ast.Return) and statement.value is not None:
        return statement.value, statement
    return None


@register
class BitWidthRule(Rule):
    id = "R003"
    title = "bit-width-hygiene"
    rationale = (
        "Unmasked address/history/tag arithmetic grows unbounded Python"
        " integers that index tables differently from the fixed-width"
        " hardware fields the paper models."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SCOPED_PACKAGES):
            return
        for statement in ast.walk(module.tree):
            if not isinstance(statement, ast.stmt):
                continue
            extracted = _statement_value(statement)
            if extracted is None:
                continue
            value, context = extracted
            if not any(
                ADDRESS_NAME_RE.search(name)
                and not GEOMETRY_NAME_RE.search(name)
                for name in _identifier_names(context)
            ):
                continue
            # AugAssign of +1-style counters on matched names (pending,
            # run_length...) never match the filter; a matched AugAssign
            # like `history <<= 1` has its *operation* outside the value
            # expression, so check it directly.
            if isinstance(statement, ast.AugAssign) and isinstance(
                statement.op, OVERFLOWING_OPS
            ):
                yield self.finding(
                    module,
                    statement,
                    f"augmented {type(statement.op).__name__} on an"
                    f" address-like field without a masking '&'",
                )
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, OVERFLOWING_OPS
                ):
                    if self._trivial(node):
                        continue
                    if not _is_masked(node, stop=statement):
                        yield self.finding(
                            module,
                            node,
                            f"unmasked {type(node.op).__name__} on"
                            f" address-like value"
                            f" '{module.segment(node)}'; bound it with"
                            f" '& mask(width)' (common/bitops)",
                        )

    @staticmethod
    def _trivial(node: ast.BinOp) -> bool:
        """Constant-only arithmetic (``1 << 4``, ``8 - 2``) is geometry,
        not field math, and cannot grow run-dependent values."""
        return all(
            isinstance(operand, ast.Constant)
            for operand in (node.left, node.right)
        )
