"""Dynamic instruction traces: event encoding, storage, statistics."""

from .event import (
    KIND_ALU,
    KIND_BRANCH,
    KIND_CALL,
    KIND_JUMP,
    KIND_LOAD,
    KIND_NAMES,
    KIND_RET,
    KIND_STORE,
    LOAD_KINDS,
    STORE_KINDS,
    LoadEvent,
    TraceEvent,
)
from .trace import Trace, TraceSummary

__all__ = [
    "KIND_ALU",
    "KIND_BRANCH",
    "KIND_CALL",
    "KIND_JUMP",
    "KIND_LOAD",
    "KIND_NAMES",
    "KIND_RET",
    "KIND_STORE",
    "LOAD_KINDS",
    "STORE_KINDS",
    "LoadEvent",
    "TraceEvent",
    "Trace",
    "TraceSummary",
]
