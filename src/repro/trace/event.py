"""Trace event encoding.

Traces are stored column-wise (parallel lists of ints) for compactness and
speed; this module defines the event-kind codes, a tuple-of-columns schema,
and small record views used at API boundaries.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "KIND_ALU",
    "KIND_LOAD",
    "KIND_STORE",
    "KIND_BRANCH",
    "KIND_JUMP",
    "KIND_CALL",
    "KIND_RET",
    "KIND_NAMES",
    "LOAD_KINDS",
    "STORE_KINDS",
    "LoadEvent",
    "TraceEvent",
]

#: Arithmetic / logic / move / nop — no memory or control side effects.
KIND_ALU = 0
#: Explicit loads (``ld``) and ``pop``.
KIND_LOAD = 1
#: Explicit stores (``st``) and ``push``.
KIND_STORE = 2
#: Conditional branch (updates the global branch-history register).
KIND_BRANCH = 3
#: Unconditional direct/indirect jump.
KIND_JUMP = 4
#: Call — stores the return address (a memory write).
KIND_CALL = 5
#: Return — loads the return address (a memory read).
KIND_RET = 6

KIND_NAMES = {
    KIND_ALU: "alu",
    KIND_LOAD: "load",
    KIND_STORE: "store",
    KIND_BRANCH: "branch",
    KIND_JUMP: "jump",
    KIND_CALL: "call",
    KIND_RET: "ret",
}

#: Kinds whose events read memory.  Returns pop the return address off the
#: stack, so the address predictors see them exactly as IA-32 predictors see
#: ``ret`` micro-ops.
LOAD_KINDS = frozenset({KIND_LOAD, KIND_RET})
#: Kinds whose events write memory.
STORE_KINDS = frozenset({KIND_STORE, KIND_CALL})


class LoadEvent(NamedTuple):
    """One dynamic load as seen by an address predictor.

    Attributes
    ----------
    ip:
        Instruction pointer of the static load.
    addr:
        Effective (virtual) address actually accessed.
    offset:
        The load's immediate offset, as encoded in the instruction.  CAP's
        base-address scheme subtracts (the low bits of) this from ``addr``.
    """

    ip: int
    addr: int
    offset: int


class TraceEvent(NamedTuple):
    """A fully decoded dynamic instruction (row view over the columns)."""

    index: int
    kind: int
    ip: int
    addr: int        # effective address for memory ops, else 0
    offset: int      # immediate offset for memory ops, else 0
    dst: int         # destination register or -1
    src1: int        # first source register or -1
    src2: int        # second source register or -1
    taken: int       # 1 if a taken branch/jump, else 0
    value: int = 0   # data moved by loads/stores (value prediction)

    @property
    def is_load(self) -> bool:
        return self.kind in LOAD_KINDS

    @property
    def is_store(self) -> bool:
        return self.kind in STORE_KINDS

    @property
    def is_branch(self) -> bool:
        return self.kind == KIND_BRANCH

    @property
    def kind_name(self) -> str:
        return KIND_NAMES[self.kind]
