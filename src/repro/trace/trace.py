"""Column-oriented dynamic instruction traces.

A :class:`Trace` is what the functional CPU produces and what every
predictor, pipeline model and timing model consumes.  Events live in
parallel Python lists (one per column) with numpy used only for (de-)
serialisation; this keeps the hot recording path allocation-free apart from
list appends.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

import numpy as np

from .event import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_NAMES,
    KIND_RET,
    LOAD_KINDS,
    STORE_KINDS,
    LoadEvent,
    TraceEvent,
)

__all__ = ["Trace", "TraceSummary"]

_COLUMNS = (
    "kind", "ip", "addr", "offset", "dst", "src1", "src2", "taken", "value",
)


@dataclass
class TraceSummary:
    """Aggregate statistics of one trace."""

    name: str
    instructions: int
    loads: int
    stores: int
    branches: int
    taken_branches: int
    static_loads: int
    kind_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def load_fraction(self) -> float:
        """Loads as a share of all instructions."""
        return self.loads / self.instructions if self.instructions else 0.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.instructions} instr, {self.loads} loads"
            f" ({self.load_fraction:.1%}), {self.static_loads} static loads,"
            f" {self.branches} branches"
        )


class Trace:
    """An executed instruction stream with metadata.

    Columns (all parallel, one entry per dynamic instruction):

    ``kind``   event kind code (:mod:`repro.trace.event`)
    ``ip``     instruction pointer
    ``addr``   effective address (memory ops) else 0
    ``offset`` immediate offset (memory ops) else 0
    ``dst``    destination register or -1
    ``src1``   first source register or -1
    ``src2``   second source register or -1
    ``taken``  1 when a branch/jump was taken
    ``value``  data value moved by a load/store (for value-prediction
               studies), else 0
    """

    def __init__(self, name: str = "", meta: Optional[dict] = None) -> None:
        self.name = name
        self.meta: dict = dict(meta or {})
        self.kind: List[int] = []
        self.ip: List[int] = []
        self.addr: List[int] = []
        self.offset: List[int] = []
        self.dst: List[int] = []
        self.src1: List[int] = []
        self.src2: List[int] = []
        self.taken: List[int] = []
        self.value: List[int] = []

    # -- recording (used by the CPU) ---------------------------------------

    def append(
        self,
        kind: int,
        ip: int,
        addr: int = 0,
        offset: int = 0,
        dst: int = -1,
        src1: int = -1,
        src2: int = -1,
        taken: int = 0,
        value: int = 0,
    ) -> None:
        """Record one dynamic instruction."""
        self.kind.append(kind)
        self.ip.append(ip)
        self.addr.append(addr)
        self.offset.append(offset)
        self.dst.append(dst)
        self.src1.append(src1)
        self.src2.append(src2)
        self.taken.append(taken)
        self.value.append(value)

    def extend(self, other: "Trace") -> None:
        """Concatenate another trace's events onto this one."""
        for col in _COLUMNS:
            getattr(self, col).extend(getattr(other, col))

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kind)

    def __getitem__(self, index: int) -> TraceEvent:
        return TraceEvent(
            index=index,
            kind=self.kind[index],
            ip=self.ip[index],
            addr=self.addr[index],
            offset=self.offset[index],
            dst=self.dst[index],
            src1=self.src1[index],
            src2=self.src2[index],
            taken=self.taken[index],
            value=self.value[index],
        )

    def events(self) -> Iterator[TraceEvent]:
        """Iterate all events as :class:`TraceEvent` rows."""
        for index in range(len(self)):
            yield self[index]

    def loads(self) -> Iterator[LoadEvent]:
        """Iterate just the dynamic loads."""
        kinds = self.kind
        ips = self.ip
        addrs = self.addr
        offsets = self.offset
        for i in range(len(kinds)):
            if kinds[i] in LOAD_KINDS:
                yield LoadEvent(ips[i], addrs[i], offsets[i])

    def predictor_stream(self) -> List[tuple]:
        """Compact stream for predictor evaluation.

        Returns a list of tuples in program order:

        * ``(1, ip, addr, offset)`` for each dynamic load,
        * ``(0, ip, taken, 0)``     for each conditional branch (GHR food),
        * ``(2, ip, 0, 0)``         for each call (call-path history food),
        * ``(3, ip, 0, 0)``         for each return.

        A ``ret`` both loads its return address and pops the call path, so
        it contributes a load tuple followed by a return marker.  Events the
        address predictors never observe (plain ALU ops, stores) are
        dropped.
        """
        stream: List[tuple] = []
        kinds = self.kind
        ips = self.ip
        addrs = self.addr
        offsets = self.offset
        takens = self.taken
        load_kinds = LOAD_KINDS
        for i in range(len(kinds)):
            k = kinds[i]
            if k in load_kinds:
                stream.append((1, ips[i], addrs[i], offsets[i]))
                if k == KIND_RET:
                    stream.append((3, ips[i], 0, 0))
            elif k == KIND_BRANCH:
                stream.append((0, ips[i], takens[i], 0))
            elif k == KIND_CALL:
                stream.append((2, ips[i], 0, 0))
        return stream

    def value_stream(self) -> List[tuple]:
        """Per-load ``(ip, loaded_value)`` pairs, for value prediction.

        The paper (Section 1) contrasts load-address prediction with load-
        *value* prediction ("its lower predictability makes this option
        less attractive"); this stream feeds that comparison.
        """
        pairs: List[tuple] = []
        kinds = self.kind
        ips = self.ip
        values = self.value
        load_kinds = LOAD_KINDS
        for i in range(len(kinds)):
            if kinds[i] in load_kinds:
                pairs.append((ips[i], values[i]))
        return pairs

    # -- statistics ----------------------------------------------------------

    def summary(self) -> TraceSummary:
        """Compute aggregate statistics."""
        kind_counts: Dict[str, int] = {}
        loads = stores = branches = taken_branches = 0
        static_loads = set()
        for i, k in enumerate(self.kind):
            kind_counts[KIND_NAMES[k]] = kind_counts.get(KIND_NAMES[k], 0) + 1
            if k in LOAD_KINDS:
                loads += 1
                static_loads.add(self.ip[i])
            elif k in STORE_KINDS:
                stores += 1
            elif k == KIND_BRANCH:
                branches += 1
                taken_branches += self.taken[i]
        return TraceSummary(
            name=self.name,
            instructions=len(self),
            loads=loads,
            stores=stores,
            branches=branches,
            taken_branches=taken_branches,
            static_loads=len(static_loads),
            kind_counts=kind_counts,
        )

    # -- persistence -----------------------------------------------------------

    def save(self, path: "Path | str") -> None:
        """Serialise to a compressed ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {
            col: np.asarray(getattr(self, col), dtype=np.int64)
            for col in _COLUMNS
        }
        header = json.dumps({"name": self.name, "meta": self.meta})
        np.savez_compressed(
            path, header=np.frombuffer(header.encode(), dtype=np.uint8),
            **arrays,
        )

    @classmethod
    def load(cls, path: "Path | str") -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode())
            trace = cls(name=header.get("name", ""), meta=header.get("meta", {}))
            for col in _COLUMNS:
                if col in data:
                    setattr(trace, col, data[col].tolist())
                else:  # older cache files lack the value column
                    setattr(trace, col, [0] * len(data["kind"]))
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace(name={self.name!r}, events={len(self)})"
