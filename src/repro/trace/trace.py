"""Column-oriented dynamic instruction traces.

A :class:`Trace` is what the functional CPU produces and what every
predictor, pipeline model and timing model consumes.  Events live in
parallel Python lists (one per column) with numpy used only for (de-)
serialisation; this keeps the hot recording path allocation-free apart from
list appends.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .event import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_NAMES,
    KIND_RET,
    LOAD_KINDS,
    STORE_KINDS,
    LoadEvent,
    TraceEvent,
)

__all__ = ["PredictorStream", "Trace", "TraceSummary"]

_COLUMNS = (
    "kind", "ip", "addr", "offset", "dst", "src1", "src2", "taken", "value",
)

#: Serialised names of the derived predictor-stream columns (``.npz`` keys).
_STREAM_COLUMNS = ("ps_tag", "ps_ip", "ps_a", "ps_b")


class PredictorStream:
    """Columnar predictor-visible event stream.

    Four parallel lists, one entry per predictor-visible event in program
    order, carrying the same ``(tag, ip, a, b)`` quadruples that
    :meth:`Trace.predictor_stream` packs into tuples:

    * ``(1, ip, addr, offset)`` for each dynamic load,
    * ``(0, ip, taken, 0)``     for each conditional branch,
    * ``(2, ip, 0, 0)``         for each call,
    * ``(3, ip, 0, 0)``         for each return.

    Keeping the columns separate avoids materialising millions of 4-tuples
    per trace; iterating yields tuples lazily (CPython's ``zip`` recycles
    the result tuple in a plain ``for`` loop, so the tuple-based consumers
    keep working unchanged at a fraction of the allocation cost).

    Columns may be held as Python lists (the recording path appends) or as
    ``numpy`` ``int64`` arrays (cache loads keep the deserialised arrays,
    feeding the batch kernels zero-copy).  Scalar consumers must go through
    :meth:`lists` — iterating an ``int64`` array yields numpy scalars whose
    ``<<`` overflows at 64 bits, so the per-event interpreters always work
    on Python ints.
    """

    __slots__ = ("tag", "ip", "a", "b", "loads", "_lists", "_arrays")

    def __init__(
        self,
        tag: "List[int] | np.ndarray",
        ip: "List[int] | np.ndarray",
        a: "List[int] | np.ndarray",
        b: "List[int] | np.ndarray",
        loads: Optional[int] = None,
    ) -> None:
        self.tag = tag
        self.ip = ip
        self.a = a
        self.b = b
        self._lists: Optional[Tuple[list, list, list, list]] = None
        self._arrays: Optional[Tuple[np.ndarray, ...]] = None
        #: Number of dynamic loads (``tag == 1`` entries), precomputed so
        #: warm-up bookkeeping never rescans the stream.
        if loads is None:
            if isinstance(tag, np.ndarray):
                loads = int(np.count_nonzero(tag == 1))
            else:
                loads = tag.count(1)
        self.loads = loads

    def __len__(self) -> int:
        return len(self.tag)

    def lists(self) -> Tuple[list, list, list, list]:
        """The four columns as Python lists of Python ints (memoised).

        The scalar evaluation loops iterate these: converting an ``int64``
        array once via ``tolist()`` is far cheaper than boxing a numpy
        scalar per element during iteration, and Python ints carry the
        arbitrary-precision shifts the predictors rely on.
        """
        if self._lists is None:
            cols = tuple(
                col.tolist() if isinstance(col, np.ndarray) else col
                for col in (self.tag, self.ip, self.a, self.b)
            )
            self._lists = cols  # type: ignore[assignment]
        return self._lists  # type: ignore[return-value]

    def arrays(self) -> Tuple["np.ndarray", ...]:
        """The four columns as ``int64`` numpy arrays (memoised).

        Zero-copy when the stream came from a cache file; a single
        ``np.asarray`` conversion otherwise.  This is the batch kernels'
        input format.
        """
        if self._arrays is None:
            self._arrays = tuple(
                col if isinstance(col, np.ndarray)
                else np.asarray(col, dtype=np.int64)
                for col in (self.tag, self.ip, self.a, self.b)
            )
        return self._arrays

    def __iter__(self) -> Iterator[Tuple[int, int, int, int]]:
        return zip(*self.lists())

    def tuples(self) -> List[tuple]:
        """Materialise the stream as the legacy list of 4-tuples."""
        return list(zip(*self.lists()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PredictorStream(events={len(self)}, loads={self.loads})"


@dataclass
class TraceSummary:
    """Aggregate statistics of one trace."""

    name: str
    instructions: int
    loads: int
    stores: int
    branches: int
    taken_branches: int
    static_loads: int
    kind_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def load_fraction(self) -> float:
        """Loads as a share of all instructions."""
        return self.loads / self.instructions if self.instructions else 0.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.instructions} instr, {self.loads} loads"
            f" ({self.load_fraction:.1%}), {self.static_loads} static loads,"
            f" {self.branches} branches"
        )


class Trace:
    """An executed instruction stream with metadata.

    Columns (all parallel, one entry per dynamic instruction):

    ``kind``   event kind code (:mod:`repro.trace.event`)
    ``ip``     instruction pointer
    ``addr``   effective address (memory ops) else 0
    ``offset`` immediate offset (memory ops) else 0
    ``dst``    destination register or -1
    ``src1``   first source register or -1
    ``src2``   second source register or -1
    ``taken``  1 when a branch/jump was taken
    ``value``  data value moved by a load/store (for value-prediction
               studies), else 0
    """

    def __init__(self, name: str = "", meta: Optional[dict] = None) -> None:
        self.name = name
        self.meta: dict = dict(meta or {})
        self.kind: List[int] = []
        self.ip: List[int] = []
        self.addr: List[int] = []
        self.offset: List[int] = []
        self.dst: List[int] = []
        self.src1: List[int] = []
        self.src2: List[int] = []
        self.taken: List[int] = []
        self.value: List[int] = []
        # Memoised derived streams.  Traces are immutable once a workload
        # finishes generating them, so these never need invalidation on the
        # hot recording path; ``extend`` (a cold path) clears them.
        self._predictor_stream: Optional[PredictorStream] = None
        self._predictor_tuples: Optional[List[tuple]] = None

    # -- recording (used by the CPU) ---------------------------------------

    def append(
        self,
        kind: int,
        ip: int,
        addr: int = 0,
        offset: int = 0,
        dst: int = -1,
        src1: int = -1,
        src2: int = -1,
        taken: int = 0,
        value: int = 0,
    ) -> None:
        """Record one dynamic instruction."""
        self.kind.append(kind)
        self.ip.append(ip)
        self.addr.append(addr)
        self.offset.append(offset)
        self.dst.append(dst)
        self.src1.append(src1)
        self.src2.append(src2)
        self.taken.append(taken)
        self.value.append(value)

    def extend(self, other: "Trace") -> None:
        """Concatenate another trace's events onto this one."""
        for col in _COLUMNS:
            getattr(self, col).extend(getattr(other, col))
        self._predictor_stream = None
        self._predictor_tuples = None

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kind)

    def __getitem__(self, index: int) -> TraceEvent:
        return TraceEvent(
            index=index,
            kind=self.kind[index],
            ip=self.ip[index],
            addr=self.addr[index],
            offset=self.offset[index],
            dst=self.dst[index],
            src1=self.src1[index],
            src2=self.src2[index],
            taken=self.taken[index],
            value=self.value[index],
        )

    def events(self) -> Iterator[TraceEvent]:
        """Iterate all events as :class:`TraceEvent` rows."""
        for index in range(len(self)):
            yield self[index]

    def loads(self) -> Iterator[LoadEvent]:
        """Iterate just the dynamic loads."""
        kinds = self.kind
        ips = self.ip
        addrs = self.addr
        offsets = self.offset
        for i in range(len(kinds)):
            if kinds[i] in LOAD_KINDS:
                yield LoadEvent(ips[i], addrs[i], offsets[i])

    def predictor_columns(self) -> PredictorStream:
        """Columnar predictor-visible stream (memoised).

        Same events and ordering as :meth:`predictor_stream`, held as four
        parallel lists instead of a list of tuples.  Built once per trace;
        traces loaded from a cache file restore it directly from the
        persisted columns without rescanning the full event columns.
        """
        if self._predictor_stream is None:
            tags: List[int] = []
            s_ips: List[int] = []
            s_a: List[int] = []
            s_b: List[int] = []
            loads = 0
            kinds = self.kind
            ips = self.ip
            addrs = self.addr
            offsets = self.offset
            takens = self.taken
            load_kinds = LOAD_KINDS
            for i in range(len(kinds)):
                k = kinds[i]
                if k in load_kinds:
                    tags.append(1)
                    s_ips.append(ips[i])
                    s_a.append(addrs[i])
                    s_b.append(offsets[i])
                    loads += 1
                    if k == KIND_RET:
                        tags.append(3)
                        s_ips.append(ips[i])
                        s_a.append(0)
                        s_b.append(0)
                elif k == KIND_BRANCH:
                    tags.append(0)
                    s_ips.append(ips[i])
                    s_a.append(takens[i])
                    s_b.append(0)
                elif k == KIND_CALL:
                    tags.append(2)
                    s_ips.append(ips[i])
                    s_a.append(0)
                    s_b.append(0)
            self._predictor_stream = PredictorStream(
                tags, s_ips, s_a, s_b, loads=loads
            )
        return self._predictor_stream

    def predictor_stream(self) -> List[tuple]:
        """Compact stream for predictor evaluation (memoised).

        Returns a list of tuples in program order:

        * ``(1, ip, addr, offset)`` for each dynamic load,
        * ``(0, ip, taken, 0)``     for each conditional branch (GHR food),
        * ``(2, ip, 0, 0)``         for each call (call-path history food),
        * ``(3, ip, 0, 0)``         for each return.

        A ``ret`` both loads its return address and pops the call path, so
        it contributes a load tuple followed by a return marker.  Events the
        address predictors never observe (plain ALU ops, stores) are
        dropped.  Prefer :meth:`predictor_columns` in new code — it carries
        the same data without allocating one tuple per event.
        """
        if self._predictor_tuples is None:
            self._predictor_tuples = self.predictor_columns().tuples()
        return self._predictor_tuples

    def value_stream(self) -> List[tuple]:
        """Per-load ``(ip, loaded_value)`` pairs, for value prediction.

        The paper (Section 1) contrasts load-address prediction with load-
        *value* prediction ("its lower predictability makes this option
        less attractive"); this stream feeds that comparison.
        """
        pairs: List[tuple] = []
        kinds = self.kind
        ips = self.ip
        values = self.value
        load_kinds = LOAD_KINDS
        for i in range(len(kinds)):
            if kinds[i] in load_kinds:
                pairs.append((ips[i], values[i]))
        return pairs

    # -- statistics ----------------------------------------------------------

    def summary(self) -> TraceSummary:
        """Compute aggregate statistics."""
        kind_counts: Dict[str, int] = {}
        loads = stores = branches = taken_branches = 0
        static_loads = set()
        for i, k in enumerate(self.kind):
            kind_counts[KIND_NAMES[k]] = kind_counts.get(KIND_NAMES[k], 0) + 1
            if k in LOAD_KINDS:
                loads += 1
                static_loads.add(self.ip[i])
            elif k in STORE_KINDS:
                stores += 1
            elif k == KIND_BRANCH:
                branches += 1
                taken_branches += self.taken[i]
        return TraceSummary(
            name=self.name,
            instructions=len(self),
            loads=loads,
            stores=stores,
            branches=branches,
            taken_branches=taken_branches,
            static_loads=len(static_loads),
            kind_counts=kind_counts,
        )

    # -- persistence -----------------------------------------------------------

    def save(self, path: "Path | str") -> None:
        """Serialise to a compressed ``.npz`` file.

        The write is atomic (tmp file + ``os.replace``) so a concurrent
        reader never observes a torn archive, and the derived predictor
        stream is persisted as columnar arrays so loads skip the full-trace
        rescan.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {
            col: np.asarray(getattr(self, col), dtype=np.int64)
            for col in _COLUMNS
        }
        stream = self.predictor_columns()
        for key, column in zip(
            _STREAM_COLUMNS, (stream.tag, stream.ip, stream.a, stream.b)
        ):
            arrays[key] = np.asarray(column, dtype=np.int64)
        header = json.dumps({"name": self.name, "meta": self.meta})
        # The .npz suffix keeps numpy from appending one of its own.
        tmp = path.with_name(f".{path.stem}.tmp.{os.getpid()}.npz")
        try:
            np.savez_compressed(
                tmp, header=np.frombuffer(header.encode(), dtype=np.uint8),
                **arrays,
            )
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - error cleanup
                tmp.unlink()

    @classmethod
    def load(cls, path: "Path | str") -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode())
            trace = cls(name=header.get("name", ""), meta=header.get("meta", {}))
            for col in _COLUMNS:
                if col in data:
                    setattr(trace, col, data[col].tolist())
                else:  # older cache files lack the value column
                    setattr(trace, col, [0] * len(data["kind"]))
            if all(key in data for key in _STREAM_COLUMNS):
                # Kept as int64 arrays: the batch kernels consume them
                # zero-copy and scalar consumers convert via .lists().
                trace._predictor_stream = PredictorStream(
                    data["ps_tag"],
                    data["ps_ip"],
                    data["ps_a"],
                    data["ps_b"],
                )
        return trace

    @classmethod
    def load_header(cls, path: "Path | str") -> dict:
        """Load just the name/meta header from a cache file.

        Provenance consumers (run manifests, ``repro ingest describe``)
        need the metadata of a cached trace without deserialising any of
        the event columns; ``.npz`` members load lazily, so this touches
        only the tiny ``header`` array.
        """
        with np.load(Path(path)) as data:
            return json.loads(bytes(data["header"].tobytes()).decode())

    @classmethod
    def load_stream(cls, path: "Path | str") -> Optional[PredictorStream]:
        """Load just the predictor stream from a cache file.

        ``.npz`` members deserialise lazily, so predictor-only consumers
        (the experiment engine's ``predict`` jobs) skip the nine full event
        columns and read only the four stream arrays — an order of
        magnitude less work on a warm cache.  Returns ``None`` for archives
        written before the stream columns existed.
        """
        with np.load(Path(path)) as data:
            if not all(key in data for key in _STREAM_COLUMNS):
                return None
            return PredictorStream(
                data["ps_tag"],
                data["ps_ip"],
                data["ps_a"],
                data["ps_b"],
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace(name={self.name!r}, events={len(self)})"
