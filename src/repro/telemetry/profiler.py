"""Opt-in sampling profiler for the evaluation hot loop.

Set ``REPRO_TELEMETRY_PROFILE=1`` (in addition to ``REPRO_TELEMETRY=1``)
and the engine samples the Python stack around the ``run_on_columns``
hot loop with a ``SIGPROF`` interval timer — CPU-time driven, so a
blocked process stops accumulating samples.  The aggregated call sites
land in the job's run manifest under ``"profile"``.

A *sampling* profiler is the only kind that belongs near this loop:
``sys.setprofile``-style tracing slows the columnar path by an order of
magnitude and would invalidate the very loads/sec figures the manifest
records.  Sampling at the default 5 ms period costs well under 1%.

The profiler degrades to a no-op where ``signal.setitimer`` is missing
(non-POSIX) or off the main thread (where Python forbids signal handler
installation) — callers need no platform guards.
"""

from __future__ import annotations

import os
import signal
import threading
from types import FrameType
from typing import Any, Dict, List, Optional

__all__ = ["SamplingProfiler", "available", "enabled", "maybe_start"]

#: Default sampling period, seconds of *CPU* time between samples.
DEFAULT_INTERVAL = 0.005

#: Stack frames folded into one site label (innermost first).
SITE_DEPTH = 3


def enabled() -> bool:
    """Whether profiling is requested (``REPRO_TELEMETRY_PROFILE=1``).

    Delegates to :mod:`repro.eval.config`, the single environment-reading
    module the R002 determinism rule sanctions.
    """
    from ..eval.config import profile_enabled

    return profile_enabled()


def available() -> bool:
    """Whether this platform/thread can host the interval timer."""
    return (
        hasattr(signal, "setitimer")
        and hasattr(signal, "SIGPROF")
        and threading.current_thread() is threading.main_thread()
    )


def maybe_start(
    interval: float = DEFAULT_INTERVAL,
) -> Optional["SamplingProfiler"]:
    """Start a profiler when enabled and available, else return ``None``."""
    if not (enabled() and available()):
        return None
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    return profiler


def _site_of(frame: Optional[FrameType]) -> str:
    """Collapse the innermost frames into ``mod.func>mod.func`` labels."""
    parts: List[str] = []
    while frame is not None and len(parts) < SITE_DEPTH:
        code = frame.f_code
        module = os.path.splitext(os.path.basename(code.co_filename))[0]
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    return ">".join(parts)


class SamplingProfiler:
    """SIGPROF-driven stack sampler aggregating hit counts per call site."""

    def __init__(
        self, interval: float = DEFAULT_INTERVAL, max_sites: int = 20
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.max_sites = max_sites
        self.samples = 0
        self._counts: Dict[str, int] = {}
        self._previous_handler: Any = None
        self._running = False

    # -- signal plumbing ----------------------------------------------------

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        self.samples += 1
        site = _site_of(frame)
        self._counts[site] = self._counts.get(site, 0) + 1

    def start(self) -> None:
        """Install the handler and arm the CPU-time interval timer."""
        if self._running:
            raise RuntimeError("profiler already running")
        if not available():  # pragma: no cover - platform dependent
            return
        self._previous_handler = signal.signal(signal.SIGPROF, self._handle)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        self._running = True

    def stop(self) -> Dict[str, Any]:
        """Disarm the timer and return the aggregated profile record."""
        if self._running:
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            signal.signal(signal.SIGPROF, self._previous_handler)
            self._running = False
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        return {
            "interval_ms": self.interval * 1000.0,
            "samples": self.samples,
            "sites": [
                {"site": site, "count": count}
                for site, count in ranked[: self.max_sites]
            ],
        }
