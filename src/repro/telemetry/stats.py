"""Reporting backend for ``python -m repro stats``.

Three consumers of the observability layer live here:

* :func:`collect_breakdown` runs an instrumented (variant x trace) grid
  through the experiment engine and aggregates the per-component
  attribution counters into a Figure 10-style misprediction-cause
  breakdown (`BreakdownResult`, rendered as text, JSON or CSV);
* :func:`summarize_manifests` tabulates a directory of run manifests —
  the quick "what did that run cost" view;
* :func:`diff_manifests` compares two manifest sets (baseline vs
  candidate) and flags wall-clock / throughput / accuracy regressions.

This module sits at the *top* of the import graph: it pulls in the
experiment engine, so nothing below ``eval`` may import it (the
``repro.telemetry`` package ``__init__`` deliberately leaves it out).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..eval.engine import Job, run_jobs
from ..eval.metrics import AttributionCounters
from ..eval.report import format_percent, format_table
from ..workloads import suites as suite_registry
from .instrumentation import ATTRIBUTION_FIELDS
from .manifest import load_manifests
from .schema import load_schema, validate_manifest
from .schema import validate as schema_validate

__all__ = [
    "BENCH_SCHEMA_ID",
    "BreakdownResult",
    "DEFAULT_VARIANTS",
    "ManifestDiff",
    "SLO_SCHEMA_ID",
    "bench_regression",
    "check_bench_file",
    "check_slo_report",
    "collect_breakdown",
    "diff_manifests",
    "render_bench_history",
    "render_slo_report",
    "summarize_manifests",
    "validate_directory",
]

#: The Figure 5 predictor roster: variant label -> (factory, overrides, gap).
DEFAULT_VARIANTS: Dict[str, Tuple[str, Dict[str, Any], Optional[int]]] = {
    "stride": ("stride", {}, None),
    "cap": ("cap", {}, None),
    "hybrid": ("hybrid", {}, None),
}


# ---------------------------------------------------------------------------
# Misprediction-cause breakdown
# ---------------------------------------------------------------------------

@dataclass
class BreakdownResult:
    """Aggregated attribution counters for several predictor variants."""

    title: str
    variants: List[str]
    #: variant -> counters summed over every trace
    totals: Dict[str, AttributionCounters] = field(default_factory=dict)
    #: variant -> per-trace counters (for drill-down / CSV)
    per_trace: Dict[str, List[AttributionCounters]] = field(
        default_factory=dict
    )

    def render_text(self) -> str:
        """Headline rates plus the per-cause table, like Figure 10."""
        headline = format_table(
            ["variant", "loads", "pred rate", "accuracy", "mispred rate"],
            [
                [
                    variant,
                    total.loads,
                    format_percent(total.prediction_rate),
                    format_percent(total.accuracy, 2),
                    format_percent(total.misprediction_rate, 2),
                ]
                for variant, total in self.totals.items()
            ],
            title=self.title,
        )
        headers = ["cause"]
        for variant in self.variants:
            headers += [variant, "/1k loads"]
        rows: List[List[object]] = []
        for cause in ATTRIBUTION_FIELDS:
            row: List[object] = [cause]
            for variant in self.variants:
                total = self.totals[variant]
                count = total.attribution()[cause]
                per_k = 1000.0 * count / total.loads if total.loads else 0.0
                row += [count, f"{per_k:.2f}"]
            rows.append(row)
        causes = format_table(
            headers, rows, title="Attribution (event counts)",
        )
        return headline + "\n\n" + causes

    def to_json(self) -> str:
        payload = {
            "title": self.title,
            "variants": self.variants,
            "totals": {
                variant: _counters_record(total)
                for variant, total in self.totals.items()
            },
            "per_trace": {
                variant: [_counters_record(c) for c in counters]
                for variant, counters in self.per_trace.items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """Wide CSV: one row per (variant, trace) plus an ALL row each."""
        buffer = io.StringIO()
        columns = [
            "variant", "trace", "suite", "loads", "predictions",
            "speculative", "correct_speculative", "correct_predictions",
            *ATTRIBUTION_FIELDS,
        ]
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for variant in self.variants:
            for counters in self.per_trace.get(variant, []):
                writer.writerow(_csv_row(variant, counters))
            total = self.totals[variant]
            row = _csv_row(variant, total)
            row["trace"] = "ALL"
            row["suite"] = "ALL"
            writer.writerow(row)
        return buffer.getvalue()


def _counters_record(counters: AttributionCounters) -> Dict[str, Any]:
    return {
        "trace": counters.trace,
        "suite": counters.suite,
        "loads": counters.loads,
        "predictions": counters.predictions,
        "speculative": counters.speculative,
        "correct_speculative": counters.correct_speculative,
        "correct_predictions": counters.correct_predictions,
        "prediction_rate": counters.prediction_rate,
        "accuracy": counters.accuracy,
        "misprediction_rate": counters.misprediction_rate,
        "attribution": counters.attribution(),
    }


def _csv_row(variant: str, counters: AttributionCounters) -> Dict[str, Any]:
    row: Dict[str, Any] = {
        "variant": variant,
        "trace": counters.trace,
        "suite": counters.suite,
        "loads": counters.loads,
        "predictions": counters.predictions,
        "speculative": counters.speculative,
        "correct_speculative": counters.correct_speculative,
        "correct_predictions": counters.correct_predictions,
    }
    row.update(counters.attribution())
    return row


def collect_breakdown(
    traces: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    variants: Optional[
        Dict[str, Tuple[str, Dict[str, Any], Optional[int]]]
    ] = None,
    warmup_fraction: float = 0.0,
) -> BreakdownResult:
    """Run the instrumented grid and aggregate attribution counters.

    Jobs are emitted trace-outer (cache locality) and executed through
    :func:`repro.eval.engine.run_jobs`, so the breakdown parallelises
    under ``REPRO_JOBS`` exactly like the figure suite — the engine's
    deterministic merge keeps the aggregated counters identical across
    worker counts.
    """
    roster = variants if variants is not None else DEFAULT_VARIANTS
    trace_names = (
        list(traces) if traces is not None else suite_registry.trace_names()
    )
    jobs = [
        Job(
            trace=name,
            factory=factory,
            overrides=dict(overrides),
            instructions=instructions,
            warmup_fraction=warmup_fraction,
            gap=gap,
            variant=variant,
            instrument=True,
        )
        for name in trace_names
        for variant, (factory, overrides, gap) in roster.items()
    ]
    result = BreakdownResult(
        title="Misprediction-cause breakdown (attribution counters)",
        variants=list(roster),
    )
    totals = {
        variant: AttributionCounters(name=variant) for variant in roster
    }
    per_trace: Dict[str, List[AttributionCounters]] = {
        variant: [] for variant in roster
    }
    for job_result in run_jobs(jobs):
        metrics = job_result.metrics
        if not isinstance(metrics, AttributionCounters):
            raise TypeError(
                f"instrumented job for {job_result.variant!r} returned"
                f" {type(metrics).__name__}, expected AttributionCounters"
            )
        per_trace[job_result.variant].append(metrics)
        totals[job_result.variant] += metrics
    result.totals = totals
    result.per_trace = per_trace
    return result


# ---------------------------------------------------------------------------
# Manifest summarising / validation
# ---------------------------------------------------------------------------

def summarize_manifests(directory: Union[str, Path]) -> str:
    """One table row per manifest: identity, cost, and headline accuracy."""
    manifests = load_manifests(directory)
    if not manifests:
        return f"no manifests under {directory}"
    rows: List[List[object]] = []
    for manifest in manifests:
        job = manifest.get("job", {})
        run = manifest.get("run", {})
        metrics = manifest.get("metrics") or {}
        loads_per_sec = run.get("loads_per_sec")
        rows.append([
            job.get("variant", "?"),
            job.get("trace", "?"),
            job.get("kind", "?"),
            metrics.get("loads", "-"),
            f"{run.get('wall_s', 0.0):.2f}",
            f"{loads_per_sec:,.0f}" if loads_per_sec else "-",
            run.get("peak_rss_kb", "-"),
            (
                format_percent(metrics["accuracy"], 2)
                if "accuracy" in metrics else "-"
            ),
        ])
    return format_table(
        ["variant", "trace", "kind", "loads", "wall s", "loads/s",
         "rss KiB", "accuracy"],
        rows,
        title=f"{len(manifests)} manifest(s) under {directory}",
    )


def validate_directory(
    directory: Union[str, Path],
) -> List[Tuple[str, List[str]]]:
    """Schema-validate every manifest; returns (path, errors) per failure."""
    failures: List[Tuple[str, List[str]]] = []
    for manifest in load_manifests(directory):
        errors = validate_manifest(manifest)
        if errors:
            failures.append((manifest.get("_path", "?"), errors))
    return failures


# ---------------------------------------------------------------------------
# Manifest diffing (regression flagging)
# ---------------------------------------------------------------------------

@dataclass
class ManifestDiff:
    """Baseline-vs-candidate comparison of two manifest directories."""

    baseline: Union[str, Path]
    candidate: Union[str, Path]
    #: one record per matched (variant, trace) pair
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: human-readable regression flags (empty = clean)
    regressions: List[str] = field(default_factory=list)
    only_baseline: List[str] = field(default_factory=list)
    only_candidate: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines: List[str] = []
        if self.rows:
            table_rows: List[List[object]] = []
            for row in self.rows:
                table_rows.append([
                    row["variant"],
                    row["trace"],
                    _signed_percent(row["wall_ratio"] - 1.0),
                    _signed_pp(row["accuracy_delta"]),
                    _signed_pp(row["rate_delta"]),
                    ",".join(row["flags"]) or "-",
                ])
            lines.append(format_table(
                ["variant", "trace", "wall Δ", "acc Δpp", "rate Δpp",
                 "flags"],
                table_rows,
                title=f"manifest diff: {self.baseline} -> {self.candidate}",
            ))
        for name in self.only_baseline:
            lines.append(f"only in baseline:  {name}")
        for name in self.only_candidate:
            lines.append(f"only in candidate: {name}")
        if self.regressions:
            lines.append("")
            lines.append(f"{len(self.regressions)} regression flag(s):")
            lines.extend(f"  - {item}" for item in self.regressions)
        else:
            lines.append("")
            lines.append("no regressions flagged")
        return "\n".join(lines)


def _signed_percent(value: float) -> str:
    return f"{value * 100:+.1f}%"


def _signed_pp(value: float) -> str:
    return f"{value * 100:+.2f}"


def _index_manifests(
    directory: Union[str, Path],
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    index: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for manifest in load_manifests(directory):
        job = manifest.get("job", {})
        key = (str(job.get("variant", "?")), str(job.get("trace", "?")))
        index[key] = manifest
    return index


def diff_manifests(
    baseline: Union[str, Path],
    candidate: Union[str, Path],
    wall_tolerance: float = 0.25,
    accuracy_tolerance: float = 0.005,
) -> ManifestDiff:
    """Compare two manifest sets, matched by (variant, trace).

    Flags a **perf** regression when the candidate's wall time exceeds
    the baseline's by more than ``wall_tolerance`` (fractional), and an
    **accuracy** regression when accuracy or prediction rate drops by
    more than ``accuracy_tolerance`` (absolute).  A changed config hash
    is reported as an informational flag, not a regression — a deliberate
    config change legitimately moves both.
    """
    result = ManifestDiff(baseline=baseline, candidate=candidate)
    base_index = _index_manifests(baseline)
    cand_index = _index_manifests(candidate)
    result.only_baseline = [
        f"{variant}/{trace}"
        for (variant, trace) in sorted(set(base_index) - set(cand_index))
    ]
    result.only_candidate = [
        f"{variant}/{trace}"
        for (variant, trace) in sorted(set(cand_index) - set(base_index))
    ]
    for key in sorted(set(base_index) & set(cand_index)):
        variant, trace = key
        old, new = base_index[key], cand_index[key]
        old_run, new_run = old.get("run", {}), new.get("run", {})
        old_metrics = old.get("metrics") or {}
        new_metrics = new.get("metrics") or {}
        old_wall = float(old_run.get("wall_s", 0.0))
        new_wall = float(new_run.get("wall_s", 0.0))
        wall_ratio = new_wall / old_wall if old_wall > 0 else 1.0
        accuracy_delta = (
            float(new_metrics.get("accuracy", 0.0))
            - float(old_metrics.get("accuracy", 0.0))
        )
        rate_delta = (
            float(new_metrics.get("prediction_rate", 0.0))
            - float(old_metrics.get("prediction_rate", 0.0))
        )
        flags: List[str] = []
        if wall_ratio > 1.0 + wall_tolerance:
            flags.append("perf")
            result.regressions.append(
                f"{variant}/{trace}: wall {old_wall:.2f}s ->"
                f" {new_wall:.2f}s ({_signed_percent(wall_ratio - 1.0)})"
            )
        if accuracy_delta < -accuracy_tolerance:
            flags.append("accuracy")
            result.regressions.append(
                f"{variant}/{trace}: accuracy"
                f" {_signed_pp(accuracy_delta)}pp"
            )
        if rate_delta < -accuracy_tolerance:
            flags.append("rate")
            result.regressions.append(
                f"{variant}/{trace}: prediction rate"
                f" {_signed_pp(rate_delta)}pp"
            )
        if old.get("config_hash") != new.get("config_hash"):
            flags.append("config")
        result.rows.append({
            "variant": variant,
            "trace": trace,
            "wall_ratio": wall_ratio,
            "accuracy_delta": accuracy_delta,
            "rate_delta": rate_delta,
            "flags": flags,
        })
    return result


# ---------------------------------------------------------------------------
# fig5 wall-clock trajectory (BENCH_fig5.json)
# ---------------------------------------------------------------------------

BENCH_SCHEMA_ID = "repro.bench_fig5/v1"

_BENCH_BACKENDS = ("python", "numpy")
_BENCH_ENTRY_KEYS = ("label", "recorded_at", "wall_s", "backend", "jobs")


def _load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_bench_file(path: Union[str, Path]) -> List[str]:
    """Schema problems in a bench trajectory file; ``[]`` when clean.

    Checked invariants: the schema id, the per-entry required keys and
    value domains, and chronological ``recorded_at`` order — append-only
    history, so a rewritten or reordered file fails the bench CI job.
    """
    try:
        payload = _load_bench(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    problems: List[str] = []
    if payload.get("schema") != BENCH_SCHEMA_ID:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {BENCH_SCHEMA_ID!r}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + ["entries must be a non-empty list"]
    previous_stamp = ""
    for index, entry in enumerate(entries):
        where = f"entries[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in _BENCH_ENTRY_KEYS:
            if key not in entry:
                problems.append(f"{where}: missing {key!r}")
        wall = entry.get("wall_s")
        if not isinstance(wall, (int, float)) or wall <= 0:
            problems.append(f"{where}: wall_s must be positive, got {wall!r}")
        if entry.get("backend") not in _BENCH_BACKENDS:
            problems.append(
                f"{where}: backend must be one of {_BENCH_BACKENDS},"
                f" got {entry.get('backend')!r}"
            )
        jobs = entry.get("jobs")
        if not isinstance(jobs, int) or jobs < 1:
            problems.append(f"{where}: jobs must be a positive int, got {jobs!r}")
        stamp = entry.get("recorded_at")
        if not isinstance(stamp, str) or not stamp:
            problems.append(f"{where}: recorded_at must be an ISO timestamp")
        else:
            # ISO-8601 strings with a fixed UTC suffix order lexically.
            if stamp < previous_stamp:
                problems.append(
                    f"{where}: recorded_at {stamp!r} precedes the previous"
                    f" entry ({previous_stamp!r}); history is append-only"
                )
            previous_stamp = stamp
    return problems


def render_bench_history(path: Union[str, Path]) -> str:
    """The trajectory as a table, with speedups against the seed entry."""
    payload = _load_bench(path)
    entries = payload.get("entries", [])
    baseline = entries[0]["wall_s"] if entries else None
    rows = []
    for entry in entries:
        wall = entry["wall_s"]
        rows.append([
            entry["label"],
            entry["recorded_at"][:10],
            entry["backend"],
            entry["jobs"],
            f"{wall:.1f}",
            f"{baseline / wall:.2f}x" if baseline else "-",
            entry.get("note", ""),
        ])
    return format_table(
        ["label", "date", "backend", "jobs", "wall_s", "vs seed", "note"],
        rows,
        title=payload.get("benchmark", "fig5 wall-clock trajectory"),
    )


def bench_regression(
    path: Union[str, Path], tolerance: float = 0.15
) -> Optional[str]:
    """Gate message when the newest entry regressed; ``None`` when clean.

    The newest entry is compared against the *best* earlier run with the
    same backend and worker count — comparing across backends (or serial
    vs parallel) would gate apples against oranges.  ``tolerance`` is the
    allowed fractional slowdown (0.15 = 15%), absorbing host noise.
    """
    entries = _load_bench(path).get("entries", [])
    if len(entries) < 2:
        return None
    newest = entries[-1]
    peers = [
        entry["wall_s"]
        for entry in entries[:-1]
        if entry["backend"] == newest["backend"]
        and entry["jobs"] == newest["jobs"]
    ]
    if not peers:
        return None
    best = min(peers)
    if newest["wall_s"] > best * (1.0 + tolerance):
        return (
            f"bench regression: {newest['label']}"
            f" ({newest['backend']}, {newest['jobs']} worker(s)) took"
            f" {newest['wall_s']:.1f}s vs best {best:.1f}s"
            f" (+{(newest['wall_s'] / best - 1.0) * 100:.0f}%,"
            f" tolerance {tolerance * 100:.0f}%)"
        )
    return None


# ---------------------------------------------------------------------------
# Serving SLO reports (benchmarks/loadgen.py output)
# ---------------------------------------------------------------------------

SLO_SCHEMA_ID = "repro.slo_report/v1"
SLO_SCHEMA_PATH = Path(__file__).with_name("slo_report.schema.json")


def _load_slo(path: Union[str, Path]) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_slo_report(path: Union[str, Path]) -> List[str]:
    """Schema problems in a loadgen SLO report; ``[]`` when clean."""
    try:
        payload = _load_slo(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return schema_validate(payload, load_schema(SLO_SCHEMA_PATH))


def _ms(value: Optional[float]) -> str:
    return f"{value:.2f}" if value is not None else "-"


def render_slo_report(path: Union[str, Path]) -> str:
    """An SLO report as a saturation-curve table plus headline lines."""
    payload = _load_slo(path)
    server = payload["server"]
    workload = payload["workload"]
    totals = payload["totals"]
    slo = payload["slo"]
    rows = []
    for step in payload["steps"]:
        latency = step["latency_ms"]
        throughput = step["throughput_lps"]
        rows.append([
            step["concurrency"],
            step["sessions"],
            step["loads"],
            f"{throughput:.0f}" if throughput is not None else "-",
            _ms(latency["p50"]),
            _ms(latency.get("p90")),
            _ms(latency["p99"]),
            step["errors"],
        ])
    table = format_table(
        ["conc", "sessions", "loads", "loads/s", "p50ms", "p90ms",
         "p99ms", "errors"],
        rows,
        title=(
            "serving saturation curve — "
            + (
                f"trace:{workload['trace']}"
                if workload.get("trace")
                else workload["profile"]
            )
            + f"/{workload['mode']} @ {server['host']}:{server['port']}"
        ),
    )
    backends = ", ".join(
        f"{name}={count}"
        for name, count in sorted(totals.get("backends", {}).items())
    ) or "-"
    throughput_lps = slo["throughput_lps"]
    lines = [
        table,
        "",
        (
            f"SLO: p50={_ms(slo['p50_ms'])}ms p99={_ms(slo['p99_ms'])}ms"
            + (
                f" throughput={throughput_lps:.0f} loads/s"
                if throughput_lps is not None
                else " throughput=-"
            )
        ),
        (
            f"totals: sessions={totals['sessions']}"
            f" loads={totals['loads']} errors={totals['errors']}"
            f" dropped={totals['dropped_sessions']}"
            f" rejected={totals.get('rejected_feeds')}"
            f" timeouts={totals.get('timeouts')}"
            f" backends: {backends}"
        ),
    ]
    server_obs = payload.get("server_obs")
    if server_obs:
        wait = server_obs["queue_wait_ms"]
        occupancy = server_obs.get("batch_occupancy_mean")
        lines.append(
            f"server: queue-wait p50={_ms(wait.get('p50'))}ms"
            f" p95={_ms(wait.get('p95'))}ms p99={_ms(wait.get('p99'))}ms"
            f" (n={wait['count']})"
            + (
                f" batch-occupancy={occupancy:.1f}"
                if occupancy is not None else ""
            )
            + (
                f" spans={server_obs['spans_exported']}"
                if server_obs.get("spans_exported") is not None else ""
            )
        )
    return "\n".join(lines)
