"""Run-manifest schema validation (dependency-free JSON Schema subset).

CI validates every manifest an instrumented run produces against the
checked-in ``run_manifest.schema.json`` so the manifest format is an
explicit, reviewed contract rather than whatever the engine happened to
emit.  The container bakes in no ``jsonschema`` package, so this module
implements the small subset of JSON Schema the manifest schema actually
uses: ``type`` (scalar or union list), ``properties`` / ``required`` /
``additionalProperties``, ``items``, ``enum``, ``minimum`` and ``const``.

Unknown schema keywords are rejected loudly at validation time — a
schema edit that silently validated nothing would be worse than no
schema at all.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

__all__ = ["SCHEMA_PATH", "load_schema", "validate", "validate_manifest"]

#: The checked-in manifest schema shipped inside the package.
SCHEMA_PATH = Path(__file__).with_name("run_manifest.schema.json")

#: Schema keywords this validator understands.
_SUPPORTED = frozenset(
    {
        "$schema",
        "$id",
        "title",
        "description",
        "type",
        "properties",
        "required",
        "additionalProperties",
        "items",
        "enum",
        "minimum",
        "const",
    }
)

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": (
        lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    ),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def load_schema(path: Path = SCHEMA_PATH) -> Dict[str, Any]:
    """Load a schema document from disk."""
    with path.open() as fh:
        schema = json.load(fh)
    if not isinstance(schema, dict):
        raise ValueError(f"schema root must be an object: {path}")
    return schema


def validate(
    instance: Any, schema: Dict[str, Any], path: str = "$"
) -> List[str]:
    """All violations of ``schema`` by ``instance`` (empty list = valid)."""
    errors: List[str] = []
    unknown = set(schema) - _SUPPORTED
    if unknown:
        raise ValueError(
            f"unsupported schema keyword(s) at {path}: {sorted(unknown)}"
        )

    if "const" in schema and instance != schema["const"]:
        errors.append(
            f"{path}: expected const {schema['const']!r}, got {instance!r}"
        )
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(
            f"{path}: {instance!r} not one of {schema['enum']!r}"
        )

    declared = schema.get("type")
    if declared is not None:
        allowed = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](instance) for t in allowed):
            errors.append(
                f"{path}: expected type {'/'.join(allowed)},"
                f" got {type(instance).__name__}"
            )
            return errors  # structural checks below would only cascade

    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, value in instance.items():
            if name in properties:
                errors.extend(
                    validate(value, properties[name], f"{path}.{name}")
                )
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, f"{path}.{name}"))
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], f"{path}[{index}]")
            )
    if (
        "minimum" in schema
        and isinstance(instance, (int, float))
        and not isinstance(instance, bool)
        and instance < schema["minimum"]
    ):
        errors.append(
            f"{path}: {instance} below minimum {schema['minimum']}"
        )
    return errors


def validate_manifest(manifest: Dict[str, Any]) -> List[str]:
    """Validate one manifest dict against the checked-in schema."""
    scrubbed = {k: v for k, v in manifest.items() if not k.startswith("_")}
    return validate(scrubbed, load_schema())
