"""Structured run telemetry: JSON manifests, heartbeats, clocks.

Under ``REPRO_TELEMETRY=1`` every engine job writes one JSON **run
manifest** — config hash, trace identity and cache-file provenance, wall
and CPU time, loads/second, peak RSS, metrics, attribution counters — to
the directory named by ``REPRO_TELEMETRY_DIR`` (default ``telemetry/``),
plus heartbeat progress lines on stderr.  Manifests are the durable,
diffable record of a run: ``python -m repro stats --diff A B`` compares
two manifest sets to flag perf or accuracy regressions, and CI validates
them against ``run_manifest.schema.json``.

This module is deliberately free of simulator imports: it handles plain
dicts and knows nothing about jobs or predictors (the engine owns that
glue).  All wall-clock access is funnelled through :func:`wall_clock` /
:func:`perf_clock`, the only sanctioned clock reads outside ``eval/`` —
telemetry *observes* runs, it never feeds time back into simulated state.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "MANIFEST_SCHEMA_ID",
    "canonical_json",
    "config_hash",
    "cpu_clock",
    "enabled",
    "file_provenance",
    "heartbeat",
    "iso_utc",
    "jsonable",
    "load_manifests",
    "output_dir",
    "peak_rss_kb",
    "perf_clock",
    "wall_clock",
    "write_manifest",
]

#: Schema identifier embedded in (and required of) every manifest.
MANIFEST_SCHEMA_ID = "repro.run_manifest/v1"


# ---------------------------------------------------------------------------
# Runtime switches
# ---------------------------------------------------------------------------

def enabled() -> bool:
    """Whether run telemetry is switched on (``REPRO_TELEMETRY=1``).

    Resolution lives in :mod:`repro.eval.config` (the one sanctioned
    environment-reading module); imported lazily so this module keeps its
    no-simulator-imports property at import time.
    """
    from ..eval.config import telemetry_enabled

    return telemetry_enabled()


def output_dir() -> Path:
    """Manifest directory: ``REPRO_TELEMETRY_DIR``, default ``telemetry/``."""
    from ..eval.config import telemetry_dir

    return telemetry_dir()


# ---------------------------------------------------------------------------
# Clocks and process statistics (observability only, never simulated state)
# ---------------------------------------------------------------------------

def wall_clock() -> float:
    """Current wall time in seconds since the epoch.

    Manifest timestamps and heartbeat pacing only; nothing simulated may
    consume this value (the R002 determinism rule polices exactly that,
    which is why the read lives here behind one audited suppression).
    """
    return time.time()  # repro-lint: disable=R002


def perf_clock() -> float:
    """Monotonic high-resolution timer for measuring run durations.

    Display/manifest only — see :func:`wall_clock` for the policy.
    """
    return time.perf_counter()  # repro-lint: disable=R002


def cpu_clock() -> float:
    """Process CPU time in seconds (user + system)."""
    return time.process_time()


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalised to KiB.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


def iso_utc(epoch_seconds: float) -> str:
    """Render an epoch timestamp as an ISO-8601 UTC string."""
    stamp = datetime.fromtimestamp(epoch_seconds, tz=timezone.utc)
    return stamp.isoformat(timespec="seconds").replace("+00:00", "Z")


# ---------------------------------------------------------------------------
# Canonical JSON and hashing
# ---------------------------------------------------------------------------

def jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into JSON-encodable structures.

    Dataclasses (predictor/machine configs inside job overrides) become
    dicts; mappings and sequences recurse; anything else non-primitive
    falls back to ``repr`` so hashing never fails on an exotic override.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(
        jsonable(value), sort_keys=True, separators=(",", ":"),
    )


def config_hash(spec: Any) -> str:
    """SHA-256 over the canonical JSON of a job/config spec."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()


def file_provenance(path: Path) -> Dict[str, Any]:
    """Identity of an on-disk artifact (trace cache file provenance)."""
    record: Dict[str, Any] = {"path": str(path), "exists": path.exists()}
    if record["exists"]:
        stat = path.stat()
        record["bytes"] = stat.st_size
        record["mtime_ns"] = stat.st_mtime_ns
    return record


# ---------------------------------------------------------------------------
# Heartbeats and manifest IO
# ---------------------------------------------------------------------------

def heartbeat(message: str) -> None:
    """One progress line on stderr (workers interleave safely per line)."""
    print(f"[telemetry] pid={os.getpid()} {message}",
          file=sys.stderr, flush=True)


def write_manifest(
    data: Dict[str, Any], directory: Optional[Path] = None
) -> Path:
    """Atomically write one manifest; returns its path.

    The file name is derived from variant/trace/config-hash, so re-running
    the same job spec overwrites its own manifest (last writer wins) and
    distinct specs never collide.
    """
    directory = directory if directory is not None else output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    digest = str(data.get("config_hash", ""))[:12] or "nohash"
    variant = _slug(str(data.get("job", {}).get("variant", "")) or "run")
    trace = _slug(str(data.get("job", {}).get("trace", "")) or "trace")
    path = directory / f"{variant}-{trace}-{digest}.json"
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_manifests(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every ``*.json`` manifest under ``directory``, sorted by file name."""
    manifests: List[Dict[str, Any]] = []
    for path in sorted(Path(directory).glob("*.json")):
        with path.open() as fh:
            data = json.load(fh)
        if isinstance(data, dict):
            data["_path"] = str(path)
            manifests.append(data)
    return manifests


def _slug(text: str) -> str:
    """File-name-safe slug (job variants may contain spaces/commas)."""
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in text)
