"""Per-component attribution instrumentation (the probe protocol).

The paper explains *why* CAP mispredicts — Load Buffer misses, Link Table
tag mismatches, low-confidence suppression, PF-bit filtering, hybrid
selector choice (Sections 4.2-4.5, Figures 9-10) — but aggregate
prediction/accuracy rates collapse all of those causes into one number.
This module defines the :class:`Instrumentation` protocol the simulator
components emit typed attribution events into, plus the counting
:class:`AttributionProbe` the evaluation engine attaches per job.

Design rule — **zero cost when disabled**: every instrumented component
holds a ``probe`` attribute that defaults to ``None`` and is only ever
*read* on its hot path (``if self.probe is not None: ...``), and almost
every emission site sits on an already-rare branch (a table miss, a veto,
a rollback), so the common predict/update path pays at most one attribute
load and ``None`` test per call.  Probes are attached from the outside by
:func:`instrument_predictor`; predictors themselves never import this
module, which keeps the simulator layer free of telemetry dependencies.

Event taxonomy (see ``docs/observability.md`` for the full reference):

=====================  =====================================================
``lb_misses``          load missed the Load Buffer — no per-load state yet
``lt_misses``          Link Table had no stored link for the history context
``lt_tag_mismatches``  a link was stored but its tag disagreed (Sec 3.4)
``pf_rejections``      PF bits blocked a Link Table write (Sec 3.5)
``confidence_vetoes``  saturating confidence counter withheld speculation
``cfi_vetoes``         control-flow indication blocked the GHR path (Sec 3.4)
``interval_stops``     stride interval exhausted — speculation withheld
``drain_suppressions`` wrong-path instances still draining (Sec 5.2)
``selector_cap``       hybrid selector routed a speculative access to CAP
``selector_stride``    hybrid selector routed a speculative access to stride
``catchups_fired``     stride catch-up extrapolation fired (Sec 5.2)
``spec_rollbacks``     CAP speculative history repaired after a mispredict
``cfi_bad_patterns``   a CFI bad-path pattern was recorded
``pipeline_flushes``   branch redirect drained the pipelined update queue
=====================  =====================================================
"""

from __future__ import annotations

from typing import Any, Dict, Protocol

from ..pipeline.delayed import PipelinedPredictor
from ..predictors.cap import CAPComponent, CAPPredictor
from ..predictors.hybrid import HybridPredictor
from ..predictors.stride import StrideLogic, StridePredictor

__all__ = [
    "ATTRIBUTION_FIELDS",
    "AttributionProbe",
    "Instrumentation",
    "instrument_predictor",
]

#: Counter fields every probe carries, in canonical (rendering) order.
ATTRIBUTION_FIELDS = (
    "lb_misses",
    "lt_misses",
    "lt_tag_mismatches",
    "pf_rejections",
    "confidence_vetoes",
    "cfi_vetoes",
    "interval_stops",
    "drain_suppressions",
    "selector_cap",
    "selector_stride",
    "catchups_fired",
    "spec_rollbacks",
    "cfi_bad_patterns",
    "pipeline_flushes",
)


class Instrumentation(Protocol):
    """Typed attribution events the simulator components emit.

    Implementations must be cheap: events fire from predictor hot paths.
    """

    def lb_miss(self) -> None:
        """A dynamic load missed the Load Buffer."""

    def lt_miss(self) -> None:
        """The Link Table held no link for the history context."""

    def lt_tag_mismatch(self) -> None:
        """A stored link's tag disagreed with the history's tag bits."""

    def pf_rejection(self) -> None:
        """The PF filter blocked a Link Table link/tag write."""

    def confidence_veto(self) -> None:
        """The saturating confidence counter withheld speculation."""

    def cfi_veto(self) -> None:
        """The control-flow indication blocked this GHR path."""

    def interval_stop(self) -> None:
        """The stride interval technique withheld speculation."""

    def drain_suppression(self) -> None:
        """Speculation withheld while wrong-path instances drain."""

    def selector_choice(self, component: str) -> None:
        """The hybrid routed a speculative access to ``component``."""

    def catchup_fired(self) -> None:
        """The stride catch-up extrapolation repaired speculative state."""

    def spec_rollback(self) -> None:
        """CAP's speculative history was repaired after a misprediction."""

    def cfi_bad_pattern(self) -> None:
        """A CFI bad-path pattern was recorded on a wrong speculation."""

    def pipeline_flush(self) -> None:
        """A branch redirect drained the pipelined update queue."""


class AttributionProbe:
    """Counting :class:`Instrumentation`: one integer per event type."""

    __slots__ = ATTRIBUTION_FIELDS

    lb_misses: int
    lt_misses: int
    lt_tag_mismatches: int
    pf_rejections: int
    confidence_vetoes: int
    cfi_vetoes: int
    interval_stops: int
    drain_suppressions: int
    selector_cap: int
    selector_stride: int
    catchups_fired: int
    spec_rollbacks: int
    cfi_bad_patterns: int
    pipeline_flushes: int

    def __init__(self) -> None:
        for name in ATTRIBUTION_FIELDS:
            setattr(self, name, 0)

    # -- event sinks --------------------------------------------------------

    def lb_miss(self) -> None:
        self.lb_misses += 1

    def lt_miss(self) -> None:
        self.lt_misses += 1

    def lt_tag_mismatch(self) -> None:
        self.lt_tag_mismatches += 1

    def pf_rejection(self) -> None:
        self.pf_rejections += 1

    def confidence_veto(self) -> None:
        self.confidence_vetoes += 1

    def cfi_veto(self) -> None:
        self.cfi_vetoes += 1

    def interval_stop(self) -> None:
        self.interval_stops += 1

    def drain_suppression(self) -> None:
        self.drain_suppressions += 1

    def selector_choice(self, component: str) -> None:
        if component == "cap":
            self.selector_cap += 1
        else:
            self.selector_stride += 1

    def catchup_fired(self) -> None:
        self.catchups_fired += 1

    def spec_rollback(self) -> None:
        self.spec_rollbacks += 1

    def cfi_bad_pattern(self) -> None:
        self.cfi_bad_patterns += 1

    def pipeline_flush(self) -> None:
        self.pipeline_flushes += 1

    # -- bookkeeping --------------------------------------------------------

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain (ordered, JSON-able) dict."""
        return {name: getattr(self, name) for name in ATTRIBUTION_FIELDS}

    def merge(self, other: "AttributionProbe") -> None:
        """Accumulate another probe's counters into this one."""
        for name in ATTRIBUTION_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def total_events(self) -> int:
        """Sum of every counter (a quick 'did anything fire' check)."""
        return sum(getattr(self, name) for name in ATTRIBUTION_FIELDS)

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"AttributionProbe({nonzero})"


def instrument_predictor(predictor: Any, probe: Instrumentation) -> None:
    """Attach ``probe`` to every instrumented component of ``predictor``.

    Attachment happens from the outside — predictors only carry a
    ``probe`` attribute initialised to ``None`` — so the simulator layer
    stays import-free of telemetry and a probe is never part of a
    predictor's learned state (``reset()`` forgets tables, not wiring).

    Handles the stand-alone CAP/stride predictors, the shared-LB hybrid
    (both embedded components plus its Link Table), and a
    :class:`~repro.pipeline.delayed.PipelinedPredictor` wrapper (the probe
    reaches both the wrapper, for flush events, and the wrapped core).
    Unknown predictor types get the top-level attribute only, which is
    harmless: components that never emit never read it.
    """
    if isinstance(predictor, PipelinedPredictor):
        predictor.probe = probe
        instrument_predictor(predictor.inner, probe)
        return
    predictor.probe = probe
    if isinstance(predictor, CAPPredictor):
        _instrument_cap_component(predictor.component, probe)
    elif isinstance(predictor, StridePredictor):
        predictor.logic.probe = probe
    elif isinstance(predictor, HybridPredictor):
        _instrument_cap_component(predictor.cap, probe)
        predictor.stride_logic.probe = probe


def _instrument_cap_component(
    component: CAPComponent, probe: Instrumentation
) -> None:
    component.probe = probe
    component.link_table.probe = probe
