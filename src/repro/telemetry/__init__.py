"""Observability layer: attribution probes, run manifests, profiling.

Three pieces, all disabled by default and zero-cost when off:

* :mod:`repro.telemetry.instrumentation` — the :class:`Instrumentation`
  protocol simulator components emit typed attribution events into
  (LB miss, LT tag mismatch, PF rejection, confidence/CFI veto, selector
  choice, catch-up, speculative-history rollback, ...), the counting
  :class:`AttributionProbe`, and :func:`instrument_predictor` to wire a
  probe through a predictor tree from the outside.
* :mod:`repro.telemetry.manifest` — JSON run manifests + heartbeat lines
  every engine job records under ``REPRO_TELEMETRY=1``, and
  :mod:`repro.telemetry.profiler` — the opt-in sampling profiler
  (``REPRO_TELEMETRY_PROFILE=1``) around the columnar hot loop.
* :mod:`repro.telemetry.stats` — the ``python -m repro stats`` reporting
  backend: misprediction-cause breakdowns and manifest-set diffs
  (imported lazily by the CLI; not re-exported here to keep this package
  importable from the timing/eval layers without dragging them back in).

See ``docs/observability.md`` for the counter taxonomy, the manifest
schema, and worked examples.
"""

from .instrumentation import (
    ATTRIBUTION_FIELDS,
    AttributionProbe,
    Instrumentation,
    instrument_predictor,
)
from .manifest import MANIFEST_SCHEMA_ID
from .profiler import SamplingProfiler

__all__ = [
    "ATTRIBUTION_FIELDS",
    "AttributionProbe",
    "Instrumentation",
    "MANIFEST_SCHEMA_ID",
    "SamplingProfiler",
    "instrument_predictor",
]
