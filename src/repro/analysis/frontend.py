"""Front-end pressure analysis (paper Section 5.4).

    "In a super-scalar machine, several load instructions may be
    fetched/decoded in the same cycle.  The prediction mechanism should
    allow for several predictions and verifications within a cycle.  An
    extreme case of this problem is performing several predictions /
    verifications of the same static instructions in the same cycle."

This module quantifies that concern for any trace: it slices the
instruction stream into fetch groups of the machine width and reports how
many groups carry multiple loads, and how often the *same static load*
appears twice in one group (the case that would force iterative LT scans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..trace.event import LOAD_KINDS
from ..trace.trace import Trace

__all__ = ["FetchGroupStats", "analyze_fetch_groups"]


@dataclass
class FetchGroupStats:
    """Per-width statistics about load clustering in fetch groups."""

    width: int
    groups: int = 0
    groups_with_load: int = 0
    groups_with_multiple_loads: int = 0
    groups_with_repeated_static_load: int = 0
    max_loads_in_group: int = 0
    #: loads-per-group histogram
    load_histogram: Dict[int, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.load_histogram is None:
            self.load_histogram = {}

    @property
    def multi_load_fraction(self) -> float:
        """Share of fetch groups needing >1 prediction per cycle."""
        return (
            self.groups_with_multiple_loads / self.groups
            if self.groups else 0.0
        )

    @property
    def repeated_static_fraction(self) -> float:
        """Share of groups with the same static load twice — the paper's
        'extreme case' requiring an iterative LT scan."""
        return (
            self.groups_with_repeated_static_load / self.groups
            if self.groups else 0.0
        )

    def render(self) -> str:
        lines = [
            f"Fetch-group analysis (width {self.width},"
            f" {self.groups} groups)",
            f"  groups with a load:            "
            f"{self.groups_with_load / self.groups:6.1%}"
            if self.groups else "  (empty trace)",
            f"  groups needing >1 prediction:  {self.multi_load_fraction:6.1%}",
            f"  groups repeating a static load:"
            f" {self.repeated_static_fraction:6.1%}",
            f"  max loads in one group:        {self.max_loads_in_group}",
        ]
        return "\n".join(lines)


def analyze_fetch_groups(trace: Trace, width: int = 8) -> FetchGroupStats:
    """Slice ``trace`` into width-sized fetch groups and count load pressure.

    The grouping ignores control flow (a taken branch would end a fetch
    group early in real hardware), so the numbers are an upper bound on
    per-cycle prediction demand — the right direction for sizing the
    multi-ported structures Section 5.4 worries about.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    stats = FetchGroupStats(width=width)
    kinds = trace.kind
    ips = trace.ip

    for start in range(0, len(kinds), width):
        stats.groups += 1
        loads = 0
        seen: set = set()
        repeated = False
        for i in range(start, min(start + width, len(kinds))):
            if kinds[i] in LOAD_KINDS:
                loads += 1
                if ips[i] in seen:
                    repeated = True
                seen.add(ips[i])
        stats.load_histogram[loads] = stats.load_histogram.get(loads, 0) + 1
        if loads:
            stats.groups_with_load += 1
        if loads > 1:
            stats.groups_with_multiple_loads += 1
        if repeated:
            stats.groups_with_repeated_static_load += 1
        if loads > stats.max_loads_in_group:
            stats.max_loads_in_group = loads
    return stats
