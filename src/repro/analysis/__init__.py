"""Trace analysis: Section 2 load-behaviour and Section 5.4 front-end studies."""

from .frontend import FetchGroupStats, analyze_fetch_groups
from .patterns import (
    CLASS_CONSTANT,
    CLASS_CONTEXT,
    CLASS_IRREGULAR,
    CLASS_STRIDE,
    LoadProfile,
    TraceAnalysis,
    analyze_trace,
    fingerprint,
    load_fingerprint,
)

__all__ = [
    "FetchGroupStats",
    "analyze_fetch_groups",
    "CLASS_CONSTANT",
    "CLASS_CONTEXT",
    "CLASS_IRREGULAR",
    "CLASS_STRIDE",
    "LoadProfile",
    "TraceAnalysis",
    "analyze_trace",
    "fingerprint",
    "load_fingerprint",
]
