"""Load-behaviour analysis — the paper's Section 2 methodology.

Before proposing CAP, the paper *analyses* the loads current predictors
miss: it classifies per-static-load address streams (constant, stride,
short recurring context, irregular) and prints "fingerprints" — the
letter-coded address sequences like ``A B C D E F  B C D E F ...`` shown
for xlisp and go.  This module reproduces that analysis so any trace can
be dissected the way Section 2 dissects the Intel traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..trace.trace import Trace

__all__ = [
    "CLASS_CONSTANT",
    "CLASS_STRIDE",
    "CLASS_CONTEXT",
    "CLASS_IRREGULAR",
    "LoadProfile",
    "TraceAnalysis",
    "analyze_trace",
    "fingerprint",
]

CLASS_CONSTANT = "constant"
CLASS_STRIDE = "stride"
CLASS_CONTEXT = "context"
CLASS_IRREGULAR = "irregular"

#: Minimum dynamic count before a static load is classified.
MIN_SAMPLES = 8
#: A pattern class is assigned when it explains at least this fraction.
CLASS_THRESHOLD = 0.9


@dataclass
class LoadProfile:
    """Per-static-load pattern statistics."""

    ip: int
    count: int
    distinct_addresses: int
    constant_fraction: float      # share of A(N+1) == A(N)
    stride_fraction: float        # share matching the dominant delta
    dominant_stride: int
    context_fraction: float       # share predicted by last-address context
    classification: str

    def __str__(self) -> str:
        return (
            f"ip={self.ip:#x} n={self.count} {self.classification:<9}"
            f" const={self.constant_fraction:.0%}"
            f" stride={self.stride_fraction:.0%}({self.dominant_stride})"
            f" context={self.context_fraction:.0%}"
        )


@dataclass
class TraceAnalysis:
    """Whole-trace classification summary."""

    trace_name: str
    loads: int
    profiles: List[LoadProfile] = field(default_factory=list)

    def class_shares(self) -> Dict[str, float]:
        """Dynamic-load-weighted share of each pattern class."""
        totals: Counter = Counter()
        for profile in self.profiles:
            totals[profile.classification] += profile.count
        total = sum(totals.values())
        if not total:
            return {}
        return {label: count / total for label, count in totals.items()}

    def render(self, top: int = 10) -> str:
        """Readable report: class shares plus the biggest loads."""
        lines = [f"Load-pattern analysis of {self.trace_name}"
                 f" ({self.loads} dynamic loads)"]
        for label, share in sorted(
            self.class_shares().items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {label:<10} {share:6.1%} of dynamic loads")
        lines.append(f"  top {top} static loads:")
        ranked = sorted(self.profiles, key=lambda p: -p.count)[:top]
        for profile in ranked:
            lines.append(f"    {profile}")
        return "\n".join(lines)


def _constant_fraction(addresses: List[int]) -> float:
    same = sum(
        1 for a, b in zip(addresses, addresses[1:]) if a == b
    )
    return same / (len(addresses) - 1)


def _stride_stats(addresses: List[int]) -> Tuple[float, int]:
    deltas = Counter(
        (b - a) & 0xFFFFFFFF for a, b in zip(addresses, addresses[1:])
    )
    stride, hits = deltas.most_common(1)[0]
    return hits / (len(addresses) - 1), stride


def _context_fraction(addresses: List[int]) -> float:
    """How predictable the stream is from its own last address.

    This is an order-1 context model — exactly what a (large, ideal)
    last-address-indexed Link Table could do — measured online so a
    changing pattern scores honestly.
    """
    table: Dict[int, int] = {}
    hits = 0
    for prev, nxt in zip(addresses, addresses[1:]):
        if table.get(prev) == nxt:
            hits += 1
        table[prev] = nxt
    return hits / (len(addresses) - 1)


def classify(addresses: List[int]) -> Optional[LoadProfile]:
    """Classify one static load's address stream (None if too short)."""
    if len(addresses) < MIN_SAMPLES:
        return None
    constant = _constant_fraction(addresses)
    stride_frac, stride = _stride_stats(addresses)
    context = _context_fraction(addresses)

    if constant >= CLASS_THRESHOLD:
        label = CLASS_CONSTANT
    elif stride_frac >= CLASS_THRESHOLD and stride != 0:
        label = CLASS_STRIDE
    elif context >= CLASS_THRESHOLD * 0.85:
        # Context patterns get a slightly laxer bar: their first traversal
        # is unpredictable by construction.
        label = CLASS_CONTEXT
    else:
        label = CLASS_IRREGULAR

    return LoadProfile(
        ip=0,  # caller fills in
        count=len(addresses),
        distinct_addresses=len(set(addresses)),
        constant_fraction=constant,
        stride_fraction=stride_frac,
        dominant_stride=stride if stride < 2**31 else stride - 2**32,
        context_fraction=context,
        classification=label,
    )


def analyze_trace(trace: Trace, min_samples: int = MIN_SAMPLES) -> TraceAnalysis:
    """Classify every static load of ``trace``."""
    per_load: Dict[int, List[int]] = {}
    for event in trace.loads():
        per_load.setdefault(event.ip, []).append(event.addr)

    analysis = TraceAnalysis(
        trace_name=trace.name,
        loads=sum(len(v) for v in per_load.values()),
    )
    for ip, addresses in per_load.items():
        if len(addresses) < min_samples:
            continue
        profile = classify(addresses)
        if profile is not None:
            profile.ip = ip
            analysis.profiles.append(profile)
    return analysis


def fingerprint(
    addresses: Iterable[int],
    limit: int = 48,
    alphabet: str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
) -> str:
    """Letter-code an address stream, Section 2 style.

    Each distinct address becomes a letter in first-appearance order
    (``A B D E F  B C D E F ...``); addresses beyond the alphabet are
    shown as ``?``.  This is exactly how the paper prints the xlisp and
    go access patterns.
    """
    mapping: Dict[int, str] = {}
    letters: List[str] = []
    for addr in addresses:
        if len(letters) >= limit:
            break
        if addr not in mapping:
            if len(mapping) < len(alphabet):
                mapping[addr] = alphabet[len(mapping)]
            else:
                mapping[addr] = "?"
        letters.append(mapping[addr])
    return " ".join(letters)


def load_fingerprint(trace: Trace, ip: int, limit: int = 48) -> str:
    """Fingerprint one static load's stream from a trace."""
    addresses = (e.addr for e in trace.loads() if e.ip == ip)
    return fingerprint(addresses, limit=limit)
