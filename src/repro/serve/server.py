"""Asyncio prediction server: ``python -m repro serve``.

One TCP connection = one prediction session.  A client *opens* a session
(naming a predictor factory and overrides), *feeds* chunks of the event
stream (JSON or packed binary frames, see :mod:`repro.serve.protocol`)
and receives one prediction record per dynamic load, then *finishes* to
collect the session's metrics — the same counters an offline
:func:`repro.eval.runner.run_on_columns` run would have produced.

Operationally the server is built from three pieces:

* **Micro-batching executor** — feeds from all connections funnel into
  one bounded :class:`asyncio.Queue`; a worker task drains up to
  ``max_batch`` pending feeds per tick and executes them in a single
  thread-pool hop (the CPU-bound session work never blocks the event
  loop, and concurrent first-feeds each reach the numpy batch kernels
  when ``supports_batch`` holds).
* **Backpressure and timeouts** — a full queue rejects the feed with an
  ``overloaded`` error instead of buffering without bound; a feed that
  exceeds ``session_timeout_s`` in queue+execution is answered with a
  ``timeout`` error and its session is dropped.  Connections that vanish
  mid-session count as dropped sessions in the stats.
* **Graceful drain** — SIGTERM (and SIGINT) stops accepting connections,
  lets queued feeds finish, answers them, then closes.  In-flight
  sessions that never reached ``finish`` are counted dropped, so a clean
  load-generator run asserts ``sessions_dropped == 0`` end to end.

With ``shards > 0`` sessions are routed (sticky, by session id) to
worker processes via :mod:`repro.serve.sharding`, reusing the engine's
spec-over-the-boundary job machinery; the default in-process mode keeps
pytest and debugging single-process.
"""

from __future__ import annotations

import asyncio
import os
import platform
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry, global_registry
from ..obs.tracing import Tracer, mint_trace_id
from ..telemetry import manifest as run_manifest
from . import protocol
from .protocol import (
    KIND_EVENTS,
    KIND_JSON,
    FrameReader,
    ProtocolError,
)
from .session import PredictorSession, SessionConfig

__all__ = [
    "PredictionServer",
    "ServeConfig",
    "ServeStats",
    "session_manifest",
    "write_session_manifest",
]


@dataclass(frozen=True)
class ServeConfig:
    """Server tuning knobs (CLI flags; no environment reads here)."""

    host: str = "127.0.0.1"
    port: int = 8377
    #: Hard cap on concurrently open sessions; opens beyond it are refused.
    max_sessions: int = 256
    #: Bound of the shared feed queue — the backpressure valve.
    queue_depth: int = 64
    #: Maximum feeds drained into one executor hop.
    max_batch: int = 16
    #: Per-feed budget (queueing + execution), seconds.
    session_timeout_s: float = 30.0
    #: Worker processes for session execution; 0 = in-process.
    shards: int = 0
    max_frame: int = protocol.MAX_FRAME
    #: Admin (observability) endpoint port: ``None`` = no admin listener,
    #: ``0`` = ephemeral (the bound port is printed on its ready line).
    admin_port: Optional[int] = None
    #: Flight-recorder postmortem directory; ``None`` keeps the per-session
    #: rings in memory only (no postmortems written on bad session ends).
    flight_dir: Optional[str] = None
    #: Completed-span ring capacity of the server's tracer.
    trace_capacity: int = 4096


@dataclass
class ServeStats:
    """Server-lifetime counters, exposed over the ``stats`` message."""

    sessions_opened: int = 0
    sessions_finished: int = 0
    sessions_dropped: int = 0
    feeds: int = 0
    loads: int = 0
    kernel_feeds: int = 0
    rejected_feeds: int = 0
    timeouts: int = 0
    protocol_errors: int = 0

    def snapshot(self, active: int) -> Dict[str, Any]:
        return {
            "sessions_opened": self.sessions_opened,
            "sessions_finished": self.sessions_finished,
            "sessions_dropped": self.sessions_dropped,
            "sessions_active": active,
            "feeds": self.feeds,
            "loads": self.loads,
            "kernel_feeds": self.kernel_feeds,
            "rejected_feeds": self.rejected_feeds,
            "timeouts": self.timeouts,
            "protocol_errors": self.protocol_errors,
        }


def _metrics_record(metrics: Any) -> Dict[str, Any]:
    """The manifest/finish-response view of a metrics object."""
    return {
        "loads": metrics.loads,
        "predictions": metrics.predictions,
        "speculative": metrics.speculative,
        "correct_speculative": metrics.correct_speculative,
        "correct_predictions": metrics.correct_predictions,
        "prediction_rate": metrics.prediction_rate,
        "accuracy": metrics.accuracy,
        "misprediction_rate": metrics.misprediction_rate,
        "correct_rate": metrics.correct_rate,
        "coverage": metrics.coverage,
    }


def session_manifest(
    config: SessionConfig,
    metrics: Any,
    *,
    events: int,
    started_wall: float,
    wall_s: float,
    cpu_s: float,
    backend: str,
    trace_id: Optional[str] = None,
    flight_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """One ``kind="serve"`` run manifest (``run_manifest.schema.json``)."""
    attribution = None
    if hasattr(metrics, "attribution"):
        attribution = metrics.attribution()
    return {
        "schema": run_manifest.MANIFEST_SCHEMA_ID,
        "config_hash": run_manifest.config_hash(config),
        "job": {
            "trace": config.trace,
            "factory": config.factory,
            "variant": config.variant or config.factory,
            "kind": "serve",
            "overrides": run_manifest.jsonable(config.overrides),
            "instructions": None,
            "warmup_fraction": 0.0,
            "gap": config.gap,
            "instrument": config.instrument,
        },
        "trace": {
            "name": config.trace or "served-stream",
            "suite": "serve",
            "events": events,
            "loads": metrics.loads,
        },
        "run": {
            "started_at": run_manifest.iso_utc(started_wall),
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "loads_per_sec": (
                metrics.loads / wall_s if metrics.loads and wall_s > 0
                else None
            ),
            "peak_rss_kb": run_manifest.peak_rss_kb(),
            "pid": os.getpid(),
            "python": platform.python_version(),
            "backend": backend,
        },
        "metrics": _metrics_record(metrics),
        "cycles": None,
        "divergence": None,
        "attribution": attribution,
        "profile": None,
        "obs": {
            "trace_id": trace_id,
            "flight_recorder": flight_dir,
            "metrics": None,
        },
    }


def write_session_manifest(
    session: PredictorSession,
    started_wall: float,
    started_perf: float,
    started_cpu: float,
    trace_id: Optional[str] = None,
    flight_dir: Optional[str] = None,
) -> None:
    """Write a finished session's manifest when telemetry is enabled."""
    if not run_manifest.enabled():
        return
    manifest = session_manifest(
        session.config,
        session.metrics,
        events=session.seen_events,
        started_wall=started_wall,
        wall_s=run_manifest.perf_clock() - started_perf,
        cpu_s=run_manifest.cpu_clock() - started_cpu,
        backend=session.backend,
        trace_id=trace_id,
        flight_dir=flight_dir,
    )
    run_manifest.write_manifest(manifest)


@dataclass
class _Connection:
    """Per-connection serving state."""

    peer: str
    session_id: str = ""
    session: Optional[PredictorSession] = None
    #: Sharded sessions live in a worker; only the id is held here.
    sharded: bool = False
    finished: bool = False
    #: Trace id for the session's spans (client-supplied or minted).
    trace_id: str = ""
    started_wall: float = 0.0
    started_perf: float = 0.0
    started_cpu: float = 0.0


#: One queued feed: (connection, events, response future, enqueue stamp).
_FeedItem = Tuple[
    _Connection, List[tuple], "asyncio.Future[List[tuple]]", float
]


class PredictionServer:
    """The asyncio serving core; lifecycle: ``start`` → ... → ``shutdown``."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self._sessions_active = 0
        self._session_counter = 0
        self._queue: "asyncio.Queue[Optional[_FeedItem]]" = asyncio.Queue(
            maxsize=self.config.queue_depth
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._shards: Optional[Any] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional["asyncio.Task[None]"] = None
        self._draining = False
        self._closed = asyncio.Event()
        # Observability plane: registry + tracer + flight recorder.  All
        # hooks fire per feed/batch/session — never per event — so the
        # instruments stay off the byte-level hot path.
        self.registry = global_registry()
        self.tracer = Tracer(capacity=self.config.trace_capacity)
        self.flight = FlightRecorder()
        self._admin: Optional[Any] = None
        self._m_queue_depth = self.registry.gauge("serve.queue.depth")
        self._m_queue_wait = self.registry.histogram("serve.queue.wait_s")
        self._m_batch_occupancy = self.registry.histogram(
            "serve.batch.occupancy",
            bounds=tuple(float(1 << i) for i in range(7)),
        )
        self._m_sessions_active = self.registry.gauge(
            "serve.sessions.active"
        )
        self._m_sessions_dropped = self.registry.counter(
            "serve.sessions.dropped"
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def admin_port(self) -> Optional[int]:
        """The admin endpoint's bound port, if one is configured."""
        return self._admin.port if self._admin is not None else None

    async def start(self) -> None:
        if self.config.shards > 0:
            from .sharding import ShardManager

            self._shards = ShardManager(
                self.config.shards, tracer=self.tracer
            )
            await self._shards.start()
        self._worker_task = asyncio.ensure_future(self._batch_worker())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.admin_port is not None:
            from ..obs.admin import AdminServer

            self._admin = AdminServer(
                health=self._admin_health,
                metrics=self._admin_metrics,
                spans=self._admin_spans,
                host=self.config.host,
                port=self.config.admin_port,
                max_frame=self.config.max_frame,
            )
            await self._admin.start()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (POSIX event loops only)."""
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Stop accepting, drain queued feeds, then close everything."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._admin is not None:
            await self._admin.close()
        # Drain: the sentinel is processed strictly after every queued
        # feed, so by the time the worker exits all answers are out.
        await self._queue.put(None)
        if self._worker_task is not None:
            await self._worker_task
        if self._shards is not None:
            await self._shards.close()
        self._executor.shutdown(wait=True)
        self._closed.set()

    # -- observability plane -------------------------------------------------

    def _set_active(self) -> None:
        self._m_sessions_active.set(float(self._sessions_active))

    def _dump_postmortem(
        self, connection: _Connection, reason: str
    ) -> Optional[Path]:
        """Persist (or at least free) a dead session's flight ring."""
        if not connection.session_id:
            return None
        if not self.config.flight_dir:
            self.flight.discard(connection.session_id)
            return None
        return self.flight.dump(
            connection.session_id,
            reason,
            Path(self.config.flight_dir),
            context={
                "peer": connection.peer,
                "trace": connection.trace_id or None,
                "stats": self.stats.snapshot(self._sessions_active),
            },
        )

    async def _admin_health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "stats": self.stats.snapshot(self._sessions_active),
        }

    async def _admin_metrics(self) -> Dict[str, Any]:
        # Scrape-time gauges: per-shard in-flight is just the pending
        # FIFO length, so it costs nothing between scrapes.
        if self._shards is not None:
            for index, pending in enumerate(self._shards.pending_counts()):
                self.registry.gauge(
                    f"serve.shard.{index}.in_flight"
                ).set(float(pending))
        merged = MetricsRegistry()
        merged.merge(self.registry.snapshot())
        if self._shards is not None:
            for snapshot in await self._shards.metrics():
                merged.merge(snapshot)
        return {
            "metrics": merged.snapshot(),
            "spans_buffered": len(self.tracer),
            "spans_dropped": self.tracer.dropped,
        }

    async def _admin_spans(self) -> Dict[str, Any]:
        return self.tracer.export()

    # -- micro-batching executor ---------------------------------------------

    async def _batch_worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch: List[_FeedItem] = [item]
            while len(batch) < self.config.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    # Keep the drain sentinel behind this final batch.
                    self._queue.put_nowait(None)
                    break
                batch.append(extra)
            self._m_queue_depth.set(float(self._queue.qsize()))
            self._m_batch_occupancy.observe(float(len(batch)))
            now = run_manifest.perf_clock()
            for connection, _events, _future, enqueued in batch:
                wait_s = max(0.0, now - enqueued)
                self._m_queue_wait.observe(wait_s)
                self.tracer.record(
                    "serve.feed.queue_wait",
                    start_us=enqueued * 1e6,
                    dur_us=wait_s * 1e6,
                    trace=connection.trace_id or None,
                    args={"session": connection.session_id},
                )
            with self.tracer.span(
                "serve.batch.exec",
                batch=len(batch),
                sharded=self._shards is not None,
            ):
                if self._shards is not None:
                    await self._execute_sharded(batch)
                else:
                    await loop.run_in_executor(
                        self._executor, self._execute_local, loop, batch
                    )

    def _execute_local(
        self, loop: asyncio.AbstractEventLoop, batch: List[_FeedItem]
    ) -> None:
        for connection, events, future, _enqueued in batch:
            session = connection.session
            try:
                assert session is not None
                records = session.feed(events)
            except BaseException as error:  # answered, not fatal
                loop.call_soon_threadsafe(
                    _resolve_error, future, error
                )
            else:
                loop.call_soon_threadsafe(_resolve, future, records)

    async def _execute_sharded(self, batch: List[_FeedItem]) -> None:
        assert self._shards is not None

        async def one(item: _FeedItem) -> None:
            connection, events, future, _enqueued = item
            try:
                records = await self._shards.feed(
                    connection.session_id, events
                )
            except BaseException as error:
                _resolve_error(future, error)
            else:
                _resolve(future, records)

        await asyncio.gather(*(one(item) for item in batch))

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        connection = _Connection(peer=str(peername))
        frames = FrameReader(self.config.max_frame)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for kind, payload in frames.push(data):
                    await self._dispatch(connection, kind, payload, writer)
                await writer.drain()
        except (ProtocolError, ConnectionResetError) as error:
            self.stats.protocol_errors += 1
            await self._try_send(
                writer,
                protocol.error_message("protocol", str(error)),
            )
        finally:
            await self._teardown(connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _teardown(self, connection: _Connection) -> None:
        """Account for a closed connection; unfinished sessions drop."""
        if connection.session_id and not connection.finished:
            self.stats.sessions_dropped += 1
            self._sessions_active -= 1
            self._m_sessions_dropped.inc()
            self._set_active()
            self.flight.record(
                connection.session_id, "drop", peer=connection.peer
            )
            self._dump_postmortem(connection, "drop")
            if self._shards is not None and connection.sharded:
                await self._shards.discard(connection.session_id)
        connection.session = None
        connection.session_id = ""

    async def _dispatch(
        self,
        connection: _Connection,
        kind: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if kind == KIND_EVENTS:
            await self._on_feed(
                connection, protocol.decode_events(payload), writer
            )
            return
        if kind != KIND_JSON:
            raise ProtocolError(f"unknown frame kind {kind}")
        message = protocol.decode_json(payload)
        mtype = message.get("type")
        if mtype == "open":
            await self._on_open(connection, message, writer)
        elif mtype == "feed":
            await self._on_feed(
                connection,
                protocol.parse_feed_events(KIND_JSON, payload),
                writer,
            )
        elif mtype == "finish":
            await self._on_finish(connection, writer)
        elif mtype == "ping":
            self._send(writer, {"type": "pong"})
        elif mtype == "stats":
            self._send(
                writer,
                {
                    "type": "stats",
                    **self.stats.snapshot(self._sessions_active),
                },
            )
        else:
            raise ProtocolError(f"unknown message type {mtype!r}")

    # -- message handlers -------------------------------------------------------

    async def _on_open(
        self,
        connection: _Connection,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        if connection.session_id:
            self._send(
                writer,
                protocol.error_message(
                    "session", "connection already has an open session"
                ),
            )
            return
        if self._draining:
            self._send(
                writer,
                protocol.error_message("draining", "server is shutting down"),
            )
            return
        if self._sessions_active >= self.config.max_sessions:
            self.stats.rejected_feeds += 1
            self._send(
                writer,
                protocol.error_message(
                    "overloaded",
                    f"session limit {self.config.max_sessions} reached",
                ),
            )
            return
        try:
            config = SessionConfig.from_dict(message)
        except (TypeError, ValueError) as error:
            self._send(
                writer, protocol.error_message("config", str(error))
            )
            return
        # The trace id enters the system here: a client-supplied "trace"
        # field wins (so loadgen request ids join server-side spans),
        # otherwise the server mints one.
        trace_id = str(message.get("trace") or "") or mint_trace_id()
        self._session_counter += 1
        session_id = f"s{self._session_counter}"
        # Reserve the session slot *before* awaiting: the admission
        # check above is stale after any suspension, and incrementing
        # post-await let concurrent opens overshoot max_sessions.
        self._sessions_active += 1
        try:
            if self._shards is not None:
                await self._shards.open(session_id, config, trace_id)
                connection.sharded = True
            else:
                connection.session = PredictorSession(config, session_id)
        except Exception as error:
            self._sessions_active -= 1  # release the reservation
            self._send(
                writer, protocol.error_message("config", str(error))
            )
            return
        connection.session_id = session_id
        connection.finished = False
        connection.trace_id = trace_id
        connection.started_wall = run_manifest.wall_clock()
        connection.started_perf = run_manifest.perf_clock()
        connection.started_cpu = run_manifest.cpu_clock()
        self.stats.sessions_opened += 1
        self._set_active()
        self.flight.record(
            session_id,
            "open",
            factory=config.factory,
            trace=trace_id,
            peer=connection.peer,
        )
        self._send(
            writer,
            {
                "type": "opened",
                "session": session_id,
                "trace": trace_id,
                "shard": (
                    self._shards.shard_of(session_id)
                    if self._shards is not None
                    else None
                ),
            },
        )

    async def _on_feed(
        self,
        connection: _Connection,
        events: List[tuple],
        writer: asyncio.StreamWriter,
    ) -> None:
        if not connection.session_id or connection.finished:
            self._send(
                writer,
                protocol.error_message("session", "no open session to feed"),
            )
            return
        future: "asyncio.Future[List[tuple]]" = (
            asyncio.get_running_loop().create_future()
        )
        enqueued = run_manifest.perf_clock()
        try:
            self._queue.put_nowait((connection, events, future, enqueued))
        except asyncio.QueueFull:
            self.stats.rejected_feeds += 1
            self.flight.record(
                connection.session_id, "feed.rejected", events=len(events)
            )
            self._send(
                writer,
                protocol.error_message(
                    "overloaded",
                    f"feed queue depth {self.config.queue_depth} exceeded",
                ),
            )
            return
        self._m_queue_depth.set(float(self._queue.qsize()))
        self.flight.record(
            connection.session_id, "feed.enqueued", events=len(events)
        )
        try:
            records = await asyncio.wait_for(
                future, timeout=self.config.session_timeout_s
            )
        except asyncio.TimeoutError:
            # The session may still be mid-execution in the worker; its
            # state is no longer trustworthy for this client — drop it.
            self.stats.timeouts += 1
            self.stats.sessions_dropped += 1
            self._sessions_active -= 1
            self._m_sessions_dropped.inc()
            self._set_active()
            connection.finished = True
            self.flight.record(
                connection.session_id,
                "feed.timeout",
                budget_s=self.config.session_timeout_s,
                events=len(events),
            )
            self._dump_postmortem(connection, "timeout")
            self._send(
                writer,
                protocol.error_message(
                    "timeout",
                    f"feed exceeded {self.config.session_timeout_s}s budget",
                ),
            )
            return
        except Exception as error:
            self.flight.record(
                connection.session_id, "feed.error", detail=str(error)
            )
            self._send(writer, protocol.error_message("session", str(error)))
            return
        self.stats.feeds += 1
        self.stats.loads += len(records)
        self.flight.record(
            connection.session_id, "feed.answered", records=len(records)
        )
        self._send(
            writer,
            {
                "type": "predictions",
                "session": connection.session_id,
                "count": len(records),
                "records": [list(record) for record in records],
            },
        )

    async def _on_finish(
        self, connection: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        if not connection.session_id or connection.finished:
            self._send(
                writer,
                protocol.error_message("session", "no open session to finish"),
            )
            return
        if self._shards is not None and connection.sharded:
            summary = await self._shards.finish(connection.session_id)
        else:
            session = connection.session
            assert session is not None
            metrics = session.finish()
            write_session_manifest(
                session,
                connection.started_wall,
                connection.started_perf,
                connection.started_cpu,
                trace_id=connection.trace_id or None,
                flight_dir=self.config.flight_dir,
            )
            summary = {
                "backend": session.backend,
                "loads": session.seen_loads,
                "events": session.seen_events,
                "feeds": session.feeds,
                "kernel_feeds": session.kernel_feeds,
                "metrics": _metrics_record(metrics),
                "attribution": (
                    metrics.attribution()
                    if hasattr(metrics, "attribution")
                    else None
                ),
            }
        connection.finished = True
        self._sessions_active -= 1
        self.stats.sessions_finished += 1
        self.stats.kernel_feeds += int(summary.get("kernel_feeds") or 0)
        self._set_active()
        self.flight.discard(connection.session_id)
        self._send(
            writer,
            {
                "type": "metrics",
                "session": connection.session_id,
                **summary,
            },
        )

    # -- plumbing ----------------------------------------------------------------

    def _send(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        if message.get("type") == "error":
            # Per-error-code tallies ride the uniform error shape, so
            # every refusal path is counted without instrumenting each.
            self.registry.counter(
                f"serve.errors.{message.get('code', 'unknown')}"
            ).inc()
        writer.write(protocol.encode_json(message))

    async def _try_send(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        try:
            self._send(writer, message)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass


def _resolve(future: "asyncio.Future[Any]", value: Any) -> None:
    if not future.done():
        future.set_result(value)


def _resolve_error(future: "asyncio.Future[Any]", error: BaseException) -> None:
    if not future.done():
        future.set_exception(error)


async def serve(config: ServeConfig, ready_line: bool = True) -> None:
    """Run the server until a drain signal arrives (the CLI entry point)."""
    server = PredictionServer(config)
    await server.start()
    server.install_signal_handlers()
    if ready_line:
        # The loadgen and the CI smoke test wait for this exact line.
        print(
            f"repro-serve listening on {config.host}:{server.port}",
            flush=True,
        )
        if server.admin_port is not None:
            # Second ready line, same contract: scrapers wait for it.
            print(
                f"repro-serve admin on {config.host}:{server.admin_port}",
                flush=True,
            )
    await server.wait_closed()
    snapshot = server.stats.snapshot(0)
    print(
        "repro-serve drained:"
        f" opened={snapshot['sessions_opened']}"
        f" finished={snapshot['sessions_finished']}"
        f" dropped={snapshot['sessions_dropped']}",
        flush=True,
    )
