"""Prediction-as-a-service: the sessionized predictor facade and server.

This package turns the offline evaluation machinery into a long-running
service:

* :mod:`repro.serve.session` — :class:`PredictorSession`, the stateful
  facade over the evaluation loops (``session.feed(events)`` returns
  per-load predictions, ``session.finish()`` returns the metrics), plus
  the loops themselves (``run_on_stream`` / ``run_on_columns`` /
  ``run_predictor`` moved here from :mod:`repro.eval.runner`, which now
  shims to them).
* :mod:`repro.serve.protocol` — the length-prefixed JSON/binary wire
  format shared by server and clients.
* :mod:`repro.serve.server` — the asyncio server behind
  ``python -m repro serve`` (micro-batching, backpressure, graceful
  drain).
* :mod:`repro.serve.sharding` — sticky session routing across worker
  processes, reusing the engine's job machinery.

Only the session facade and protocol are imported eagerly; the asyncio
server and sharding layers load on demand from the CLI so the offline
evaluation path never pays for them.
"""

from .session import PredictorSession, SessionConfig

__all__ = ["PredictorSession", "SessionConfig"]
