"""Sticky session sharding: sessions routed across worker processes.

The engine ships :class:`~repro.eval.engine.Job` *specs* — not live
objects — across its process pool; the serving layer reuses exactly that
idiom.  A :class:`~repro.serve.session.SessionConfig` crosses a
``multiprocessing`` pipe, the worker rebuilds the predictor through
:func:`repro.eval.engine.build_predictor` (via the session constructor)
and keeps the live :class:`~repro.serve.session.PredictorSession` local;
only events and prediction records travel afterwards.

Routing is *sticky*: ``crc32(session_id) % shards`` (``crc32`` rather
than ``hash`` — Python's string hashing is salted per process, and the
CI smoke asserts the same session lands on the same shard every time).
Each shard is one worker process with one pipe, serviced strictly in
order, so replies pair with requests positionally: the manager keeps a
FIFO of response futures per shard and a pump thread resolves them
through ``loop.call_soon_threadsafe``.  Telemetry travels through the
environment exactly as in the engine pool, so shard workers write their
own ``kind="serve"`` run manifests.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import zlib
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..obs.metrics import global_registry
from ..obs.tracing import Tracer
from ..telemetry import manifest as run_manifest
from .session import PredictorSession, SessionConfig

__all__ = ["ShardManager", "shard_worker"]

#: Wire ops on a shard pipe.
OP_OPEN = "open"
OP_FEED = "feed"
OP_FINISH = "finish"
OP_DISCARD = "discard"
#: Observability op: the worker answers with its metrics-registry
#: snapshot, which the manager merges for the admin endpoint.
OP_METRICS = "metrics"


def _finish_summary(session: PredictorSession) -> Dict[str, Any]:
    """The ``finish`` response body (same shape as the in-process path)."""
    from .server import _metrics_record

    metrics = session.finish()
    return {
        "backend": session.backend,
        "loads": session.seen_loads,
        "events": session.seen_events,
        "feeds": session.feeds,
        "kernel_feeds": session.kernel_feeds,
        "metrics": _metrics_record(metrics),
        "attribution": (
            metrics.attribution()
            if hasattr(metrics, "attribution")
            else None
        ),
    }


def shard_worker(pipe: Any) -> None:
    """One shard's loop: serve session ops off the pipe until sentinel.

    Every request gets exactly one ``(status, session_id, value)`` reply,
    in request order — the manager relies on that pairing.  Exceptions
    are answered, never fatal to the shard.
    """
    sessions: Dict[str, PredictorSession] = {}
    clocks: Dict[str, Tuple[float, float, float]] = {}
    traces: Dict[str, Optional[str]] = {}
    while True:
        try:
            message = pipe.recv()
        except (EOFError, OSError):  # manager vanished
            break
        if message is None:
            break
        op, session_id, payload = message
        try:
            if op == OP_OPEN:
                config, trace_id = payload
                sessions[session_id] = PredictorSession(config, session_id)
                clocks[session_id] = (
                    run_manifest.wall_clock(),
                    run_manifest.perf_clock(),
                    run_manifest.cpu_clock(),
                )
                traces[session_id] = trace_id
                reply: Tuple[str, str, Any] = ("ok", session_id, None)
            elif op == OP_FEED:
                records = sessions[session_id].feed(payload)
                reply = ("ok", session_id, records)
            elif op == OP_FINISH:
                from .server import write_session_manifest

                session = sessions.pop(session_id)
                summary = _finish_summary(session)
                write_session_manifest(
                    session, *clocks.pop(session_id),
                    trace_id=traces.pop(session_id, None),
                )
                reply = ("ok", session_id, summary)
            elif op == OP_DISCARD:
                sessions.pop(session_id, None)
                clocks.pop(session_id, None)
                traces.pop(session_id, None)
                reply = ("ok", session_id, None)
            elif op == OP_METRICS:
                reply = ("ok", session_id, global_registry().snapshot())
            else:
                reply = ("error", session_id, f"unknown op {op!r}")
        except KeyError:
            reply = ("error", session_id, f"no session {session_id!r}")
        except Exception as error:
            reply = (
                "error", session_id, f"{type(error).__name__}: {error}"
            )
        pipe.send(reply)
    pipe.close()


class _Shard:
    """One worker process, its pipe, and the FIFO of pending futures."""

    def __init__(self, index: int, context: Any) -> None:
        self.index = index
        self.pipe, child = context.Pipe(duplex=True)
        self.process = context.Process(
            target=shard_worker, args=(child,),
            name=f"repro-shard-{index}", daemon=True,
        )
        self.pending: Deque["asyncio.Future[Any]"] = deque()
        self.pump: Optional[threading.Thread] = None


class ShardManager:
    """Async facade over the shard worker pool (sticky routing)."""

    def __init__(
        self, shards: int, tracer: Optional[Tracer] = None
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        # Spawn, not fork: the manager process already runs an event loop
        # plus executor and pump threads by the time shards start.
        self._context = multiprocessing.get_context("spawn")
        self._shards = [_Shard(i, self._context) for i in range(shards)]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._tracer = tracer or Tracer(enabled=False)
        #: session id -> trace id, for the shard.hop spans.
        self._traces: Dict[str, Optional[str]] = {}
        self._pending_failed = global_registry().counter(
            "serve.shards.pending_failed"
        )

    def __len__(self) -> int:
        return len(self._shards)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for shard in self._shards:
            shard.process.start()
            shard.pump = threading.Thread(
                target=self._pump, args=(shard,),
                name=f"repro-shard-pump-{shard.index}", daemon=True,
            )
            shard.pump.start()

    def shard_of(self, session_id: str) -> int:
        """Sticky, process-stable routing for a session id."""
        return zlib.crc32(session_id.encode("utf-8")) % len(self._shards)

    # -- request plumbing ----------------------------------------------------

    def _pump(self, shard: _Shard) -> None:
        """Pipe reader thread: pair replies with pending futures in order."""
        assert self._loop is not None
        while True:
            try:
                status, _session_id, value = shard.pipe.recv()
            except (EOFError, OSError):
                break
            future = shard.pending.popleft()
            if status == "ok":
                self._loop.call_soon_threadsafe(
                    _settle, future, value, None
                )
            else:
                self._loop.call_soon_threadsafe(
                    _settle, future, None, RuntimeError(str(value))
                )
        # Pipe gone (shard died or clean close): nothing will ever answer
        # what is still queued — fail it rather than hang the clients.
        while shard.pending:
            try:
                future = shard.pending.popleft()
            except IndexError:  # pragma: no cover - close() raced us
                break
            self._pending_failed.inc()
            self._loop.call_soon_threadsafe(
                _settle, future, None,
                RuntimeError(f"shard {shard.index} exited"),
            )

    async def _request_shard(
        self, shard: _Shard, op: str, session_id: str, payload: Any = None
    ) -> Any:
        if self._closed:
            raise RuntimeError("shard manager is closed")
        assert self._loop is not None
        future: "asyncio.Future[Any]" = self._loop.create_future()
        # Append strictly before send: the pump pairs replies by FIFO
        # position, and the worker cannot answer a request it has not
        # received yet.
        shard.pending.append(future)
        shard.pipe.send((op, session_id, payload))
        return await future

    async def _request(
        self, op: str, session_id: str, payload: Any = None
    ) -> Any:
        shard = self._shards[self.shard_of(session_id)]
        with self._tracer.span(
            "shard.hop",
            trace=self._traces.get(session_id),
            op=op,
            shard=shard.index,
            session=session_id,
        ):
            return await self._request_shard(shard, op, session_id, payload)

    # -- session ops ---------------------------------------------------------

    async def open(
        self,
        session_id: str,
        config: SessionConfig,
        trace_id: Optional[str] = None,
    ) -> None:
        self._traces[session_id] = trace_id
        try:
            await self._request(OP_OPEN, session_id, (config, trace_id))
        except BaseException:
            self._traces.pop(session_id, None)
            raise

    async def feed(
        self, session_id: str, events: List[tuple]
    ) -> List[tuple]:
        return await self._request(OP_FEED, session_id, events)

    async def finish(self, session_id: str) -> Dict[str, Any]:
        try:
            return await self._request(OP_FINISH, session_id)
        finally:
            self._traces.pop(session_id, None)

    async def discard(self, session_id: str) -> None:
        try:
            await self._request(OP_DISCARD, session_id)
        finally:
            self._traces.pop(session_id, None)

    # -- observability -------------------------------------------------------

    def pending_counts(self) -> List[int]:
        """In-flight (sent, unanswered) request count per shard."""
        return [len(shard.pending) for shard in self._shards]

    async def metrics(self) -> List[Dict[str, Any]]:
        """Every worker's metrics-registry snapshot (one pipe RTT each)."""
        return list(await asyncio.gather(*(
            self._request_shard(shard, OP_METRICS, "")
            for shard in self._shards
        )))

    async def close(self) -> None:
        """Stop workers; fail any still-pending request."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            try:
                shard.pipe.send(None)
            except (BrokenPipeError, OSError):
                pass
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            await loop.run_in_executor(None, shard.process.join, 5.0)
            if shard.process.is_alive():  # pragma: no cover - stuck shard
                shard.process.terminate()
            shard.pipe.close()
            while shard.pending:
                future = shard.pending.popleft()
                self._pending_failed.inc()
                _settle(
                    future, None, RuntimeError("shard shut down")
                )


def _settle(
    future: "asyncio.Future[Any]",
    value: Any,
    error: Optional[BaseException],
) -> None:
    if future.done():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(value)
