"""Wire protocol for the prediction service: length-prefixed frames.

Every frame on the socket is::

    +----------------+--------+-----------------------+
    | length (u32 BE)| kind u8| payload (length-1 B)  |
    +----------------+--------+-----------------------+

``length`` counts the kind byte plus the payload, so an empty-payload
frame has ``length == 1``.  Two payload kinds exist:

* ``KIND_JSON`` (0) — a UTF-8 JSON object.  All control messages
  (``open`` / ``finish`` / ``ping`` and every server response) use this
  kind; ``feed`` may too, carrying events as a JSON list of
  ``[tag, ip, a, b]`` quadruples.
* ``KIND_EVENTS`` (1) — a packed binary event block: ``n`` events as
  ``4*n`` little-endian signed 64-bit integers (``struct '<%dq'``), the
  same ``(tag, ip, a, b)`` quadruples without JSON overhead.  Only
  meaningful client→server, as a ``feed`` body.

The framing layer is transport-agnostic and synchronous-friendly:
:class:`FrameReader` is an incremental push parser (hand it bytes as
they arrive, collect whole frames as they complete), used by the asyncio
server, the blocking test client and the load generator alike.  Frames
larger than :data:`MAX_FRAME` are a protocol error — the reader raises
before buffering an attacker-sized allocation.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "KIND_EVENTS",
    "KIND_JSON",
    "MAX_FRAME",
    "FrameReader",
    "ProtocolError",
    "decode_events",
    "decode_json",
    "encode_events",
    "encode_frame",
    "encode_json",
    "error_message",
    "parse_feed_events",
]

#: Payload kinds.
KIND_JSON = 0
KIND_EVENTS = 1

#: Hard ceiling on one frame (kind byte + payload), 16 MiB.  A feed of
#: 16 MiB of packed events is ~500k events — far beyond any sane
#: micro-batch; bigger almost certainly means a corrupt or hostile
#: length prefix.
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")
_EVENT_WIDTH = 32  # four int64 fields per event


class ProtocolError(ValueError):
    """Malformed frame or message; the connection should be closed."""


def encode_frame(kind: int, payload: bytes) -> bytes:
    """One wire frame: header + kind byte + payload."""
    length = 1 + len(payload)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame of {length} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _HEADER.pack(length) + bytes([kind]) + payload


def encode_json(message: Dict[str, Any]) -> bytes:
    """A JSON control frame."""
    return encode_frame(
        KIND_JSON, json.dumps(message, separators=(",", ":")).encode("utf-8")
    )


def encode_events(events: List[tuple]) -> bytes:
    """A packed binary ``feed`` frame from ``(tag, ip, a, b)`` tuples."""
    flat: List[int] = []
    for event in events:
        if len(event) != 4:
            raise ProtocolError(
                f"event must be a (tag, ip, a, b) quadruple, got {event!r}"
            )
        flat.extend(int(v) for v in event)
    payload = struct.pack(f"<{len(flat)}q", *flat)
    return encode_frame(KIND_EVENTS, payload)


def decode_events(payload: bytes) -> List[tuple]:
    """Unpack a binary event payload back into quadruple tuples."""
    if len(payload) % _EVENT_WIDTH:
        raise ProtocolError(
            f"event payload of {len(payload)} bytes is not a multiple"
            f" of {_EVENT_WIDTH}"
        )
    count = len(payload) // _EVENT_WIDTH
    flat = struct.unpack(f"<{4 * count}q", payload)
    return [tuple(flat[i : i + 4]) for i in range(0, len(flat), 4)]


def decode_json(payload: bytes) -> Dict[str, Any]:
    """Parse a JSON control payload, insisting on an object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"bad JSON payload: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("JSON payload must be an object")
    return message


def error_message(code: str, detail: str) -> Dict[str, Any]:
    """The server's uniform error response body."""
    return {"type": "error", "code": code, "detail": detail}


class FrameReader:
    """Incremental frame parser: push bytes in, pull whole frames out.

    Handles partial frames (a header split across TCP segments, a payload
    arriving byte by byte) without ever copying more than once, and
    rejects oversized or undersized length prefixes *before* buffering
    the body.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def push(self, data: bytes) -> Iterator[Tuple[int, bytes]]:
        """Feed received bytes; yield every ``(kind, payload)`` completed."""
        self._buffer.extend(data)
        while True:
            frame = self._pop_frame()
            if frame is None:
                return
            yield frame

    def _pop_frame(self) -> Optional[Tuple[int, bytes]]:
        if len(self._buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(self._buffer)
        if length < 1:
            raise ProtocolError(f"frame length {length} < 1")
        if length > self.max_frame:
            raise ProtocolError(
                f"frame length {length} exceeds maximum {self.max_frame}"
            )
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        kind = self._buffer[_HEADER.size]
        payload = bytes(self._buffer[_HEADER.size + 1 : end])
        del self._buffer[:end]
        return kind, payload

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


def parse_feed_events(kind: int, payload: bytes) -> List[tuple]:
    """Events of a ``feed`` message, whichever encoding the client chose."""
    if kind == KIND_EVENTS:
        return decode_events(payload)
    message = decode_json(payload)
    if message.get("type") != "feed":
        raise ProtocolError(
            f"expected a feed message, got {message.get('type')!r}"
        )
    raw = message.get("events")
    if not isinstance(raw, list):
        raise ProtocolError("feed.events must be a list")
    events: List[tuple] = []
    for item in raw:
        if not isinstance(item, list) or len(item) != 4:
            raise ProtocolError(
                f"feed event must be a [tag, ip, a, b] quadruple,"
                f" got {item!r}"
            )
        events.append(tuple(int(v) for v in item))
    return events
