"""Sessionized predictor evaluation: the facade the serving layer drives.

A :class:`PredictorSession` owns one predictor plus everything the
offline runner used to scatter across call sites: the LB/LT tables live
in the predictor, the correctness counters in a
:class:`~repro.eval.metrics.PredictorMetrics` (or
:class:`~repro.eval.metrics.AttributionCounters` when instrumented), and
cross-feed warm-up accounting in the session itself.  ``feed(events)``
returns one prediction record per dynamic load; ``finish()`` seals the
session and returns the metrics.

The evaluation loops themselves — :func:`run_on_stream`,
:func:`run_on_columns`, :func:`run_predictor` — moved here from
:mod:`repro.eval.runner` (which keeps thin delegating shims for existing
drivers and tests).  Their semantics are unchanged; the session is a
stateful wrapper over them plus the batch-kernel dispatch rules:

* The numpy kernels evaluate a whole stream against an **untrained**
  predictor, so the kernel path is only valid on the *first* feed of a
  fresh session.  Later feeds run the incremental scalar loop against
  the already-trained tables.
* ``metrics.backend`` records the backend that *actually ran*: ``numpy``
  iff at least one kernel dispatch succeeded, else ``python`` — a
  session whose every dispatch fell back reports ``python``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..eval.metrics import AttributionCounters, PredictorMetrics
from ..kernels import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    batch_records,
    record_dispatch,
    resolve_backend,
    run_batch,
    supports_batch,
    try_run_batch,
)
from ..predictors.base import AddressPredictor
from ..trace.trace import PredictorStream, Trace

__all__ = [
    "PredictionRecord",
    "PredictorSession",
    "SessionConfig",
    "run_on_columns",
    "run_on_stream",
    "run_predictor",
]

#: One served prediction: ``(ip, offset, actual, address, speculative,
#: source)`` with ``address is None`` when the predictor had nothing to
#: offer — the exact tuple shape :func:`repro.kernels.batch_records`
#: reconstructs from a kernel run, so served output is byte-identical
#: whichever path evaluated the load.
PredictionRecord = Tuple[int, int, int, Optional[int], bool, str]


# ---------------------------------------------------------------------------
# Evaluation loops (moved from repro.eval.runner; shims remain there)
# ---------------------------------------------------------------------------

def run_on_stream(
    predictor: AddressPredictor,
    stream: Iterable[tuple],
    metrics: PredictorMetrics,
    warmup_loads: int = 0,
    observer: Optional[Callable] = None,
) -> PredictorMetrics:
    """Evaluate ``predictor`` over a predictor stream.

    ``stream`` items follow :meth:`repro.trace.Trace.predictor_stream`:
    ``(1, ip, addr, offset)`` loads, ``(0, ip, taken, 0)`` branches,
    ``(2, ip, 0, 0)`` calls, ``(3, ip, 0, 0)`` returns.

    ``warmup_loads`` loads at the start train the predictor without being
    counted (the paper's 30M-instruction traces amortise warm-up; short
    synthetic traces may not).

    ``observer`` (when given) is called as ``observer(ip, offset, actual,
    prediction)`` for every dynamic load, between prediction and table
    update — the hook the differential verification harness uses to diff
    per-access behaviour across evaluation paths.
    """
    predict = predictor.predict
    update = predictor.update
    on_branch = predictor.on_branch
    on_call = predictor.on_call
    on_return = predictor.on_return
    seen_loads = 0
    metrics.backend = "python"

    for tag, ip, a, b in stream:
        if tag == 1:
            prediction = predict(ip, b)
            if observer is not None:
                observer(ip, b, a, prediction)
            seen_loads += 1
            if seen_loads > warmup_loads:
                metrics.record(
                    made=prediction.made,
                    speculative=prediction.speculative,
                    correct=prediction.address == a,
                )
            update(ip, b, a, prediction)
        elif tag == 0:
            on_branch(ip, bool(a))
        elif tag == 2:
            on_call(ip)
        else:
            on_return(ip)
    return metrics


def run_on_columns(
    predictor: AddressPredictor,
    stream: PredictorStream,
    metrics: PredictorMetrics,
    warmup_loads: int = 0,
    observer: Optional[Callable] = None,
) -> PredictorMetrics:
    """Columnar fast path: evaluate over a :class:`PredictorStream`.

    Dispatches to the batch kernels (:mod:`repro.kernels`) when the
    predictor advertises ``supports_batch`` and the resolved backend is
    ``numpy``; otherwise runs the scalar reference loop.  The scalar loop
    is semantically identical to :func:`run_on_stream`, with two wins over
    iterating a tuple list: ``zip`` over the four parallel columns lets
    CPython recycle the event tuple every iteration instead of keeping one
    4-tuple per event alive, and the correctness counters accumulate in
    locals (folded into ``metrics`` once at the end) instead of paying a
    method call per dynamic load.  ``metrics.backend`` records which path
    actually ran.
    """
    if try_run_batch(predictor, stream, metrics, warmup_loads, observer):
        return metrics
    predict = predictor.predict
    update = predictor.update
    on_branch = predictor.on_branch
    on_call = predictor.on_call
    on_return = predictor.on_return
    seen_loads = 0
    loads = predictions = correct_predictions = 0
    speculative = correct_speculative = 0
    metrics.backend = "python"

    for tag, ip, a, b in zip(*stream.lists()):
        if tag == 1:
            prediction = predict(ip, b)
            if observer is not None:
                observer(ip, b, a, prediction)
            seen_loads += 1
            if seen_loads > warmup_loads:
                loads += 1
                correct = prediction.address == a
                if prediction.made:
                    predictions += 1
                    if correct:
                        correct_predictions += 1
                if prediction.speculative:
                    speculative += 1
                    if correct:
                        correct_speculative += 1
            update(ip, b, a, prediction)
        elif tag == 0:
            on_branch(ip, bool(a))
        elif tag == 2:
            on_call(ip)
        else:
            on_return(ip)

    metrics.loads += loads
    metrics.predictions += predictions
    metrics.correct_predictions += correct_predictions
    metrics.speculative += speculative
    metrics.correct_speculative += correct_speculative
    return metrics


def run_predictor(
    predictor: AddressPredictor,
    trace: Union[Trace, PredictorStream, list],
    name: Optional[str] = None,
    warmup_loads: int = 0,
    instrument: bool = False,
) -> PredictorMetrics:
    """Evaluate ``predictor`` on ``trace`` and return fresh metrics.

    ``trace`` may be a :class:`Trace` (evaluated through its columnar
    stream), a :class:`PredictorStream`, or an already-extracted list of
    stream tuples (useful when evaluating many predictors over one trace).

    With ``instrument=True`` an attribution probe is attached to the
    predictor tree and the result is an
    :class:`~repro.eval.metrics.AttributionCounters` carrying the
    per-component misprediction-cause breakdown.
    """
    trace_name = ""
    suite = ""
    if isinstance(trace, Trace):
        stream: Union[PredictorStream, list] = trace.predictor_columns()
        trace_name = trace.name
        suite = trace.meta.get("suite", "")
    else:
        stream = trace
    metrics: PredictorMetrics
    probe = None
    if instrument:
        # Imported here: the runner itself stays telemetry-free for the
        # (overwhelmingly common) uninstrumented path.
        from ..telemetry.instrumentation import (
            AttributionProbe,
            instrument_predictor,
        )

        probe = AttributionProbe()
        instrument_predictor(predictor, probe)
        metrics = AttributionCounters(
            name=name or predictor.name, trace=trace_name, suite=suite,
        )
    else:
        metrics = PredictorMetrics(
            name=name or predictor.name, trace=trace_name, suite=suite,
        )
    if isinstance(stream, PredictorStream):
        run_on_columns(predictor, stream, metrics, warmup_loads)
    else:
        run_on_stream(predictor, stream, metrics, warmup_loads)
    if probe is not None:
        assert isinstance(metrics, AttributionCounters)
        metrics.absorb_probe(probe)
    return metrics


# ---------------------------------------------------------------------------
# Session configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SessionConfig:
    """Picklable spec of one predictor session.

    The same factory/overrides/gap vocabulary as
    :class:`repro.eval.engine.Job` — :meth:`to_job` maps a config onto a
    (trace-less) job so session workers reuse
    :func:`repro.eval.engine.build_predictor` verbatim, the serving
    analogue of jobs crossing the engine's process boundary as specs.
    """

    factory: str = "hybrid"
    overrides: Dict[str, Any] = field(default_factory=dict)
    warmup_loads: int = 0
    gap: Optional[int] = None
    instrument: bool = False
    variant: str = ""
    trace: str = ""

    def to_job(self) -> Any:
        """The engine job this session spec corresponds to."""
        from ..eval.engine import Job

        return Job(
            trace=self.trace,
            factory=self.factory,
            overrides=dict(self.overrides),
            gap=self.gap,
            variant=self.variant,
            instrument=self.instrument,
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SessionConfig":
        """Build a config from a wire-protocol ``open`` payload."""
        known = {f: payload[f] for f in (
            "factory", "warmup_loads", "gap", "instrument", "variant",
            "trace",
        ) if f in payload}
        overrides = payload.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ValueError("overrides must be an object")
        return cls(overrides=dict(overrides), **known)


def _columns_of(events: List[tuple]) -> PredictorStream:
    """Pack a list of ``(tag, ip, a, b)`` tuples into a columnar stream."""
    if not events:
        return PredictorStream([], [], [], [], loads=0)
    tag, ip, a, b = (list(col) for col in zip(*events))
    return PredictorStream(tag, ip, a, b)


# ---------------------------------------------------------------------------
# The session facade
# ---------------------------------------------------------------------------

class PredictorSession:
    """One stateful prediction session: predictor + metrics + warm-up.

    ``feed(events)`` evaluates a chunk of the stream and returns one
    :data:`PredictionRecord` per dynamic load in it; ``finish()`` seals
    the session and returns the accumulated metrics.  Sessions are
    single-owner objects (one per connection in the serving layer) and
    are not thread-safe.
    """

    def __init__(
        self, config: SessionConfig, session_id: str = ""
    ) -> None:
        # Lazy: repro.eval.engine imports the runner shims, which import
        # this module — resolving the factory registry at session-build
        # time keeps the module graph acyclic.
        from ..eval.engine import build_predictor

        self.config = config
        self.session_id = session_id
        self.predictor: AddressPredictor = build_predictor(config.to_job())
        self._probe: Optional[Any] = None
        if config.instrument:
            from ..telemetry.instrumentation import (
                AttributionProbe,
                instrument_predictor,
            )

            self._probe = AttributionProbe()
            instrument_predictor(self.predictor, self._probe)
            self.metrics: PredictorMetrics = AttributionCounters(
                name=config.variant or self.predictor.name,
                trace=config.trace, suite="serve",
            )
        else:
            self.metrics = PredictorMetrics(
                name=config.variant or self.predictor.name,
                trace=config.trace, suite="serve",
            )
        self.seen_loads = 0
        self.seen_events = 0
        self.feeds = 0
        self.kernel_feeds = 0
        self.finished = False

    # -- introspection -------------------------------------------------------

    @property
    def backend(self) -> str:
        """Backend that actually ran: ``numpy`` iff a kernel dispatch did."""
        return BACKEND_NUMPY if self.kernel_feeds else BACKEND_PYTHON

    def _kernel_eligible(self, observer: Optional[Callable]) -> bool:
        """Whether this feed may go to the batch kernels.

        Batch kernels replay a whole stream against an *untrained*
        predictor, so only the very first feed of a session qualifies;
        per-access observers force the scalar loop (same rule as
        :func:`repro.kernels.try_run_batch`).
        """
        return (
            self.feeds == 0
            and observer is None
            and supports_batch(self.predictor)
            and resolve_backend() == BACKEND_NUMPY
        )

    # -- the facade ----------------------------------------------------------

    def feed(
        self,
        events: Union[PredictorStream, Iterable[tuple]],
        observer: Optional[Callable] = None,
    ) -> List[PredictionRecord]:
        """Evaluate one chunk of the stream; one record per dynamic load.

        Records cover *every* load in the chunk — warm-up only suppresses
        metric accounting, a served client still gets its prediction.
        Raises :class:`RuntimeError` on a finished session.
        """
        if self.finished:
            raise RuntimeError(
                f"session {self.session_id or '<anonymous>'} is finished"
            )
        if isinstance(events, PredictorStream):
            stream: Optional[PredictorStream] = events
            tuples: Optional[List[tuple]] = None
        else:
            stream = None
            tuples = list(events)

        records: Optional[List[PredictionRecord]] = None
        if not self._kernel_eligible(observer):
            record_dispatch(self.predictor, "declined")
        else:
            if stream is None:
                assert tuples is not None
                stream = _columns_of(tuples)
            result = run_batch(
                self.predictor, stream, self.config.warmup_loads
            )
            if result is None:
                record_dispatch(self.predictor, "fallback")
            else:
                from ..kernels import fold_metrics

                record_dispatch(self.predictor, "dispatched")
                fold_metrics(
                    result, self.metrics, self.config.warmup_loads
                )
                records = batch_records(result, stream)
                self.kernel_feeds += 1
        if records is None:
            captured: List[PredictionRecord] = []

            def _capture(
                ip: int, offset: int, actual: int, prediction: Any
            ) -> None:
                captured.append((
                    ip, offset, actual,
                    prediction.address if prediction.made else None,
                    prediction.speculative, prediction.source,
                ))
                if observer is not None:
                    observer(ip, offset, actual, prediction)

            remaining_warmup = max(
                0, self.config.warmup_loads - self.seen_loads
            )
            run_on_stream(
                self.predictor,
                tuples if tuples is not None else stream.tuples(),
                self.metrics,
                warmup_loads=remaining_warmup,
                observer=_capture,
            )
            records = captured
        self.seen_loads += len(records)
        self.seen_events += (
            len(tuples) if tuples is not None else len(stream.tag)
        )
        self.feeds += 1
        self.metrics.backend = self.backend
        return records

    def finish(self) -> PredictorMetrics:
        """Seal the session and return its metrics (idempotent)."""
        if not self.finished:
            self.finished = True
            if self._probe is not None:
                assert isinstance(self.metrics, AttributionCounters)
                self.metrics.absorb_probe(self._probe)
        return self.metrics
